//===- core/Analysis.cpp - Offline profile analysis ----------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"

#include "support/BitUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace rap;

std::vector<CoveragePoint>
rap::coverageByWidth(const RapTree &Tree, double Phi,
                     const std::vector<unsigned> &WidthGrid) {
  std::vector<HotRange> Hot = Tree.extractHotRanges(Phi);
  std::vector<CoveragePoint> Curve;
  Curve.reserve(WidthGrid.size());
  for (unsigned Width : WidthGrid) {
    uint64_t Covered = 0;
    for (const HotRange &H : Hot)
      if (H.WidthBits <= Width)
        Covered = saturatingAdd(Covered, H.ExclusiveWeight);
    CoveragePoint Point;
    Point.WidthBits = Width;
    Point.CoveragePercent =
        Tree.numEvents() == 0
            ? 0.0
            : 100.0 * static_cast<double>(Covered) /
                  static_cast<double>(Tree.numEvents());
    Curve.push_back(Point);
  }
  return Curve;
}

std::vector<HotRange> rap::topRanges(const RapTree &Tree, unsigned K,
                                     double MinPhi) {
  std::vector<HotRange> Hot = Tree.extractHotRanges(MinPhi);
  std::sort(Hot.begin(), Hot.end(),
            [](const HotRange &A, const HotRange &B) {
              if (A.ExclusiveWeight != B.ExclusiveWeight)
                return A.ExclusiveWeight > B.ExclusiveWeight;
              return A.Lo < B.Lo;
            });
  if (Hot.size() > K)
    Hot.resize(K);
  return Hot;
}

IntervalProfile::IntervalProfile(ProfileSnapshot BeforeSnapshot,
                                 ProfileSnapshot AfterSnapshot)
    : Before(std::move(BeforeSnapshot)), After(std::move(AfterSnapshot)) {
  assert(Before.numEvents() <= After.numEvents() &&
         "interval endpoints out of order");
  BeforeTree = Before.restore();
  AfterTree = After.restore();
}

uint64_t IntervalProfile::estimateRange(uint64_t Lo, uint64_t Hi) const {
  uint64_t AfterCount = AfterTree->estimateRange(Lo, Hi);
  uint64_t BeforeCount = BeforeTree->estimateRange(Lo, Hi);
  // Both are lower bounds of monotone counts; the before-estimate can
  // exceed the after-estimate only by estimation slack, so clamp.
  return AfterCount > BeforeCount ? AfterCount - BeforeCount : 0;
}

namespace {

/// Walks the after-tree; reports nodes whose interval estimate clears
/// the threshold and whose parent was not already reported (maximal
/// disjoint hot set).
void intervalHotWalk(const RapNode &Node, const IntervalProfile &Interval,
                     double Threshold, unsigned Depth,
                     std::vector<HotRange> &Out) {
  uint64_t Estimate = Interval.estimateRange(Node.lo(), Node.hi());
  if (static_cast<double>(Estimate) < Threshold)
    return; // No descendant can clear it either (estimates nest).
  // Prefer the most precise hot descendants: recurse first; if any
  // child is hot, report the children instead of this node.
  size_t BeforeSize = Out.size();
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      intervalHotWalk(*Child, Interval, Threshold, Depth + 1, Out);
  if (Out.size() != BeforeSize)
    return;
  HotRange H;
  H.Lo = Node.lo();
  H.Hi = Node.hi();
  H.WidthBits = Node.widthBits();
  H.Depth = Depth;
  H.ExclusiveWeight = Estimate;
  H.SubtreeWeight = Estimate;
  Out.push_back(H);
}

} // namespace

std::vector<HotRange> IntervalProfile::hotRanges(double Phi) const {
  assert(Phi > 0.0 && Phi <= 1.0 && "hotness fraction out of range");
  std::vector<HotRange> Out;
  double Threshold = Phi * static_cast<double>(numEvents());
  intervalHotWalk(AfterTree->root(), *this, Threshold, 0, Out);
  return Out;
}

double rap::profileDivergence(const ProfileSnapshot &A,
                              const ProfileSnapshot &B, double Phi) {
  std::unique_ptr<RapTree> TreeA = A.restore();
  std::unique_ptr<RapTree> TreeB = B.restore();
  // Union of both hot-range sets, deduplicated by range.
  std::map<std::pair<uint64_t, uint64_t>, bool> Union;
  for (const HotRange &H : TreeA->extractHotRanges(Phi))
    Union[{H.Lo, H.Hi}] = true;
  for (const HotRange &H : TreeB->extractHotRanges(Phi))
    Union[{H.Lo, H.Hi}] = true;
  if (Union.empty())
    return 0.0;

  double NA = static_cast<double>(A.numEvents());
  double NB = static_cast<double>(B.numEvents());
  if (NA == 0.0 || NB == 0.0)
    return NA == NB ? 0.0 : 1.0;
  double Distance = 0.0;
  for (const auto &[Range, Unused] : Union) {
    (void)Unused;
    double FracA =
        static_cast<double>(TreeA->estimateRange(Range.first, Range.second)) /
        NA;
    double FracB =
        static_cast<double>(TreeB->estimateRange(Range.first, Range.second)) /
        NB;
    Distance += std::fabs(FracA - FracB);
  }
  // Ranges in the union can nest, so the raw sum can exceed 2; clamp
  // the half-distance into [0, 1].
  return std::min(1.0, Distance / 2.0);
}
