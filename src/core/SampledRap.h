//===- core/SampledRap.h - RAP unified with sampling -----------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The other extension proposed in the paper's conclusion (Sec 6):
/// "It may further be possible to unify our proposed techniques with
/// existing sampling based schemes to create a single general purpose
/// profiling system."
///
/// SampledRapTree feeds every K-th event into an ordinary RAP tree with
/// weight K, so downstream consumers see estimates already scaled to
/// the full stream. This trades the hard eps*n guarantee for a K-fold
/// reduction in update work: the RAP guarantee still holds relative to
/// the *sampled* stream (eps * n / K of weighted error) but sampling
/// noise of order sqrt(K * count) is added on top — quantified
/// empirically in bench/ext_sampling_unification.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_SAMPLEDRAP_H
#define RAP_CORE_SAMPLEDRAP_H

#include "core/RapTree.h"

#include <cassert>

namespace rap {

/// Systematic 1-in-K sampling front end for a RAP tree.
class SampledRapTree {
public:
  /// Creates the profile; \p SamplePeriod = 1 degenerates to plain RAP.
  SampledRapTree(const RapConfig &Config, uint64_t Period)
      : Tree(Config), SamplePeriod(Period) {
    assert(Period >= 1 && "sample period must be positive");
  }

  /// Offers one event; every SamplePeriod-th is recorded with weight
  /// SamplePeriod so tree estimates stay full-stream scaled.
  void addPoint(uint64_t X) {
    NumOffered = saturatingAdd(NumOffered, 1);
    if (NumOffered % SamplePeriod == 0)
      Tree.addPoint(X, SamplePeriod);
  }

  /// Events offered (the true stream length).
  uint64_t numOffered() const { return NumOffered; }

  /// Events actually recorded (weighted count equals tree.numEvents()).
  uint64_t numSampled() const { return Tree.numEvents() / SamplePeriod; }

  /// The underlying tree; its numEvents() is already scaled to
  /// approximately numOffered().
  const RapTree &tree() const { return Tree; }

  /// Forwarders for the common queries.
  uint64_t estimateRange(uint64_t Lo, uint64_t Hi) const {
    return Tree.estimateRange(Lo, Hi);
  }
  std::vector<HotRange> extractHotRanges(double Phi) const {
    return Tree.extractHotRanges(Phi);
  }

private:
  RapTree Tree;
  uint64_t SamplePeriod;
  uint64_t NumOffered = 0;
};

} // namespace rap

#endif // RAP_CORE_SAMPLEDRAP_H
