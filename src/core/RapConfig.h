//===- core/RapConfig.h - RAP tree configuration ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration for Range Adaptive Profiling. The knobs correspond
/// directly to the parameters discussed in Sections 2.2 and 3.1 of the
/// paper: the error bound epsilon, the universe size R, the branching
/// factor b, and the merge-interval ratio q.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_RAPCONFIG_H
#define RAP_CORE_RAPCONFIG_H

#include "support/BitUtils.h"

#include <cstdint>
#include <string>

namespace rap {

/// Parameters of a RAP tree.
///
/// The profiled universe is [0, 2^RangeBits). Splitting a node of range
/// width 2^W produces children of width 2^(W - log2(BranchFactor)),
/// i.e. the tree is the multibit trie of Section 3.2. The split
/// threshold after n events is
///
///   SplitThreshold(n) = Epsilon * n / maxDepth()
///
/// which yields the paper's epsilon guarantee: a range estimate can
/// miss at most one threshold's worth of counts at each of the
/// maxDepth() ancestors along a root path.
struct RapConfig {
  /// log2 of the universe size R. Events outside [0, 2^RangeBits) are
  /// rejected by assertion. Zero is the degenerate single-value
  /// universe R = 1: the root is a unit range, the tree never splits,
  /// and every event must be 0.
  unsigned RangeBits = 32;

  /// Branching factor b; must be a power of two >= 2. The paper picks
  /// b = 4 (Fig 2).
  unsigned BranchFactor = 4;

  /// The user error constant epsilon in (0, 1]: estimates are within
  /// Epsilon * n of the true count (Sec 2.2).
  double Epsilon = 0.01;

  /// Merge-interval growth ratio q >= 1: the k-th batched merge happens
  /// a factor q later than the (k-1)-th (Sec 3.1, Fig 3). The paper
  /// picks q = 2.
  double MergeRatio = 2.0;

  /// Events processed before the first batched merge. The paper's
  /// hardware discussion assumes ~2^10 events before the first merge
  /// (Sec 3.3).
  uint64_t InitialMergeInterval = 1024;

  /// MergeThreshold = MergeThresholdScale * SplitThreshold. The paper
  /// uses the same register for both (Sec 3.3 stage 4), i.e. scale 1.
  double MergeThresholdScale = 1.0;

  /// Disable batched merging entirely (used to demonstrate the
  /// unbounded-growth failure mode of a split-only tree).
  bool EnableMerges = true;

  /// When positive, overrides the paper's proportional split threshold
  /// with a fixed absolute count. This exists for the ablation of the
  /// paper's central design decision: a fixed threshold either lets
  /// the node count grow with the stream (too small) or never refines
  /// rare-but-growing ranges (too large); eps*n/log(R) does neither.
  double FixedSplitThreshold = 0.0;

  /// Hard cap on live tree nodes, mirroring the hardware's fixed range
  /// table (Sec 3.3): 0 means unbounded. At the cap the tree degrades
  /// instead of allocating — leaf splits are refused and forced
  /// coarsening merges reclaim nodes; see docs/ROBUSTNESS.md for the
  /// degraded estimate bound.
  uint64_t MaxNodes = 0;

  /// Memory budget in bytes at the paper's 16-byte node cost
  /// (RapTree::BytesPerNode); 0 means unbounded. Combined with
  /// MaxNodes via effectiveNodeBudget().
  uint64_t MaxMemoryBytes = 0;

  /// Randomized split admission (the Randomized Admission Policy idea
  /// applied to leaf splits): when a leaf's counter crosses the split
  /// threshold T, the split is admitted only with probability
  /// Over / (AdmissionCoarseness * T + 1), where Over = count - T is
  /// how far past the threshold the leaf already is. A cold singleton
  /// that barely crossed T is almost always denied (no allocation
  /// happens); a hot range overshoots T quickly and splits within a
  /// few more arrivals. Every denied arrival's weight is charged to
  /// TreePressure::AdmissionDeferredWeight, so estimates keep a
  /// closed-form bound: the extra under-count of any range beyond the
  /// normal eps*n machinery is at most that charged weight.
  bool EnableAdmission = false;

  /// Admission selectivity knob c: larger values deny more (the
  /// effective coldness estimate is c*T+1 arrivals past the
  /// threshold). Must be finite and >= 0; 0 admits every due split,
  /// reducing the gate to a (deterministic) no-op.
  double AdmissionCoarseness = 4.0;

  /// Seed of the tree's private admission RNG stream. Two trees with
  /// equal configs (seed included) fed equal streams make identical
  /// admission decisions, so runs replay deterministically.
  uint64_t AdmissionSeed = 0x9e3779b97f4a7c15ULL;

  /// Maintains the warm-prefix bitmap (core/RangeFence.h) that lets
  /// estimateRange / estimateRangeBounds answer provably-cold queries
  /// without walking the tree, and lets topK skip all-zero subtrees.
  /// Pure query acceleration: every estimate is bit-identical with
  /// the fence on or off (rap_fuzz --fence checks exactly that), so
  /// the flag is deliberately NOT serialized — a restored snapshot
  /// re-derives the bitmap under whatever the restoring config says.
  bool EnableRangeFence = true;

  /// The node cap implied by MaxNodes and MaxMemoryBytes together:
  /// the tighter of the two, or 0 when both are unbounded.
  uint64_t effectiveNodeBudget() const {
    // 16 == RapTree::BytesPerNode (static_assert'd in RapTree.cpp);
    // spelled as a literal to keep the dependency one-directional.
    uint64_t FromBytes = MaxMemoryBytes / 16;
    if (MaxNodes == 0)
      return FromBytes;
    if (FromBytes == 0)
      return MaxNodes;
    return MaxNodes < FromBytes ? MaxNodes : FromBytes;
  }

  /// Bits of the key consumed per tree level.
  unsigned bitsPerLevel() const { return log2Exact(BranchFactor); }

  /// Maximum tree depth: ceil(RangeBits / bitsPerLevel()). The root is
  /// depth 0; single-value leaves are at this depth. Zero for the
  /// single-value universe (the root is already a unit range).
  unsigned maxDepth() const {
    return (RangeBits + bitsPerLevel() - 1) / bitsPerLevel();
  }

  /// The split threshold after \p NumEvents events (Sec 2.2), or the
  /// fixed override when configured. For the depth-0 single-value
  /// universe no split can ever happen; the threshold is reported as
  /// if the tree were one level deep.
  double splitThreshold(uint64_t NumEvents) const {
    if (FixedSplitThreshold > 0.0)
      return FixedSplitThreshold;
    unsigned Depth = maxDepth() == 0 ? 1 : maxDepth();
    return Epsilon * static_cast<double>(NumEvents) / Depth;
  }

  /// The merge threshold after \p NumEvents events.
  double mergeThreshold(uint64_t NumEvents) const {
    return MergeThresholdScale * splitThreshold(NumEvents);
  }

  /// Validates all parameters. Returns true if usable; otherwise
  /// returns false and, if \p Error is non-null, stores a diagnostic.
  bool validate(std::string *Error = nullptr) const;
};

} // namespace rap

#endif // RAP_CORE_RAPCONFIG_H
