//===- core/RapNode.h - Node of a range adaptive profile tree -*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A node of the RAP tree. Each node tracks a power-of-two aligned
/// range [lo(), hi()] of the event universe and a counter of the events
/// that matched this node as their smallest covering range (Sec 2.1 of
/// the paper). Children subdivide the parent range; after internal
/// merges the children may cover only part of the parent (Sec 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_RAPNODE_H
#define RAP_CORE_RAPNODE_H

#include "support/BitUtils.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace rap {

class RapTree;

/// One range-counter of the profile tree.
class RapNode {
  friend class RapTree;

public:
  RapNode(uint64_t Low, unsigned Width)
      : Lo(Low), WidthBits(static_cast<uint8_t>(Width)) {
    assert(Width <= 64 && "range wider than the key type");
    assert(Low == (Width == 64 ? 0 : alignDown(Low, uint64_t(1) << Width)) &&
           "node range must be aligned to its width");
  }

  /// Lowest value covered by this node.
  uint64_t lo() const { return Lo; }

  /// Highest value covered by this node (inclusive).
  uint64_t hi() const {
    if (WidthBits == 64)
      return ~uint64_t(0);
    return Lo + ((uint64_t(1) << WidthBits) - 1);
  }

  /// log2 of the number of values this node covers.
  unsigned widthBits() const { return WidthBits; }

  /// Events recorded on this node's own counter (excludes descendants).
  uint64_t count() const { return Count; }

  /// True if this node covers a single value and can never split.
  bool isUnitRange() const { return WidthBits == 0; }

  /// True if \p X lies within this node's range.
  bool contains(uint64_t X) const { return X >= Lo && X <= hi(); }

  /// True if the node currently has a child array (it may still have
  /// empty slots after internal merges).
  bool hasChildren() const { return !Children.empty(); }

  /// Number of child slots (0 if the node has never split or has been
  /// fully merged back into a leaf).
  unsigned numChildSlots() const {
    return static_cast<unsigned>(Children.size());
  }

  /// Child at \p Slot, or null if that sub-range is currently merged
  /// into this node.
  const RapNode *child(unsigned Slot) const {
    assert(Slot < Children.size() && "child slot out of range");
    return Children[Slot].get();
  }

  /// Total weight of this node plus all descendants. This is the RAP
  /// estimate for the number of stream events in [lo(), hi()]; it is
  /// always a lower bound on the true count (Sec 4.3). Saturates at
  /// 2^64-1 like the counters themselves.
  uint64_t subtreeWeight() const {
    uint64_t Total = Count;
    for (const auto &Child : Children)
      if (Child)
        Total = saturatingAdd(Total, Child->subtreeWeight());
    return Total;
  }

  /// Number of nodes in this subtree including this node.
  uint64_t subtreeNodeCount() const {
    uint64_t Total = 1;
    for (const auto &Child : Children)
      if (Child)
        Total += Child->subtreeNodeCount();
    return Total;
  }

private:
  uint64_t Lo;
  uint64_t Count = 0;
  uint8_t WidthBits;
  std::vector<std::unique_ptr<RapNode>> Children;
};

} // namespace rap

#endif // RAP_CORE_RAPNODE_H
