//===- core/RapNode.h - Node of a range adaptive profile tree -*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A node of the RAP tree. Each node tracks a power-of-two aligned
/// range [lo(), hi()] of the event universe and a counter of the events
/// that matched this node as their smallest covering range (Sec 2.1 of
/// the paper). Children subdivide the parent range; after internal
/// merges the children may cover only part of the parent (Sec 3.3).
///
/// Storage is a slab arena (detail::NodeArena) rather than one heap
/// allocation per node: all node fields live in structure-of-arrays
/// vectors indexed by a 32-bit node id, and the children of a split
/// node occupy one contiguous block of ids. The update path therefore
/// descends by loading one packed navigation word per level — no
/// pointer chasing, and child selection is a branchless shift-and-mask
/// because every node range is aligned to its own width. RapNode is a
/// 16-byte handle (arena pointer + id) preserving the original
/// pointer-based read API; handles live in a std::deque so their
/// addresses stay stable while the arena grows.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_RAPNODE_H
#define RAP_CORE_RAPNODE_H

#include "support/BitUtils.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

namespace rap {

class RapTree;

namespace detail {
struct NodeArena;
} // namespace detail

/// One range-counter of the profile tree. A lightweight handle into the
/// owning tree's node arena; copying it does not copy the node.
class RapNode {
  friend class RapTree;

public:
  /// Internal: binds a handle to arena slot \p NodeIndex. Handles are
  /// minted by the arena itself; user code receives them from
  /// RapTree::root(), child() and findSmallestCover().
  RapNode(const detail::NodeArena *ArenaPtr, uint32_t NodeIndex)
      : Arena(ArenaPtr), Index(NodeIndex) {}

  /// Lowest value covered by this node.
  uint64_t lo() const;

  /// Highest value covered by this node (inclusive).
  uint64_t hi() const;

  /// log2 of the number of values this node covers.
  unsigned widthBits() const;

  /// Events recorded on this node's own counter (excludes descendants).
  uint64_t count() const;

  /// True if this node covers a single value and can never split.
  bool isUnitRange() const { return widthBits() == 0; }

  /// True if \p X lies within this node's range.
  bool contains(uint64_t X) const { return X >= lo() && X <= hi(); }

  /// True if the node currently has a child block (it may still have
  /// empty slots after internal merges).
  bool hasChildren() const;

  /// Number of child slots (0 if the node has never split or has been
  /// fully merged back into a leaf).
  unsigned numChildSlots() const;

  /// Child at \p Slot, or null if that sub-range is currently merged
  /// into this node.
  const RapNode *child(unsigned Slot) const;

  /// Total weight of this node plus all descendants. This is the RAP
  /// estimate for the number of stream events in [lo(), hi()]; it is
  /// always a lower bound on the true count (Sec 4.3). Saturates at
  /// 2^64-1 like the counters themselves.
  uint64_t subtreeWeight() const;

  /// Number of nodes in this subtree including this node.
  uint64_t subtreeNodeCount() const;

private:
  const detail::NodeArena *Arena;
  uint32_t Index;
};

namespace detail {

/// Slab storage for every node of one tree, structure-of-arrays.
///
/// Node ids are 32-bit indices into four parallel vectors. The children
/// of a split node are one contiguous id block, so locating the child
/// covering X needs only the parent's packed navigation word:
///
///   bits  0..31  first child id (InvalidIndex when the node is a leaf)
///   bits 32..39  child width in bits (the shift selecting the slot)
///   bits 40..45  log2 of the child slot count
///   bit  63      dead flag: this slot was merged back into its parent
///
/// Because a node's lo() is aligned to its width, the child slot for X
/// is (X >> childShift) & slotMask with no subtraction — the branchless
/// select of the hot descend loop. Freed child blocks (from batched
/// merges) are recycled through per-size free lists; a merged-back
/// child inside a still-live block is only flagged dead so a later
/// re-split revives it in place.
struct NodeArena {
  static constexpr uint32_t InvalidIndex = 0xffffffffu;
  static constexpr uint64_t DeadBit = uint64_t(1) << 63;
  static constexpr uint64_t LeafNav = InvalidIndex;
  static constexpr uint64_t DeadLeafNav = LeafNav | DeadBit;

  std::vector<uint64_t> Los;    ///< lo() per node.
  std::vector<uint64_t> Counts; ///< own counter per node.
  std::vector<uint64_t> Navs;   ///< packed navigation word per node.
  std::vector<uint8_t> Widths;  ///< widthBits() per node.

  /// Address-stable handle per node (deque: growth never moves
  /// existing elements), so the child()/root() reference API of the
  /// pointer-based tree keeps working over arena storage.
  std::deque<RapNode> Handles;

  /// Recycled child blocks, indexed by log2 of the block's slot count.
  std::vector<std::vector<uint32_t>> FreeBlocks;

  static uint32_t navFirstChild(uint64_t Nav) {
    return static_cast<uint32_t>(Nav);
  }
  static unsigned navChildShift(uint64_t Nav) {
    return static_cast<unsigned>((Nav >> 32) & 0xff);
  }
  static unsigned navSlotLog2(uint64_t Nav) {
    return static_cast<unsigned>((Nav >> 40) & 0x3f);
  }
  static bool navIsDead(uint64_t Nav) { return (Nav & DeadBit) != 0; }
  static bool navIsLeaf(uint64_t Nav) {
    return navFirstChild(Nav) == InvalidIndex;
  }
  static uint64_t makeNav(uint32_t FirstChild, unsigned ChildShift,
                          unsigned SlotLog2) {
    return uint64_t(FirstChild) | (uint64_t(ChildShift) << 32) |
           (uint64_t(SlotLog2) << 40);
  }

  /// Creates the root node (id 0) covering [0, 2^RangeBits).
  void initRoot(unsigned RangeBits);

  /// Allocates a contiguous child block for \p Parent: 2^SlotLog2
  /// slots of width \p ChildBits, each initialized as a zero-count
  /// leaf (dead when \p Dead, i.e. present-but-merged). Updates the
  /// parent's navigation word and returns the first child id.
  uint32_t allocChildren(uint32_t Parent, unsigned ChildBits,
                         unsigned SlotLog2, bool Dead);

  /// Returns a 2^SlotLog2-slot block to the free list. Never throws:
  /// it runs inside merge folds after counters have already moved, so
  /// on allocation failure the block record is dropped (the slots
  /// stay parked in the arena) rather than tearing the fold.
  void freeBlock(uint32_t FirstChild, unsigned SlotLog2) noexcept;

  /// Marks \p Node dead and recycles every child block beneath it.
  /// Never throws (see freeBlock).
  void killSubtree(uint32_t Node) noexcept;

  uint64_t subtreeWeight(uint32_t Node) const;
  uint64_t subtreeNodeCount(uint32_t Node) const;

  const RapNode *handle(uint32_t Node) const { return &Handles[Node]; }

private:
  uint32_t allocBlock(unsigned SlotLog2);
  void freeDescendants(uint32_t Node) noexcept;
};

} // namespace detail

inline uint64_t RapNode::lo() const { return Arena->Los[Index]; }

inline uint64_t RapNode::hi() const {
  unsigned Width = Arena->Widths[Index];
  if (Width == 64)
    return ~uint64_t(0);
  return Arena->Los[Index] + ((uint64_t(1) << Width) - 1);
}

inline unsigned RapNode::widthBits() const { return Arena->Widths[Index]; }

inline uint64_t RapNode::count() const { return Arena->Counts[Index]; }

inline bool RapNode::hasChildren() const {
  return !detail::NodeArena::navIsLeaf(Arena->Navs[Index]);
}

inline unsigned RapNode::numChildSlots() const {
  uint64_t Nav = Arena->Navs[Index];
  if (detail::NodeArena::navIsLeaf(Nav))
    return 0;
  return 1u << detail::NodeArena::navSlotLog2(Nav);
}

inline const RapNode *RapNode::child(unsigned Slot) const {
  uint64_t Nav = Arena->Navs[Index];
  assert(Slot < numChildSlots() && "child slot out of range");
  uint32_t Child = detail::NodeArena::navFirstChild(Nav) + Slot;
  if (detail::NodeArena::navIsDead(Arena->Navs[Child]))
    return nullptr; // Sub-range currently merged into this node.
  return Arena->handle(Child);
}

inline uint64_t RapNode::subtreeWeight() const {
  return Arena->subtreeWeight(Index);
}

inline uint64_t RapNode::subtreeNodeCount() const {
  return Arena->subtreeNodeCount(Index);
}

} // namespace rap

#endif // RAP_CORE_RAPNODE_H
