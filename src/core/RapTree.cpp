//===- core/RapTree.cpp - Range adaptive profiling tree ------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RapTree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <ostream>
#include <stdexcept>

using namespace rap;

RapTree::RapTree(const RapConfig &TreeConfig) : Config(TreeConfig) {
  // Throwing (rather than asserting) keeps an invalid config from
  // silently producing a broken tree in release builds; the C API
  // converts this into a null handle + rap_last_error().
  std::string Error;
  if (!Config.validate(&Error))
    throw std::invalid_argument("RapTree: invalid config: " + Error);
  Root = std::make_unique<RapNode>(0, Config.RangeBits);
  NextMergeAt = Config.InitialMergeInterval;
}

std::unique_ptr<RapTree> RapTree::fromNodeSet(
    const RapConfig &Config,
    const std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> &Nodes,
    uint64_t NumEvents, std::string *Error, uint64_t NextMergeAt) {
  auto Fail = [Error](const char *Message) -> std::unique_ptr<RapTree> {
    if (Error)
      *Error = Message;
    return nullptr;
  };
  if (!Config.validate(Error))
    return nullptr;
  if (Nodes.empty())
    return Fail("node set is empty (the root is mandatory)");
  if (std::get<0>(Nodes[0]) != 0 ||
      std::get<1>(Nodes[0]) != Config.RangeBits)
    return Fail("first node is not the root of the configured universe");

  auto Tree = std::make_unique<RapTree>(Config);
  Tree->Root->Count = std::get<2>(Nodes[0]);
  unsigned BitsPerLevel = Config.bitsPerLevel();
  uint64_t TotalCount = std::get<2>(Nodes[0]);

  // Preorder insertion: a maintained stack of the current ancestor
  // path places each node under its deepest enclosing predecessor.
  std::vector<RapNode *> Path = {Tree->Root.get()};
  for (size_t I = 1; I < Nodes.size(); ++I) {
    auto [Lo, WidthBits, Count] = Nodes[I];
    if (WidthBits >= Config.RangeBits)
      return Fail("non-root node as wide as the universe");
    uint64_t Width = uint64_t(1) << WidthBits;
    if (Lo != alignDown(Lo, Width))
      return Fail("node range not aligned to its width");
    uint64_t Hi = Lo + Width - 1;
    while (!Path.empty() &&
           !(Path.back()->lo() <= Lo && Hi <= Path.back()->hi()))
      Path.pop_back();
    if (Path.empty())
      return Fail("node not contained in any predecessor (not preorder)");
    RapNode *Parent = Path.back();
    unsigned ExpectedChildBits = Parent->widthBits() > BitsPerLevel
                                     ? Parent->widthBits() - BitsPerLevel
                                     : 0;
    if (WidthBits != ExpectedChildBits)
      return Fail("node width inconsistent with the branching factor");
    unsigned NumSlots = 1u
                        << (Parent->widthBits() - ExpectedChildBits);
    if (Parent->Children.empty())
      Parent->Children.resize(NumSlots);
    unsigned Slot = static_cast<unsigned>((Lo - Parent->lo()) >>
                                          ExpectedChildBits);
    if (Parent->Children[Slot])
      return Fail("duplicate node range");
    auto Child = std::make_unique<RapNode>(Lo, WidthBits);
    Child->Count = Count;
    TotalCount = saturatingAdd(TotalCount, Count);
    Path.push_back(Child.get());
    Parent->Children[Slot] = std::move(Child);
    ++Tree->NumNodes;
  }
  if (TotalCount != NumEvents)
    return Fail("node counts do not sum to the recorded event total");
  Tree->NumEvents = NumEvents;
  Tree->MaxNumNodes = Tree->NumNodes;
  if (NextMergeAt > NumEvents || (NextMergeAt != 0 && !Config.EnableMerges)) {
    // Exact schedule position recorded at capture time.
    Tree->NextMergeAt = NextMergeAt;
  } else {
    // Re-derive: resume the merge schedule past the stream position.
    // At a saturated stream position the schedule pins to the
    // sentinel and can never exceed NumEvents; stop there.
    while (Tree->NextMergeAt <= NumEvents && Tree->NextMergeAt != ~uint64_t(0))
      Tree->scheduleAfterMerge();
  }
  return Tree;
}

/// Returns the slot index of the child of \p Node that would cover
/// \p X, along with the width of that child level.
static unsigned childSlotFor(const RapNode &Node, uint64_t X,
                             unsigned BitsPerLevel) {
  unsigned ChildBits =
      Node.widthBits() > BitsPerLevel ? Node.widthBits() - BitsPerLevel : 0;
  uint64_t Offset = X - Node.lo();
  return static_cast<unsigned>(Offset >> ChildBits);
}

RapNode *RapTree::descend(uint64_t X) {
  RapNode *Node = Root.get();
  unsigned BitsPerLevel = Config.bitsPerLevel();
  while (Node->hasChildren()) {
    unsigned Slot = childSlotFor(*Node, X, BitsPerLevel);
    assert(Slot < Node->Children.size() && "child slot out of range");
    RapNode *Child = Node->Children[Slot].get();
    if (!Child)
      break; // Sub-range was merged back into this node (Sec 3.3).
    Node = Child;
  }
  return Node;
}

const RapNode &RapTree::findSmallestCover(uint64_t X) const {
  return *const_cast<RapTree *>(this)->descend(X);
}

void RapTree::addPoint(uint64_t X, uint64_t Weight) {
  // A zero-weight event carries no information; returning early keeps
  // it from perturbing the structure (the split check below fires on
  // the *current* counter value, so a zero-weight touch of a node whose
  // counter was inflated by merge-backs used to split it).
  if (Weight == 0)
    return;
  assert((Config.RangeBits == 64 || X < (uint64_t(1) << Config.RangeBits)) &&
         "event outside the configured universe");
  NumEvents = saturatingAdd(NumEvents, Weight);

  RapNode *Node = descend(X);
  Node->Count = saturatingAdd(Node->Count, Weight);

  // Split check (Sec 2.2): a counter that outgrew the threshold sprouts
  // children so subsequent events in this range profile more precisely.
  if (!Node->isUnitRange() &&
      static_cast<double>(Node->Count) > Config.splitThreshold(NumEvents))
    splitNode(*Node);

  // Batched merges at exponentially growing intervals (Sec 3.1, Fig 3).
  if (Config.EnableMerges && NumEvents >= NextMergeAt) {
    mergeNow();
    scheduleAfterMerge();
  }
}

void RapTree::splitNode(RapNode &Node) {
  assert(!Node.isUnitRange() && "cannot split a unit range");
  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned ChildBits =
      Node.widthBits() > BitsPerLevel ? Node.widthBits() - BitsPerLevel : 0;
  unsigned NumSlots = 1u << (Node.widthBits() - ChildBits);
  if (Node.Children.empty())
    Node.Children.resize(NumSlots);
  assert(Node.Children.size() == NumSlots && "child slot count changed");

  // Create every missing child with a zero counter. The parent keeps
  // its own counter (counters are never decremented, Sec 2.2 fn 1).
  for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
    if (Node.Children[Slot])
      continue;
    uint64_t ChildLo = Node.lo() + (static_cast<uint64_t>(Slot) << ChildBits);
    Node.Children[Slot] = std::make_unique<RapNode>(ChildLo, ChildBits);
    ++NumNodes;
  }
  ++NumSplits;
  MaxNumNodes = std::max(MaxNumNodes, NumNodes);
}

uint64_t RapTree::mergeWalk(RapNode &Node, double Threshold,
                            uint64_t &Removed) {
  uint64_t Total = Node.Count;
  if (!Node.hasChildren())
    return Total;

  bool AnyChildLeft = false;
  for (auto &ChildSlot : Node.Children) {
    if (!ChildSlot)
      continue;
    uint64_t ChildWeight = mergeWalk(*ChildSlot, Threshold, Removed);
    Total = saturatingAdd(Total, ChildWeight);
    if (static_cast<double>(ChildWeight) < Threshold) {
      // Fold the entire (already internally merged) child subtree into
      // this node: child counts are equally valid on the super-range
      // (Sec 2.2 "Merge").
      Node.Count = saturatingAdd(Node.Count, ChildWeight);
      uint64_t Dropped = ChildSlot->subtreeNodeCount();
      Removed += Dropped;
      NumNodes -= Dropped;
      ChildSlot.reset();
    } else {
      AnyChildLeft = true;
    }
  }
  if (!AnyChildLeft)
    Node.Children.clear();
  return Total;
}

void RapTree::absorb(const RapTree &Other) {
  assert(Config.RangeBits == Other.Config.RangeBits &&
         Config.BranchFactor == Other.Config.BranchFactor &&
         "absorb requires identical tree geometry");

  // Recursive structural union: Other's node counts land on the
  // equally-ranged node here, materializing missing children so no
  // precision recorded by the shard is lost at union time (the merge
  // pass below re-compacts whatever is no longer warranted).
  unsigned BitsPerLevel = Config.bitsPerLevel();
  std::function<void(RapNode &, const RapNode &)> Union =
      [&](RapNode &Mine, const RapNode &Theirs) {
        Mine.Count = saturatingAdd(Mine.Count, Theirs.Count);
        if (!Theirs.hasChildren())
          return;
        unsigned ChildBits = Mine.widthBits() > BitsPerLevel
                                 ? Mine.widthBits() - BitsPerLevel
                                 : 0;
        unsigned NumSlots = 1u << (Mine.widthBits() - ChildBits);
        if (Mine.Children.empty())
          Mine.Children.resize(NumSlots);
        for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
          const RapNode *TheirChild = Theirs.child(Slot);
          if (!TheirChild)
            continue;
          if (!Mine.Children[Slot]) {
            Mine.Children[Slot] = std::make_unique<RapNode>(
                TheirChild->lo(), TheirChild->widthBits());
            ++NumNodes;
          }
          Union(*Mine.Children[Slot], *TheirChild);
        }
      };
  Union(*Root, Other.root());
  NumEvents = saturatingAdd(NumEvents, Other.NumEvents);
  MaxNumNodes = std::max(MaxNumNodes, NumNodes);
  // Re-compact at the combined stream position and realign the merge
  // schedule with it.
  if (Config.EnableMerges) {
    mergeNow();
    while (NextMergeAt <= NumEvents && NextMergeAt != ~uint64_t(0))
      scheduleAfterMerge();
  }
}

uint64_t RapTree::mergeNow() {
  double Threshold = Config.mergeThreshold(NumEvents);
  uint64_t Removed = 0;
  mergeWalk(*Root, Threshold, Removed);
  ++NumMergePasses;
  NumMergedNodes += Removed;
  MergeEventCounts.push_back(NumEvents);
  return Removed;
}

void RapTree::scheduleAfterMerge() {
  double Next = static_cast<double>(NextMergeAt) * Config.MergeRatio;
  // llround is undefined once Next exceeds int64 range; clamp to the
  // saturated sentinel so a nearly-full event counter cannot wrap the
  // schedule back below NumEvents (which would loop forever in the
  // catch-up loops below).
  uint64_t NextInt =
      Next >= static_cast<double>(std::numeric_limits<int64_t>::max())
          ? ~uint64_t(0)
          : static_cast<uint64_t>(std::llround(Next));
  NextMergeAt = std::max<uint64_t>(saturatingAdd(NumEvents, 1), NextInt);
}

uint64_t RapTree::estimateWalk(const RapNode &Node, uint64_t Lo,
                               uint64_t Hi) const {
  if (Node.lo() > Hi || Node.hi() < Lo)
    return 0;
  if (Lo <= Node.lo() && Node.hi() <= Hi)
    return Node.subtreeWeight();
  // Partial overlap: the node's own counter may account for events
  // outside [Lo, Hi], so only descendants fully inside contribute.
  // This keeps the estimate a guaranteed lower bound.
  uint64_t Total = 0;
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      Total = saturatingAdd(Total, estimateWalk(*Child, Lo, Hi));
  return Total;
}

uint64_t RapTree::estimateRange(uint64_t Lo, uint64_t Hi) const {
  assert(Lo <= Hi && "empty query range");
  return estimateWalk(*Root, Lo, Hi);
}

/// Upper-bound companion of estimateWalk: every counter on a node
/// intersecting the query may hold in-range events.
static uint64_t upperWalk(const RapNode &Node, uint64_t Lo, uint64_t Hi) {
  if (Node.lo() > Hi || Node.hi() < Lo)
    return 0;
  if (Lo <= Node.lo() && Node.hi() <= Hi)
    return Node.subtreeWeight();
  uint64_t Total = Node.count(); // straddling: possibly in range
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      Total = saturatingAdd(Total, upperWalk(*Child, Lo, Hi));
  return Total;
}

RapTree::RangeBounds RapTree::estimateRangeBounds(uint64_t Lo,
                                                  uint64_t Hi) const {
  assert(Lo <= Hi && "empty query range");
  RangeBounds Bounds;
  Bounds.Lower = estimateWalk(*Root, Lo, Hi);
  Bounds.Upper = upperWalk(*Root, Lo, Hi);
  return Bounds;
}

uint64_t RapTree::hotWalk(const RapNode &Node, double Threshold,
                          unsigned Depth, std::vector<HotRange> &Out) const {
  // Preorder output position is reserved before visiting children so
  // ancestors precede descendants; we patch the entry afterwards.
  size_t MyIndex = Out.size();
  Out.emplace_back();

  uint64_t Exclusive = Node.count();
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      Exclusive =
          saturatingAdd(Exclusive, hotWalk(*Child, Threshold, Depth + 1, Out));

  bool IsHot = static_cast<double>(Exclusive) >= Threshold;
  if (!IsHot) {
    // Not hot: drop the reserved placeholder. Hot descendants appended
    // after it keep their relative (preorder) order.
    Out.erase(Out.begin() + MyIndex);
    return Exclusive;
  }

  HotRange &H = Out[MyIndex];
  H.Lo = Node.lo();
  H.Hi = Node.hi();
  H.WidthBits = Node.widthBits();
  H.Depth = Depth;
  H.ExclusiveWeight = Exclusive;
  H.SubtreeWeight = Node.subtreeWeight();
  return 0; // Hot weight is not propagated to the parent (Sec 4.1).
}

std::vector<HotRange> RapTree::extractHotRanges(double Phi) const {
  assert(Phi > 0.0 && Phi <= 1.0 && "hotness fraction out of range");
  std::vector<HotRange> Out;
  double Threshold = Phi * static_cast<double>(NumEvents);
  hotWalk(*Root, Threshold, 0, Out);
  return Out;
}

/// Prints one node line: hex range, own count, subtree weight, percent.
static void dumpNode(std::ostream &OS, const RapNode &Node, unsigned Depth,
                     uint64_t NumEvents) {
  for (unsigned I = 0; I != Depth; ++I)
    OS << "  ";
  char Buffer[128];
  double Percent =
      NumEvents == 0
          ? 0.0
          : 100.0 * static_cast<double>(Node.subtreeWeight()) /
                static_cast<double>(NumEvents);
  std::snprintf(Buffer, sizeof(Buffer),
                "[%llx, %llx] count=%llu subtree=%llu (%.1f%%)",
                static_cast<unsigned long long>(Node.lo()),
                static_cast<unsigned long long>(Node.hi()),
                static_cast<unsigned long long>(Node.count()),
                static_cast<unsigned long long>(Node.subtreeWeight()),
                Percent);
  OS << Buffer << '\n';
}

static void dumpWalk(std::ostream &OS, const RapNode &Node, unsigned Depth,
                     uint64_t NumEvents) {
  dumpNode(OS, Node, Depth, NumEvents);
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      dumpWalk(OS, *Child, Depth + 1, NumEvents);
}

void RapTree::dump(std::ostream &OS) const {
  dumpWalk(OS, *Root, 0, NumEvents);
}

void RapTree::dumpHot(std::ostream &OS, double Phi) const {
  std::vector<HotRange> Hot = extractHotRanges(Phi);

  auto PrintLine = [&](uint64_t Lo, uint64_t Hi, unsigned Indent,
                       uint64_t Weight) {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
    char Buffer[128];
    double Percent =
        NumEvents == 0
            ? 0.0
            : 100.0 * static_cast<double>(Weight) /
                  static_cast<double>(NumEvents);
    std::snprintf(Buffer, sizeof(Buffer), "[%llx, %llx] %.1f%%",
                  static_cast<unsigned long long>(Lo),
                  static_cast<unsigned long long>(Hi), Percent);
    OS << Buffer << '\n';
  };

  // Always lead with the root line for context, as the paper's Fig 5
  // does; hot ranges are then indented by their nesting depth among
  // hot ranges only (not their raw tree depth).
  bool RootHot = !Hot.empty() && Hot.front().Depth == 0;
  if (!RootHot)
    PrintLine(Root->lo(), Root->hi(), 0, Root->count());

  std::vector<std::pair<uint64_t, uint64_t>> Enclosing;
  for (const HotRange &H : Hot) {
    while (!Enclosing.empty() && !(Enclosing.back().first <= H.Lo &&
                                   H.Hi <= Enclosing.back().second))
      Enclosing.pop_back();
    unsigned Indent =
        static_cast<unsigned>(Enclosing.size()) + (RootHot ? 0 : 1);
    PrintLine(H.Lo, H.Hi, Indent, H.ExclusiveWeight);
    Enclosing.emplace_back(H.Lo, H.Hi);
  }
}
