//===- core/RapTree.cpp - Range adaptive profiling tree ------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Arena implementation notes. Node state lives in the SoA vectors of
// detail::NodeArena; every routine below works on 32-bit node ids and
// re-subscripts the vectors after any call that can allocate (vector
// growth moves the slabs, so references must never be held across an
// allocChildren). Handles in the deque are address-stable, which is
// what keeps the const RapNode& API (root, findSmallestCover) valid
// across growth.
//
//===----------------------------------------------------------------------===//

#include "core/RapTree.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <new>
#include <ostream>
#include <stdexcept>

using namespace rap;
using rap::detail::NodeArena;

// RapConfig::effectiveNodeBudget() hard-codes the per-node byte cost
// to avoid a circular header dependency; keep the two in lockstep.
static_assert(RapTree::BytesPerNode == 16,
              "RapConfig::effectiveNodeBudget assumes 16-byte nodes");

//===----------------------------------------------------------------------===//
// NodeArena
//===----------------------------------------------------------------------===//

void NodeArena::initRoot(unsigned RangeBits) {
  assert(Los.empty() && "root already created");
  Los.push_back(0);
  Counts.push_back(0);
  Navs.push_back(LeafNav);
  Widths.push_back(static_cast<uint8_t>(RangeBits));
  Handles.push_back(RapNode(this, 0));
}

uint32_t NodeArena::allocBlock(unsigned SlotLog2) {
  if (SlotLog2 < FreeBlocks.size() && !FreeBlocks[SlotLog2].empty()) {
    uint32_t First = FreeBlocks[SlotLog2].back();
    FreeBlocks[SlotLog2].pop_back();
    return First;
  }
  if (RAP_FAILPOINT_HIT(failpoints::Fp::ArenaAlloc))
    throw std::bad_alloc();
  size_t NumSlots = size_t(1) << SlotLog2;
  size_t Old = Navs.size();
  assert(Old + NumSlots < InvalidIndex && "arena exceeds 32-bit node ids");
  // Grow all four slabs plus the handle pool under a rollback guard:
  // if any later growth throws, the earlier ones shrink back so the
  // arena never exposes a half-grown slot range (shrinking never
  // throws for these element types).
  try {
    Los.resize(Old + NumSlots);
    Counts.resize(Old + NumSlots);
    Navs.resize(Old + NumSlots);
    Widths.resize(Old + NumSlots);
    for (size_t I = Old; I != Old + NumSlots; ++I)
      Handles.push_back(RapNode(this, static_cast<uint32_t>(I)));
  } catch (...) {
    Los.resize(Old);
    Counts.resize(Old);
    Navs.resize(Old);
    Widths.resize(Old);
    while (Handles.size() > Old)
      Handles.pop_back();
    throw;
  }
  return static_cast<uint32_t>(Old);
}

uint32_t NodeArena::allocChildren(uint32_t Parent, unsigned ChildBits,
                                  unsigned SlotLog2, bool Dead) {
  uint32_t First = allocBlock(SlotLog2);
  // Subscript only after the allocation above: the slabs may have moved.
  uint64_t ParentLo = Los[Parent];
  uint64_t InitNav = Dead ? DeadLeafNav : LeafNav;
  size_t NumSlots = size_t(1) << SlotLog2;
  for (size_t Slot = 0; Slot != NumSlots; ++Slot) {
    size_t Child = First + Slot;
    Los[Child] = ParentLo + (static_cast<uint64_t>(Slot) << ChildBits);
    Counts[Child] = 0;
    Navs[Child] = InitNav;
    Widths[Child] = static_cast<uint8_t>(ChildBits);
  }
  Navs[Parent] = makeNav(First, ChildBits, SlotLog2);
  return First;
}

void NodeArena::freeBlock(uint32_t FirstChild, unsigned SlotLog2) noexcept {
  // Growing the free list can itself fail under memory pressure, and
  // this runs inside merge folds after counters have already moved up:
  // dropping the record (parking the slots forever) is safe, throwing
  // would double-count the fold.
  try {
    if (FreeBlocks.size() <= SlotLog2)
      FreeBlocks.resize(SlotLog2 + 1);
    FreeBlocks[SlotLog2].push_back(FirstChild);
  } catch (const std::bad_alloc &) {
  }
}

void NodeArena::freeDescendants(uint32_t Node) noexcept {
  uint64_t Nav = Navs[Node];
  if (navIsLeaf(Nav))
    return;
  uint32_t First = navFirstChild(Nav);
  unsigned SlotLog2 = navSlotLog2(Nav);
  size_t NumSlots = size_t(1) << SlotLog2;
  for (size_t Slot = 0; Slot != NumSlots; ++Slot) {
    uint32_t Child = First + static_cast<uint32_t>(Slot);
    if (!navIsDead(Navs[Child]))
      freeDescendants(Child);
  }
  freeBlock(First, SlotLog2);
  Navs[Node] = LeafNav;
}

void NodeArena::killSubtree(uint32_t Node) noexcept {
  freeDescendants(Node);
  Navs[Node] = DeadLeafNav;
  Counts[Node] = 0;
}

uint64_t NodeArena::subtreeWeight(uint32_t Node) const {
  uint64_t Total = Counts[Node];
  uint64_t Nav = Navs[Node];
  if (navIsLeaf(Nav))
    return Total;
  uint32_t First = navFirstChild(Nav);
  size_t NumSlots = size_t(1) << navSlotLog2(Nav);
  for (size_t Slot = 0; Slot != NumSlots; ++Slot) {
    uint32_t Child = First + static_cast<uint32_t>(Slot);
    if (!navIsDead(Navs[Child]))
      Total = saturatingAdd(Total, subtreeWeight(Child));
  }
  return Total;
}

uint64_t NodeArena::subtreeNodeCount(uint32_t Node) const {
  uint64_t Total = 1;
  uint64_t Nav = Navs[Node];
  if (navIsLeaf(Nav))
    return Total;
  uint32_t First = navFirstChild(Nav);
  size_t NumSlots = size_t(1) << navSlotLog2(Nav);
  for (size_t Slot = 0; Slot != NumSlots; ++Slot) {
    uint32_t Child = First + static_cast<uint32_t>(Slot);
    if (!navIsDead(Navs[Child]))
      Total += subtreeNodeCount(Child);
  }
  return Total;
}

//===----------------------------------------------------------------------===//
// RapTree
//===----------------------------------------------------------------------===//

RapTree::RapTree(const RapConfig &TreeConfig) : Config(TreeConfig) {
  // Throwing (rather than asserting) keeps an invalid config from
  // silently producing a broken tree in release builds; the C API
  // converts this into a null handle + rap_last_error().
  std::string Error;
  if (!Config.validate(&Error))
    throw std::invalid_argument("RapTree: invalid config: " + Error);
  Arena.initRoot(Config.RangeBits);
  NextMergeAt = Config.InitialMergeInterval;
  AdmissionRngState = Config.AdmissionSeed;
  Pressure.NodeBudget = Config.effectiveNodeBudget();
  if (Config.EnableRangeFence)
    Fence.init(Config.RangeBits);
}

uint64_t RapTree::rebuildFenceWalk(uint32_t Node) {
  uint64_t Warm = 0;
  if (Arena.Counts[Node] > 0) {
    Warm = 1;
    if (Node != 0 && Fence.enabled())
      Fence.markNode(Arena.Los[Node], Arena.Widths[Node]);
  }
  uint64_t Nav = Arena.Navs[Node];
  if (NodeArena::navIsLeaf(Nav))
    return Warm;
  uint32_t First = NodeArena::navFirstChild(Nav);
  unsigned NumSlots = 1u << NodeArena::navSlotLog2(Nav);
  for (unsigned Slot = 0; Slot != NumSlots; ++Slot)
    if (!NodeArena::navIsDead(Arena.Navs[First + Slot]))
      Warm += rebuildFenceWalk(First + Slot);
  return Warm;
}

void RapTree::rebuildFence() {
  // Re-derives both the bitmap and the warm-node count from the live
  // counters. Required after any operation that moves counters
  // wholesale (merge folds lift child weight onto possibly-cold
  // parents; absorb and fromNodeSet write counters directly), and
  // doubles as a precision reset: buckets whose weight folded into
  // the root read cold again. One O(numNodes) walk, called only from
  // paths that already walk the whole tree.
  if (Fence.enabled())
    Fence.clear();
  WarmNodes = rebuildFenceWalk(0);
}

std::unique_ptr<RapTree> RapTree::fromNodeSet(
    const RapConfig &Config,
    const std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> &Nodes,
    uint64_t NumEvents, std::string *Error, uint64_t NextMergeAt) {
  auto Fail = [Error](const char *Message) -> std::unique_ptr<RapTree> {
    if (Error)
      *Error = Message;
    return nullptr;
  };
  if (!Config.validate(Error))
    return nullptr;
  if (Nodes.empty())
    return Fail("node set is empty (the root is mandatory)");
  if (std::get<0>(Nodes[0]) != 0 ||
      std::get<1>(Nodes[0]) != Config.RangeBits)
    return Fail("first node is not the root of the configured universe");

  auto Tree = std::make_unique<RapTree>(Config);
  NodeArena &Arena = Tree->Arena;
  Arena.Counts[0] = std::get<2>(Nodes[0]);
  unsigned BitsPerLevel = Config.bitsPerLevel();
  uint64_t TotalCount = std::get<2>(Nodes[0]);

  auto NodeHi = [&Arena](uint32_t Node) {
    unsigned Width = Arena.Widths[Node];
    if (Width == 64)
      return ~uint64_t(0);
    return Arena.Los[Node] + ((uint64_t(1) << Width) - 1);
  };

  // Preorder insertion: a maintained stack of the current ancestor
  // path places each node under its deepest enclosing predecessor.
  std::vector<uint32_t> Path = {0};
  for (size_t I = 1; I < Nodes.size(); ++I) {
    auto [Lo, WidthBits, Count] = Nodes[I];
    if (WidthBits >= Config.RangeBits)
      return Fail("non-root node as wide as the universe");
    uint64_t Width = uint64_t(1) << WidthBits;
    if (Lo != alignDown(Lo, Width))
      return Fail("node range not aligned to its width");
    uint64_t Hi = Lo + Width - 1;
    while (!Path.empty() &&
           !(Arena.Los[Path.back()] <= Lo && Hi <= NodeHi(Path.back())))
      Path.pop_back();
    if (Path.empty())
      return Fail("node not contained in any predecessor (not preorder)");
    uint32_t Parent = Path.back();
    unsigned ParentWidth = Arena.Widths[Parent];
    unsigned ExpectedChildBits =
        ParentWidth > BitsPerLevel ? ParentWidth - BitsPerLevel : 0;
    if (WidthBits != ExpectedChildBits)
      return Fail("node width inconsistent with the branching factor");
    uint64_t ParentNav = Arena.Navs[Parent];
    uint32_t First =
        NodeArena::navIsLeaf(ParentNav)
            ? Arena.allocChildren(Parent, ExpectedChildBits,
                                  ParentWidth - ExpectedChildBits,
                                  /*Dead=*/true)
            : NodeArena::navFirstChild(ParentNav);
    unsigned Slot = static_cast<unsigned>((Lo - Arena.Los[Parent]) >>
                                          ExpectedChildBits);
    uint32_t Child = First + Slot;
    if (!NodeArena::navIsDead(Arena.Navs[Child]))
      return Fail("duplicate node range");
    Arena.Navs[Child] = NodeArena::LeafNav;
    Arena.Counts[Child] = Count;
    TotalCount = saturatingAdd(TotalCount, Count);
    Path.push_back(Child);
    ++Tree->NumNodes;
  }
  if (TotalCount != NumEvents)
    return Fail("node counts do not sum to the recorded event total");
  Tree->NumEvents = NumEvents;
  Tree->MaxNumNodes = Tree->NumNodes;
  if (NextMergeAt > NumEvents || (NextMergeAt != 0 && !Config.EnableMerges)) {
    // Exact schedule position recorded at capture time.
    Tree->NextMergeAt = NextMergeAt;
  } else {
    // Re-derive: resume the merge schedule past the stream position.
    // At a saturated stream position the schedule pins to the
    // sentinel and can never exceed NumEvents; stop there.
    while (Tree->NextMergeAt <= NumEvents && Tree->NextMergeAt != ~uint64_t(0))
      Tree->scheduleAfterMerge();
  }
  // A node set captured without a budget (or under a looser one) may
  // exceed this config's cap; restoring coarsens it under the cap.
  Tree->enforceNodeBudget();
  // Snapshots never carry the fence (it is pure acceleration state);
  // derive it from the restored counters.
  Tree->rebuildFence();
  return Tree;
}

uint32_t RapTree::descendIndex(uint64_t X) const {
  // The descend touches only the Navs slab: one 64-bit load per level,
  // and the child slot falls out of a shift-and-mask on X because every
  // node's lo() is aligned to its width (no subtraction needed).
  const uint64_t *NavData = Arena.Navs.data();
  uint32_t Node = 0;
  uint64_t Nav = NavData[0];
  while (!NodeArena::navIsLeaf(Nav)) {
    uint32_t Child =
        NodeArena::navFirstChild(Nav) +
        static_cast<uint32_t>((X >> NodeArena::navChildShift(Nav)) &
                              lowBitMask(NodeArena::navSlotLog2(Nav)));
    uint64_t ChildNav = NavData[Child];
    if (NodeArena::navIsDead(ChildNav))
      break; // Sub-range was merged back into this node (Sec 3.3).
    Node = Child;
    Nav = ChildNav;
  }
  return Node;
}

const RapNode &RapTree::findSmallestCover(uint64_t X) const {
  return *Arena.handle(descendIndex(X));
}

void RapTree::addPoint(uint64_t X, uint64_t Weight) {
  // A zero-weight event carries no information; returning early keeps
  // it from perturbing the structure (the split check below fires on
  // the *current* counter value, so a zero-weight touch of a node whose
  // counter was inflated by merge-backs used to split it).
  if (Weight == 0)
    return;
  assert((Config.RangeBits == 64 || X < (uint64_t(1) << Config.RangeBits)) &&
         "event outside the configured universe");
  NumEvents = saturatingAdd(NumEvents, Weight);

  uint32_t Node = descendIndex(X);
  uint64_t OldCount = Arena.Counts[Node];
  uint64_t NewCount = saturatingAdd(OldCount, Weight);
  Arena.Counts[Node] = NewCount;

  // First touch of this counter: the node's range is no longer
  // provably cold. Marking at the node's own scale (not just X's
  // finest bucket) is what keeps the fence sound — the counter stands
  // for events anywhere in the range.
  if (OldCount == 0) {
    ++WarmNodes;
    if (Node != 0 && Fence.enabled())
      Fence.markNode(Arena.Los[Node], Arena.Widths[Node]);
  }

  // Split check (Sec 2.2): a counter that outgrew the threshold sprouts
  // children so subsequent events in this range profile more precisely
  // — unless the node budget is exhausted, in which case the tree
  // coarsens instead of allocating (the hardware's fixed-capacity
  // behavior, Sec 3.3). With admission enabled a due split must first
  // win a randomized admission draw, so cold leaves that barely
  // crossed the threshold stay unsplit (no allocator touch at all).
  if (Arena.Widths[Node] != 0 &&
      static_cast<double>(NewCount) > Config.splitThreshold(NumEvents) &&
      (!Config.EnableAdmission || admitSplit(NewCount, Weight)))
    trySplit(Node, X, Weight);

  // Batched merges at exponentially growing intervals (Sec 3.1, Fig 3).
  if (Config.EnableMerges && NumEvents >= NextMergeAt) {
    mergeNow();
    scheduleAfterMerge();
  }
}

bool RapTree::admitSplit(uint64_t NewCount, uint64_t Weight) {
  // Geometric-style sampling against the leaf's coldness: the admit
  // probability Over / (c*T + 1) rises linearly with the overshoot
  // past the split threshold T, so a leaf needs on the order of c*T
  // extra arrivals before it splits. A hot range accumulates that
  // overshoot in a handful of events; a cold singleton essentially
  // never does. The RNG is one inline SplitMix64 step so the whole
  // decision stream is a single serializable word; exactly one draw
  // is consumed per due-split arrival, which is what makes replays
  // (and snapshot-resumed runs) bit-identical.
  uint64_t Z = (AdmissionRngState += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  Z ^= Z >> 31;
  double Draw = static_cast<double>(Z >> 11) * 0x1.0p-53;
  double Threshold = Config.splitThreshold(NumEvents);
  double Over = static_cast<double>(NewCount) - Threshold; // > 0 here
  if (Draw < Over / (Config.AdmissionCoarseness * Threshold + 1.0))
    return true;
  // Denied: this arrival keeps profiling at the current granularity.
  // Charging its whole weight (not just the split's precision loss)
  // keeps the admission error bound closed-form regardless of the
  // probability scheme: any range's extra under-count is at most the
  // total charged weight.
  ++Pressure.AdmissionDeniedSplits;
  Pressure.AdmissionDeferredWeight =
      saturatingAdd(Pressure.AdmissionDeferredWeight, Weight);
  return false;
}

uint64_t RapTree::splitAllocCount(uint32_t Node) const {
  // Nodes a split of \p Node would add: a whole fresh child block, or
  // only the dead slots a revive would resurrect.
  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned MyWidth = Arena.Widths[Node];
  unsigned ChildBits = MyWidth > BitsPerLevel ? MyWidth - BitsPerLevel : 0;
  unsigned SlotLog2 = MyWidth - ChildBits;
  uint64_t Nav = Arena.Navs[Node];
  if (NodeArena::navIsLeaf(Nav))
    return uint64_t(1) << SlotLog2;
  uint64_t Dead = 0;
  uint32_t First = NodeArena::navFirstChild(Nav);
  unsigned NumSlots = 1u << SlotLog2;
  for (unsigned Slot = 0; Slot != NumSlots; ++Slot)
    if (NodeArena::navIsDead(Arena.Navs[First + Slot]))
      ++Dead;
  return Dead;
}

/// Cap on TreePressure::CoarsenLevel: 2^60 already exceeds any
/// saturating threshold the schedule can produce.
static constexpr uint64_t MaxCoarsenLevel = 60;

uint64_t RapTree::forcedMergePass() {
  // Pressure threshold: the scheduled merge threshold escalated by the
  // coarsening level (each level doubles it), and at least 1 so
  // zero-weight subtrees always fold. Folded weight leaves the eps*n
  // guarantee — the scheduled q/(q-1) analysis does not cover folds
  // run off-schedule — so it is charged to DegradedWeight, and the
  // pass deliberately does NOT touch NumMergePasses/MergeEventCounts:
  // the paper's merge-schedule invariants stay exact.
  double Scale = std::ldexp(
      1.0, static_cast<int>(std::min(Pressure.CoarsenLevel, MaxCoarsenLevel)));
  double Threshold = std::max(1.0, Config.mergeThreshold(NumEvents) * Scale);
  uint64_t Removed = 0;
  uint64_t Folded = 0;
  mergeWalk(0, Threshold, Removed, &Folded);
  ++Pressure.ForcedMergePasses;
  Pressure.ReclaimedNodes += Removed;
  Pressure.DegradedWeight = saturatingAdd(Pressure.DegradedWeight, Folded);
  rebuildFence();
  return Removed;
}

void RapTree::trySplit(uint32_t Node, uint64_t X, uint64_t Weight) {
  uint64_t Budget = Pressure.NodeBudget;
  bool Charged = false;
  if (Budget != 0) {
    // Churn charge: once a forced pass has reclaimed subtrees, an event
    // can land on a node whose counter was already past the split
    // threshold (its precise child was folded away, so the descend
    // stops early). Even when the re-split below succeeds, this event's
    // weight stays at the coarse node forever — counters never move
    // down — so it leaves the eps*n guarantee and must be charged. An
    // unbudgeted tree only re-lands like this once per scheduled merge
    // pass, which the oracle's per-epoch slack already covers.
    if (Pressure.ForcedMergePasses != 0 && Arena.Counts[Node] > Weight &&
        static_cast<double>(Arena.Counts[Node] - Weight) >
            Config.splitThreshold(NumEvents)) {
      Pressure.DegradedWeight = saturatingAdd(Pressure.DegradedWeight, Weight);
      Charged = true;
    }
    uint64_t Need = splitAllocCount(Node);
    if (NumNodes + Need > Budget) {
      ++Pressure.BudgetHits;
      // Reclaim instead of allocating: one forced coarsening pass,
      // then re-descend (the pass may have folded the landing node
      // into an ancestor) and re-evaluate there.
      forcedMergePass();
      Node = descendIndex(X);
      Need = splitAllocCount(Node);
      bool StillWants =
          Arena.Widths[Node] != 0 &&
          static_cast<double>(Arena.Counts[Node]) >
              Config.splitThreshold(NumEvents);
      if (!StillWants || NumNodes + Need > Budget) {
        // Degrade: this event stays profiled at the current (coarse)
        // granularity. Escalate so the next pass folds harder.
        ++Pressure.RefusedSplits;
        if (!Charged)
          Pressure.DegradedWeight =
              saturatingAdd(Pressure.DegradedWeight, Weight);
        if (Pressure.CoarsenLevel < MaxCoarsenLevel)
          ++Pressure.CoarsenLevel;
        return;
      }
    }
  }
  try {
    splitNode(Node);
  } catch (const std::bad_alloc &) {
    // allocBlock rolled the arena back, so refusing the split leaves
    // the tree exactly as consistent as a budget refusal does.
    ++Pressure.AllocFailures;
    ++Pressure.RefusedSplits;
    if (!Charged)
      Pressure.DegradedWeight = saturatingAdd(Pressure.DegradedWeight, Weight);
  }
}

void RapTree::enforceNodeBudget() {
  // Bulk paths (absorb, snapshot restore) can overshoot the cap in one
  // step; forced passes with escalating thresholds bring the tree back
  // under it. Terminates: at the level cap the threshold exceeds any
  // possible subtree weight, so everything folds into the root.
  uint64_t Budget = Pressure.NodeBudget;
  if (Budget == 0)
    return;
  while (NumNodes > Budget) {
    ++Pressure.BudgetHits;
    uint64_t Removed = forcedMergePass();
    if (NumNodes <= Budget)
      break;
    if (Pressure.CoarsenLevel >= MaxCoarsenLevel && Removed == 0)
      break;
    if (Pressure.CoarsenLevel < MaxCoarsenLevel)
      ++Pressure.CoarsenLevel;
  }
}

void RapTree::splitNode(uint32_t Node) {
  assert(Arena.Widths[Node] != 0 && "cannot split a unit range");
  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned MyWidth = Arena.Widths[Node];
  unsigned ChildBits = MyWidth > BitsPerLevel ? MyWidth - BitsPerLevel : 0;
  unsigned SlotLog2 = MyWidth - ChildBits;
  uint64_t Nav = Arena.Navs[Node];

  // Create every missing child with a zero counter. The parent keeps
  // its own counter (counters are never decremented, Sec 2.2 fn 1).
  if (NodeArena::navIsLeaf(Nav)) {
    Arena.allocChildren(Node, ChildBits, SlotLog2, /*Dead=*/false);
    NumNodes += uint64_t(1) << SlotLog2;
  } else {
    // Revive in place the slots merged back since the last split.
    uint32_t First = NodeArena::navFirstChild(Nav);
    unsigned NumSlots = 1u << SlotLog2;
    for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
      uint32_t Child = First + Slot;
      if (!NodeArena::navIsDead(Arena.Navs[Child]))
        continue;
      Arena.Navs[Child] = NodeArena::LeafNav;
      Arena.Counts[Child] = 0;
      ++NumNodes;
    }
  }
  ++NumSplits;
  MaxNumNodes = std::max(MaxNumNodes, NumNodes);
}

uint64_t RapTree::mergeWalk(uint32_t Node, double Threshold,
                            uint64_t &Removed, uint64_t *FoldedWeight) {
  uint64_t Total = Arena.Counts[Node];
  uint64_t Nav = Arena.Navs[Node];
  if (NodeArena::navIsLeaf(Nav))
    return Total;

  bool AnyChildLeft = false;
  uint32_t First = NodeArena::navFirstChild(Nav);
  unsigned SlotLog2 = NodeArena::navSlotLog2(Nav);
  unsigned NumSlots = 1u << SlotLog2;
  for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
    uint32_t Child = First + Slot;
    if (NodeArena::navIsDead(Arena.Navs[Child]))
      continue;
    uint64_t ChildWeight = mergeWalk(Child, Threshold, Removed, FoldedWeight);
    Total = saturatingAdd(Total, ChildWeight);
    if (static_cast<double>(ChildWeight) < Threshold) {
      // Fold the entire (already internally merged) child subtree into
      // this node: child counts are equally valid on the super-range
      // (Sec 2.2 "Merge").
      Arena.Counts[Node] = saturatingAdd(Arena.Counts[Node], ChildWeight);
      if (FoldedWeight)
        *FoldedWeight = saturatingAdd(*FoldedWeight, ChildWeight);
      uint64_t Dropped = Arena.subtreeNodeCount(Child);
      Removed += Dropped;
      NumNodes -= Dropped;
      Arena.killSubtree(Child);
    } else {
      AnyChildLeft = true;
    }
  }
  if (!AnyChildLeft) {
    // Every slot merged back: recycle the whole block; the node is a
    // leaf again.
    Arena.freeBlock(First, SlotLog2);
    Arena.Navs[Node] = NodeArena::LeafNav;
  }
  return Total;
}

void RapTree::unionWith(uint32_t Mine, const RapNode &Theirs) {
  // Recursive structural union: Other's node counts land on the
  // equally-ranged node here, materializing missing children so no
  // precision recorded by the shard is lost at union time (the absorb
  // merge pass re-compacts whatever is no longer warranted).
  Arena.Counts[Mine] = saturatingAdd(Arena.Counts[Mine], Theirs.count());
  if (!Theirs.hasChildren())
    return;
  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned MyWidth = Arena.Widths[Mine];
  unsigned ChildBits = MyWidth > BitsPerLevel ? MyWidth - BitsPerLevel : 0;
  unsigned SlotLog2 = MyWidth - ChildBits;
  uint64_t Nav = Arena.Navs[Mine];
  uint32_t First =
      NodeArena::navIsLeaf(Nav)
          ? Arena.allocChildren(Mine, ChildBits, SlotLog2, /*Dead=*/true)
          : NodeArena::navFirstChild(Nav);
  unsigned NumSlots = 1u << SlotLog2;
  for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
    const RapNode *TheirChild = Theirs.child(Slot);
    if (!TheirChild)
      continue;
    uint32_t Child = First + Slot;
    if (NodeArena::navIsDead(Arena.Navs[Child])) {
      Arena.Navs[Child] = NodeArena::LeafNav;
      Arena.Counts[Child] = 0;
      ++NumNodes;
    }
    unionWith(Child, *TheirChild);
  }
}

void RapTree::absorb(const RapTree &Other) {
  assert(Config.RangeBits == Other.Config.RangeBits &&
         Config.BranchFactor == Other.Config.BranchFactor &&
         "absorb requires identical tree geometry");
  unionWith(0, Other.root());
  NumEvents = saturatingAdd(NumEvents, Other.NumEvents);
  MaxNumNodes = std::max(MaxNumNodes, NumNodes);
  // Re-compact at the combined stream position and realign the merge
  // schedule with it.
  if (Config.EnableMerges) {
    mergeNow();
    while (NextMergeAt <= NumEvents && NextMergeAt != ~uint64_t(0))
      scheduleAfterMerge();
  }
  // The structural union can overshoot a node budget arbitrarily far;
  // coarsen back under it.
  enforceNodeBudget();
  // unionWith wrote counters directly; the merge/budget passes above
  // may not have run, so re-derive the fence unconditionally.
  rebuildFence();
}

uint64_t RapTree::mergeNow() {
  double Threshold = Config.mergeThreshold(NumEvents);
  uint64_t Removed = 0;
  mergeWalk(0, Threshold, Removed);
  ++NumMergePasses;
  NumMergedNodes += Removed;
  MergeEventCounts.push_back(NumEvents);
  rebuildFence();
  return Removed;
}

void RapTree::scheduleAfterMerge() {
  double Next = static_cast<double>(NextMergeAt) * Config.MergeRatio;
  // llround is undefined once Next exceeds int64 range; clamp to the
  // saturated sentinel so a nearly-full event counter cannot wrap the
  // schedule back below NumEvents (which would loop forever in the
  // catch-up loops below).
  uint64_t NextInt =
      Next >= static_cast<double>(std::numeric_limits<int64_t>::max())
          ? ~uint64_t(0)
          : static_cast<uint64_t>(std::llround(Next));
  NextMergeAt = std::max<uint64_t>(saturatingAdd(NumEvents, 1), NextInt);
}

uint64_t RapTree::arenaBytes() const {
  uint64_t SlabBytes =
      static_cast<uint64_t>(Arena.Los.capacity()) *
      (sizeof(uint64_t) * 3 + sizeof(uint8_t));
  uint64_t HandleBytes =
      static_cast<uint64_t>(Arena.Handles.size()) * sizeof(RapNode);
  return SlabBytes + HandleBytes;
}

uint64_t RapTree::estimateWalk(const RapNode &Node, uint64_t Lo,
                               uint64_t Hi) const {
  if (Node.lo() > Hi || Node.hi() < Lo)
    return 0;
  if (Lo <= Node.lo() && Node.hi() <= Hi)
    return Node.subtreeWeight();
  // Partial overlap: the node's own counter may account for events
  // outside [Lo, Hi], so only descendants fully inside contribute.
  // This keeps the estimate a guaranteed lower bound.
  uint64_t Total = 0;
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      Total = saturatingAdd(Total, estimateWalk(*Child, Lo, Hi));
  return Total;
}

bool RapTree::rangeProvablyCold(uint64_t Lo, uint64_t Hi) const {
  if (!Fence.enabled())
    return false;
  // A query covering the whole universe contains the root, whose own
  // counter contributes even though the fence never tracks it; only
  // an empty stream makes that query cold.
  if (Lo == 0 && Hi >= root().hi())
    return NumEvents == 0;
  return Fence.provablyCold(Lo, Hi);
}

uint64_t RapTree::estimateRange(uint64_t Lo, uint64_t Hi) const {
  assert(Lo <= Hi && "empty query range");
  if (rangeProvablyCold(Lo, Hi))
    return 0;
  return estimateWalk(root(), Lo, Hi);
}

/// Upper-bound companion of estimateWalk: every counter on a node
/// intersecting the query may hold in-range events.
static uint64_t upperWalk(const RapNode &Node, uint64_t Lo, uint64_t Hi) {
  if (Node.lo() > Hi || Node.hi() < Lo)
    return 0;
  if (Lo <= Node.lo() && Node.hi() <= Hi)
    return Node.subtreeWeight();
  uint64_t Total = Node.count(); // straddling: possibly in range
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      Total = saturatingAdd(Total, upperWalk(*Child, Lo, Hi));
  return Total;
}

/// upperWalk restricted to what can be nonzero on a fence-cold query:
/// no positive node is fully contained in [Lo, Hi], so every
/// fully-inside subtree weighs zero and only nodes STRADDLING an
/// endpoint contribute their own counters. A node intersecting the
/// query without being contained must cover Lo or Hi (its range
/// extends past one end), so the walk follows just the two endpoint
/// ancestor chains — O(depth) instead of a full overlap walk, and
/// bit-identical to upperWalk by the argument above.
static uint64_t coldUpperWalk(const RapNode &Node, uint64_t Lo,
                              uint64_t Hi) {
  uint64_t Total = Node.count();
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot)) {
      bool HasLo = Child->lo() <= Lo && Lo <= Child->hi();
      bool HasHi = Child->lo() <= Hi && Hi <= Child->hi();
      if (HasLo || HasHi)
        Total = saturatingAdd(Total, coldUpperWalk(*Child, Lo, Hi));
    }
  return Total;
}

RapTree::RangeBounds RapTree::estimateRangeBounds(uint64_t Lo,
                                                  uint64_t Hi) const {
  assert(Lo <= Hi && "empty query range");
  RangeBounds Bounds;
  if (rangeProvablyCold(Lo, Hi)) {
    Bounds.Lower = 0;
    // Zero for the empty-stream full-universe case the cold check
    // lets through; otherwise the endpoint chains still bound from
    // above (wide straddling counters may hold in-range events).
    Bounds.Upper = Lo == 0 && Hi >= root().hi()
                       ? 0
                       : coldUpperWalk(root(), Lo, Hi);
    return Bounds;
  }
  Bounds.Lower = estimateWalk(root(), Lo, Hi);
  Bounds.Upper = upperWalk(root(), Lo, Hi);
  return Bounds;
}

uint64_t RapTree::hotWalk(const RapNode &Node, double Threshold,
                          unsigned Depth, std::vector<HotRange> &Out) const {
  // Preorder output position is reserved before visiting children so
  // ancestors precede descendants; we patch the entry afterwards.
  size_t MyIndex = Out.size();
  Out.emplace_back();

  uint64_t Exclusive = Node.count();
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      Exclusive =
          saturatingAdd(Exclusive, hotWalk(*Child, Threshold, Depth + 1, Out));

  bool IsHot = static_cast<double>(Exclusive) >= Threshold;
  if (!IsHot) {
    // Not hot: drop the reserved placeholder. Hot descendants appended
    // after it keep their relative (preorder) order.
    Out.erase(Out.begin() + static_cast<std::ptrdiff_t>(MyIndex));
    return Exclusive;
  }

  HotRange &H = Out[MyIndex];
  H.Lo = Node.lo();
  H.Hi = Node.hi();
  H.WidthBits = Node.widthBits();
  H.Depth = Depth;
  H.ExclusiveWeight = Exclusive;
  H.SubtreeWeight = Node.subtreeWeight();
  return 0; // Hot weight is not propagated to the parent (Sec 4.1).
}

std::vector<HotRange> RapTree::extractHotRanges(double Phi) const {
  assert(Phi > 0.0 && Phi <= 1.0 && "hotness fraction out of range");
  std::vector<HotRange> Out;
  double Threshold = Phi * static_cast<double>(NumEvents);
  hotWalk(root(), Threshold, 0, Out);
  return Out;
}

void RapTree::topKWalk(const RapNode &Node, unsigned Depth,
                       uint64_t AncestorOwn, bool PruneCold,
                       std::vector<TopKRange> &Out) const {
  // A fence-cold non-root subtree holds only zero counters: every
  // entry it would emit has Retained == 0 and can never displace the
  // K positive-retained winners the caller established exist. Skip
  // it before the subtreeWeight walk below, which is where topK's
  // time actually goes. Warm nodes mark their own buckets, so no
  // warm node can hide under a pruned ancestor.
  if (PruneCold && Depth != 0 && Fence.provablyCold(Node.lo(), Node.hi()))
    return;
  TopKRange R;
  R.Lo = Node.lo();
  R.Hi = Node.hi();
  R.WidthBits = Node.widthBits();
  R.Depth = Depth;
  R.Retained = Node.count();
  // Subtree weight is exactly estimateRange(Lo, Hi) for a node-aligned
  // range (a provable lower bound); the matching upper bound charges
  // every ancestor's own counter, since those events may fall anywhere
  // inside the ancestor's wider range.
  R.LowerWeight = Node.subtreeWeight();
  R.UpperWeight = saturatingAdd(R.LowerWeight, AncestorOwn);
  Out.push_back(R);
  uint64_t ChildAncestorOwn = saturatingAdd(AncestorOwn, Node.count());
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      topKWalk(*Child, Depth + 1, ChildAncestorOwn, PruneCold, Out);
}

std::vector<TopKRange> RapTree::topK(size_t K) const {
  std::vector<TopKRange> Out;
  if (K == 0)
    return Out;
  // Cold subtrees may be skipped only when the K winners are all
  // positive-retained, i.e. K does not reach into the zero-retained
  // tail; otherwise the tail entries are part of the answer and the
  // walk must visit everything.
  bool PruneCold = Fence.enabled() && K <= WarmNodes;
  Out.reserve(NumNodes);
  topKWalk(root(), 0, 0, PruneCold, Out);
  // Strict total order (node ranges are unique, so (Lo, WidthBits)
  // breaks every Retained tie): the k-nesting property topK(k) ⊆
  // topK(k+m) falls out of prefix-of-a-fixed-order.
  auto Before = [](const TopKRange &A, const TopKRange &B) {
    if (A.Retained != B.Retained)
      return A.Retained > B.Retained;
    if (A.Lo != B.Lo)
      return A.Lo < B.Lo;
    return A.WidthBits < B.WidthBits;
  };
  if (Out.size() > K) {
    std::partial_sort(Out.begin(),
                      Out.begin() + static_cast<std::ptrdiff_t>(K), Out.end(),
                      Before);
    Out.resize(K);
  } else {
    std::sort(Out.begin(), Out.end(), Before);
  }
  return Out;
}

/// Prints one node line: hex range, own count, subtree weight, percent.
static void dumpNode(std::ostream &OS, const RapNode &Node, unsigned Depth,
                     uint64_t NumEvents) {
  for (unsigned I = 0; I != Depth; ++I)
    OS << "  ";
  char Buffer[128];
  double Percent =
      NumEvents == 0
          ? 0.0
          : 100.0 * static_cast<double>(Node.subtreeWeight()) /
                static_cast<double>(NumEvents);
  std::snprintf(Buffer, sizeof(Buffer),
                "[%llx, %llx] count=%llu subtree=%llu (%.1f%%)",
                static_cast<unsigned long long>(Node.lo()),
                static_cast<unsigned long long>(Node.hi()),
                static_cast<unsigned long long>(Node.count()),
                static_cast<unsigned long long>(Node.subtreeWeight()),
                Percent);
  OS << Buffer << '\n';
}

static void dumpWalk(std::ostream &OS, const RapNode &Node, unsigned Depth,
                     uint64_t NumEvents) {
  dumpNode(OS, Node, Depth, NumEvents);
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      dumpWalk(OS, *Child, Depth + 1, NumEvents);
}

void RapTree::dump(std::ostream &OS) const {
  dumpWalk(OS, root(), 0, NumEvents);
}

void RapTree::dumpHot(std::ostream &OS, double Phi) const {
  std::vector<HotRange> Hot = extractHotRanges(Phi);

  auto PrintLine = [&](uint64_t Lo, uint64_t Hi, unsigned Indent,
                       uint64_t Weight) {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
    char Buffer[128];
    double Percent =
        NumEvents == 0
            ? 0.0
            : 100.0 * static_cast<double>(Weight) /
                  static_cast<double>(NumEvents);
    std::snprintf(Buffer, sizeof(Buffer), "[%llx, %llx] %.1f%%",
                  static_cast<unsigned long long>(Lo),
                  static_cast<unsigned long long>(Hi), Percent);
    OS << Buffer << '\n';
  };

  // Always lead with the root line for context, as the paper's Fig 5
  // does; hot ranges are then indented by their nesting depth among
  // hot ranges only (not their raw tree depth).
  bool RootHot = !Hot.empty() && Hot.front().Depth == 0;
  if (!RootHot)
    PrintLine(root().lo(), root().hi(), 0, root().count());

  std::vector<std::pair<uint64_t, uint64_t>> Enclosing;
  for (const HotRange &H : Hot) {
    while (!Enclosing.empty() && !(Enclosing.back().first <= H.Lo &&
                                   H.Hi <= Enclosing.back().second))
      Enclosing.pop_back();
    unsigned Indent =
        static_cast<unsigned>(Enclosing.size()) + (RootHot ? 0 : 1);
    PrintLine(H.Lo, H.Hi, Indent, H.ExclusiveWeight);
    Enclosing.emplace_back(H.Lo, H.Hi);
  }
}
