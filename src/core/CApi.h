//===- core/CApi.h - The paper's software API (Sec 3.2) --------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-call software interface described in Section 3.2 of the
/// paper: rap_init(), rap_add_points(), rap_finalize(). These are thin
/// C-linkage wrappers over RapTree so the profiler "can either be
/// called from online analysis or to post process trace files". The
/// finalize call dumps the resulting RAP tree in ASCII for further
/// processing (hot-spot identification, range coverage, ...).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_CAPI_H
#define RAP_CORE_CAPI_H

#include <cstdint>

extern "C" {

/// Opaque handle to a RAP profile.
typedef struct rap_handle rap_handle;

/// Creates a RAP profile over the universe [0, 2^range_bits) with
/// error bound \p epsilon and branching factor \p branch_factor
/// (pass 0 for the paper defaults: b = 4, q = 2). Returns null if the
/// parameters do not validate.
rap_handle *rap_init(unsigned range_bits, double epsilon,
                     unsigned branch_factor);

/// Feeds \p num_points events into the profile. Looks up the
/// appropriate counter, updates it, and internally performs the split
/// and batched-merge operations when needed.
void rap_add_points(rap_handle *handle, const uint64_t *points,
                    uint64_t num_points);

/// Number of events processed so far.
uint64_t rap_num_events(const rap_handle *handle);

/// Current number of range counters (nodes) in the tree.
uint64_t rap_num_nodes(const rap_handle *handle);

/// Lower-bound estimate of the number of events in [lo, hi].
uint64_t rap_estimate_range(const rap_handle *handle, uint64_t lo,
                            uint64_t hi);

/// Writes an ASCII dump of the profile tree into \p buffer (at most
/// \p size bytes including the terminator) and destroys the handle.
/// Pass a null \p buffer to just destroy the handle. Returns the
/// number of bytes that the full dump requires (excluding the
/// terminator), like snprintf.
uint64_t rap_finalize(rap_handle *handle, char *buffer, uint64_t size);

} // extern "C"

#endif // RAP_CORE_CAPI_H
