//===- core/CApi.h - The paper's software API (Sec 3.2) --------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-call software interface described in Section 3.2 of the
/// paper: rap_init(), rap_add_points(), rap_finalize(). These are thin
/// C-linkage wrappers over RapTree so the profiler "can either be
/// called from online analysis or to post process trace files". The
/// finalize call dumps the resulting RAP tree in ASCII for further
/// processing (hot-spot identification, range coverage, ...).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_CAPI_H
#define RAP_CORE_CAPI_H

#include <cstdint>

/// Every entry point is exception-tight: no C++ exception can cross
/// the C boundary (that would be undefined behavior for a C caller).
/// Failures surface as null handles / zero returns plus a diagnostic
/// retrievable with rap_last_error().
#if defined(__cplusplus)
#define RAP_NOEXCEPT noexcept
#else
#define RAP_NOEXCEPT
#endif

extern "C" {

/// Opaque handle to a RAP profile.
typedef struct rap_handle rap_handle;

/// Machine-readable classification of the most recent failure, the
/// companion to rap_last_error()'s human-readable text. Thread-local,
/// like the text: each thread sees only its own failures.
typedef enum rap_error_code {
  RAP_OK = 0,                   ///< No failure recorded.
  RAP_ERR_INVALID_ARGUMENT = 1, ///< A parameter failed validation.
  RAP_ERR_ALLOC = 2,            ///< Memory allocation failed.
  RAP_ERR_BUDGET_EXHAUSTED = 3, ///< Node budget reached; estimates are
                                ///< degraded (informational: events
                                ///< were still recorded).
  RAP_ERR_CORRUPT_PROFILE = 4,  ///< A profile file failed validation
                                ///< (truncated, bit flips, bad CRC).
  RAP_ERR_IO_FAILURE = 5,       ///< A file could not be read/written.
  RAP_ERR_INTERNAL = 6,         ///< Any other internal failure.
} rap_error_code;

/// Creates a RAP profile over the universe [0, 2^range_bits) with
/// error bound \p epsilon and branching factor \p branch_factor
/// (pass 0 for the paper defaults: b = 4, q = 2). Returns null if the
/// parameters do not validate or allocation fails; rap_last_error()
/// then describes the failure.
rap_handle *rap_init(unsigned range_bits, double epsilon,
                     unsigned branch_factor) RAP_NOEXCEPT;

/// Like rap_init(), but additionally caps the profile at
/// \p max_nodes live tree nodes (0 = unbounded, identical to
/// rap_init). At the cap the profiler degrades gracefully instead of
/// allocating: splits are refused and cold subtrees are force-merged;
/// estimates remain lower bounds and rap_pressure_stats() reports how
/// much accuracy was given up.
rap_handle *rap_init_budgeted(unsigned range_bits, double epsilon,
                              unsigned branch_factor,
                              uint64_t max_nodes) RAP_NOEXCEPT;

/// Like rap_init(), but with the randomized split-admission gate
/// enabled: a leaf due to split is admitted only with probability
/// proportional to how far its counter overshot the threshold, so
/// cold singletons never allocate nodes. \p admission_coarseness
/// scales the denial rate (pass a negative value for the default;
/// larger denies more); \p admission_seed fixes the decision stream
/// so runs replay deterministically. The accuracy cost is bounded and
/// observable: rap_pressure_stats() reports the deferred weight,
/// which is the extra absolute error any estimate can carry.
rap_handle *rap_init_admission(unsigned range_bits, double epsilon,
                               unsigned branch_factor,
                               double admission_coarseness,
                               uint64_t admission_seed) RAP_NOEXCEPT;

/// Feeds \p num_points events into the profile. Looks up the
/// appropriate counter, updates it, and internally performs the split
/// and batched-merge operations when needed. On an internal failure
/// (e.g. allocation during a split) the already-consumed prefix stays
/// recorded, the rest is dropped, and rap_last_error() is set.
void rap_add_points(rap_handle *handle, const uint64_t *points,
                    uint64_t num_points) RAP_NOEXCEPT;

/// Number of events processed so far.
uint64_t rap_num_events(const rap_handle *handle) RAP_NOEXCEPT;

/// Current number of range counters (nodes) in the tree.
uint64_t rap_num_nodes(const rap_handle *handle) RAP_NOEXCEPT;

/// Lower-bound estimate of the number of events in [lo, hi].
uint64_t rap_estimate_range(const rap_handle *handle, uint64_t lo,
                            uint64_t hi) RAP_NOEXCEPT;

/// One entry of a top-k hot-range report (rap_top_k). Mirrors the C++
/// TopKRange struct field for field.
typedef struct rap_range {
  uint64_t lo;           ///< Lowest value of the range.
  uint64_t hi;           ///< Highest value (inclusive).
  unsigned width_bits;   ///< log2 of the range width.
  uint64_t retained;     ///< Weight retained at this granularity.
  uint64_t lower_weight; ///< Provable lower bound on the true count.
  uint64_t upper_weight; ///< Provable upper bound on the true count.
} rap_range;

/// Writes the profile's top \p k hottest ranges (by retained weight,
/// deterministically tie-broken) into \p out, which must have room
/// for \p k entries. Returns the number of entries written — fewer
/// than \p k when the tree is smaller — or -1 with rap_errno() =
/// RAP_ERR_INVALID_ARGUMENT for a null \p handle, a null \p out, or
/// k == 0.
int64_t rap_top_k(const rap_handle *handle, rap_range *out,
                  uint64_t k) RAP_NOEXCEPT;

/// Writes an ASCII dump of the profile tree into \p buffer (at most
/// \p size bytes including the terminator) and destroys the handle.
/// Pass a null \p buffer to just destroy the handle. Returns the
/// number of bytes that the full dump requires (excluding the
/// terminator), like snprintf; on an internal failure the handle is
/// still destroyed and 0 is returned with rap_last_error() set.
uint64_t rap_finalize(rap_handle *handle, char *buffer,
                      uint64_t size) RAP_NOEXCEPT;

/// Resource-pressure counters of a budgeted profile (all zero when no
/// budget is configured and no allocation ever failed). Mirrors the
/// C++ TreePressure struct field for field.
typedef struct rap_pressure {
  uint64_t node_budget;        ///< Effective node cap (0 = unbounded).
  uint64_t budget_hits;        ///< Updates that ran into the cap.
  uint64_t refused_splits;     ///< Due splits refused at the cap.
  uint64_t forced_merge_passes; ///< Emergency coarsening passes.
  uint64_t reclaimed_nodes;    ///< Nodes freed by forced passes.
  uint64_t coarsen_level;      ///< Current degradation level.
  uint64_t degraded_weight;    ///< Event weight outside the eps*n bound.
  uint64_t alloc_failures;     ///< Splits abandoned on bad_alloc.
  uint64_t admission_denied_splits;   ///< Due splits the admission
                                      ///< gate denied.
  uint64_t admission_deferred_weight; ///< Weight of denied arrivals —
                                      ///< the closed-form extra error
                                      ///< bound admission adds.
} rap_pressure;

/// Copies the profile's pressure counters into \p out. Returns 0 on
/// success, -1 (with rap_errno() set) if \p handle or \p out is null.
int rap_pressure_stats(const rap_handle *handle,
                       rap_pressure *out) RAP_NOEXCEPT;

/// Saves the profile to \p path in the checksummed binary snapshot
/// format, atomically (write to a temp file, then rename). Returns 0
/// on success, -1 with rap_errno() = RAP_ERR_IO_FAILURE (or
/// RAP_ERR_INVALID_ARGUMENT for a null path) on failure; on failure
/// an existing file at \p path is left untouched.
int rap_save_profile(const rap_handle *handle,
                     const char *path) RAP_NOEXCEPT;

/// Loads a profile saved by rap_save_profile() (or written by the
/// rap_profile tool) and returns a live handle positioned to continue
/// profiling. Returns null with rap_errno() = RAP_ERR_CORRUPT_PROFILE
/// for a file that fails validation (truncation, bit flips, checksum
/// mismatch) or RAP_ERR_IO_FAILURE when the file cannot be read.
rap_handle *rap_load_profile(const char *path) RAP_NOEXCEPT;

/// Describes the most recent failure observed by this thread inside
/// the C API. Never null; the empty string if no call has failed.
/// Successful calls do not clear it, so check return values first.
const char *rap_last_error(void) RAP_NOEXCEPT;

/// The code classifying the most recent failure on this thread, or
/// RAP_OK if none. Successful calls do not clear it; use
/// rap_clear_error() between calls when polling.
rap_error_code rap_errno(void) RAP_NOEXCEPT;

/// Resets this thread's rap_errno() to RAP_OK and rap_last_error()
/// to the empty string.
void rap_clear_error(void) RAP_NOEXCEPT;

} // extern "C"

#endif // RAP_CORE_CAPI_H
