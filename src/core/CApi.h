//===- core/CApi.h - The paper's software API (Sec 3.2) --------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-call software interface described in Section 3.2 of the
/// paper: rap_init(), rap_add_points(), rap_finalize(). These are thin
/// C-linkage wrappers over RapTree so the profiler "can either be
/// called from online analysis or to post process trace files". The
/// finalize call dumps the resulting RAP tree in ASCII for further
/// processing (hot-spot identification, range coverage, ...).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_CAPI_H
#define RAP_CORE_CAPI_H

#include <cstdint>

/// Every entry point is exception-tight: no C++ exception can cross
/// the C boundary (that would be undefined behavior for a C caller).
/// Failures surface as null handles / zero returns plus a diagnostic
/// retrievable with rap_last_error().
#if defined(__cplusplus)
#define RAP_NOEXCEPT noexcept
#else
#define RAP_NOEXCEPT
#endif

extern "C" {

/// Opaque handle to a RAP profile.
typedef struct rap_handle rap_handle;

/// Creates a RAP profile over the universe [0, 2^range_bits) with
/// error bound \p epsilon and branching factor \p branch_factor
/// (pass 0 for the paper defaults: b = 4, q = 2). Returns null if the
/// parameters do not validate or allocation fails; rap_last_error()
/// then describes the failure.
rap_handle *rap_init(unsigned range_bits, double epsilon,
                     unsigned branch_factor) RAP_NOEXCEPT;

/// Feeds \p num_points events into the profile. Looks up the
/// appropriate counter, updates it, and internally performs the split
/// and batched-merge operations when needed. On an internal failure
/// (e.g. allocation during a split) the already-consumed prefix stays
/// recorded, the rest is dropped, and rap_last_error() is set.
void rap_add_points(rap_handle *handle, const uint64_t *points,
                    uint64_t num_points) RAP_NOEXCEPT;

/// Number of events processed so far.
uint64_t rap_num_events(const rap_handle *handle) RAP_NOEXCEPT;

/// Current number of range counters (nodes) in the tree.
uint64_t rap_num_nodes(const rap_handle *handle) RAP_NOEXCEPT;

/// Lower-bound estimate of the number of events in [lo, hi].
uint64_t rap_estimate_range(const rap_handle *handle, uint64_t lo,
                            uint64_t hi) RAP_NOEXCEPT;

/// Writes an ASCII dump of the profile tree into \p buffer (at most
/// \p size bytes including the terminator) and destroys the handle.
/// Pass a null \p buffer to just destroy the handle. Returns the
/// number of bytes that the full dump requires (excluding the
/// terminator), like snprintf; on an internal failure the handle is
/// still destroyed and 0 is returned with rap_last_error() set.
uint64_t rap_finalize(rap_handle *handle, char *buffer,
                      uint64_t size) RAP_NOEXCEPT;

/// Describes the most recent failure observed by this thread inside
/// the C API. Never null; the empty string if no call has failed.
/// Successful calls do not clear it, so check return values first.
const char *rap_last_error(void) RAP_NOEXCEPT;

} // extern "C"

#endif // RAP_CORE_CAPI_H
