//===- core/RangeFence.h - Banded cold-range filter -----------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact per-tree filter that answers "is this query range
/// provably cold?" without walking the tree. If provablyCold(Lo, Hi)
/// returns true, no positive-count non-root node is fully contained
/// in [Lo, Hi], so RapTree::estimateRange is zero bit-exactly and the
/// query walks can be skipped (the bracket's upper bound reduces to
/// the endpoint ancestor chains — see RapTree::estimateRangeBounds).
///
/// Soundness rests on how RapTree::estimateRange works: only nodes
/// fully contained in the query contribute, and every contribution
/// ultimately comes from a positive counter on a non-root node whose
/// WHOLE range the query contains (the root is contained only by the
/// full-universe query, which the tree special-cases before
/// consulting the fence). So the fence only has to answer: could this
/// query contain a positive-count node?
///
/// A single bitmap over value prefixes answers that badly: RAP keeps
/// residual counters on the wide interior nodes where weight
/// accumulated before they split, and one positive 2^30-wide node
/// would mark a quarter of a 32-bit universe warm — even though a
/// query narrower than that node can never contain it and therefore
/// can never see its counter. The filter is instead a stack of
/// BANDED bitmaps, one per node-width band, all at the same (finest)
/// bucket resolution:
///
///   - Band 0 holds nodes no wider than one bucket; each coarser band
///     holds the next LevelStep node widths, up to the universe.
///   - A node marks its full bucket range on the single band matching
///     its width. Band-0 nodes set exactly one bit (aligned ranges at
///     most one bucket wide never straddle a bucket boundary), so
///     first-touch marking in addPoint stays O(1) — leaf and
///     near-leaf nodes, the overwhelming majority, are band 0. Wider
///     nodes touch more words, but they are few and each marks once
///     per rebuild epoch.
///   - A query consults a band only when it is wide enough to contain
///     the narrowest node that band can hold. Narrow queries never
///     look at the wide bands, so the wide residual counters are
///     invisible to exactly the queries they cannot affect — while
///     wide queries still see every band at full bucket resolution.
///
/// If a positive node N is fully inside [Lo, Hi], the query's span is
/// at least N's span, so N's band is consulted, and N's buckets lie
/// inside the query's bucket range — the scan sees the mark. Hence
/// provablyCold implies a bit-exact zero estimate. The converse does
/// not hold (bucket granularity): a set bit merely means "walk the
/// tree". The fence never changes an answer, only skips provably-zero
/// walks; the fuzzer's --fence twin mode checks exactly that.
///
/// The tree marks on a counter's 0 -> positive transition (addPoint
/// first touch) and rebuilds the bands from scratch after anything
/// that moves counters wholesale: batched and forced merges, absorb,
/// and node-set restore. The rebuild doubles as a precision reset —
/// weight folded upward re-marks on its new (wider) band and
/// abandoned buckets read cold again. The filter is query
/// acceleration only and is never serialized; a restored tree
/// re-derives it.
///
/// Memory: at the default 12-bit prefix and 4-bit band step, at most
/// four 4096-bit bitmaps — 2 KiB per tree.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_CORE_RANGEFENCE_H
#define RAP_CORE_RANGEFENCE_H

#include <cstdint>
#include <vector>

namespace rap {

/// Banded cold-range bitmap stack. Default-constructed it is disabled
/// (every query reads as possibly-warm); init() arms it for a
/// universe size.
class RangeFence {
public:
  /// log2 bucket count of every band: 2^12 buckets = 512 bytes per
  /// band, small enough to sit hot next to the arena slabs while
  /// still resolving 1/4096th of the universe.
  static constexpr unsigned MaxPrefixBits = 12;

  /// Node widths covered by each band past the first: band 0 takes
  /// everything up to one bucket wide, later bands take LevelStep
  /// widths each (so at most 1 + MaxPrefixBits / LevelStep bands).
  static constexpr unsigned LevelStep = 4;

  RangeFence() = default;

  /// Arms the fence for the universe [0, 2^RangeBits), all buckets
  /// cold. Also the reset used by rebuilds.
  void init(unsigned UniverseBits);

  /// True once init() has run; a disabled fence answers no query.
  bool enabled() const { return !Levels.empty(); }

  /// Drops every bucket back to cold (band geometry kept).
  void clear();

  /// Marks the node [Lo, Lo + 2^WidthBits) as carrying a positive
  /// counter, on the band matching its width. \p Lo must be
  /// 2^WidthBits-aligned (RAP node ranges always are) and
  /// \p WidthBits at most the universe width. One bit for nodes up to
  /// a bucket wide; a masked word sweep for wider ones.
  void markNode(uint64_t Lo, unsigned WidthBits);

  /// True when no node marked so far can be fully contained in
  /// [Lo, Hi]. Endpoints beyond the universe clamp to the last
  /// bucket. False on a disabled fence.
  bool provablyCold(uint64_t Lo, uint64_t Hi) const;

  /// Marked buckets on band 0 — the up-to-one-bucket-wide nodes (for
  /// stats and bench metrics, not on any query path).
  uint64_t warmBuckets() const;

  /// Bucket count of each band (0 when disabled).
  uint64_t numBuckets() const;

  /// log2 of numBuckets().
  unsigned prefixBits() const;

private:
  struct Level {
    /// Narrowest node width this band holds (0 on band 0). A query
    /// narrower than 2^MinWidthBits cannot contain any node marked
    /// here and skips the band.
    unsigned MinWidthBits = 0;
    unsigned MaxWidthBits = 0; ///< Widest node width this band holds.
    std::vector<uint64_t> Bits;
  };

  uint64_t bucketOf(uint64_t X) const;

  unsigned PrefixBits = 0; ///< Each band is 2^PrefixBits bits.
  unsigned Shift = 0;      ///< UniverseBits - PrefixBits.
  std::vector<Level> Levels; ///< Narrowest band first.
};

} // namespace rap

#endif // RAP_CORE_RANGEFENCE_H
