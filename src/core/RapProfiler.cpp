//===- core/RapProfiler.cpp - Profiler wrapper with run statistics -------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RapProfiler.h"

#include <algorithm>
#include <cassert>
#include <new>

using namespace rap;

RapProfiler::RapProfiler(const RapConfig &Config, uint64_t Stride)
    : Tree(Config), TimelineStride(Stride), NextTimelineAt(Stride) {}

void RapProfiler::deliverPoint(uint64_t X, uint64_t Weight) {
  Tree.addPoint(X, Weight);
  NodeCountIntegral = saturatingAdd(
      NodeCountIntegral, saturatingMul(Tree.numNodes(), Weight));
  if (TimelineStride != 0 && Tree.numEvents() >= NextTimelineAt) {
    try {
      Timeline.emplace_back(Tree.numEvents(), Tree.numNodes());
    } catch (const std::bad_alloc &) {
      // The timeline is diagnostics: under memory pressure a sample
      // may be dropped, but the event itself is already in the tree.
    }
    NextTimelineAt += TimelineStride;
  }
}

void RapProfiler::addPoint(uint64_t X, uint64_t Weight) {
  if (!Combiner) {
    deliverPoint(X, Weight);
    return;
  }
  if (Combiner->push(X, Weight))
    flush();
}

void RapProfiler::enableCombining(uint64_t Capacity) {
  flush();
  Combiner = Capacity == 0 ? nullptr
                           : std::make_unique<StageZeroBuffer>(Capacity);
}

void RapProfiler::flush() {
  if (!Combiner || Combiner->size() == 0)
    return;
  for (const auto &[Event, Weight] : Combiner->drain())
    deliverPoint(Event, Weight);
}

void RapProfiler::addPoints(const std::vector<uint64_t> &Xs) {
  for (uint64_t X : Xs)
    addPoint(X);
}

RapProfiler &RapSession::addProfile(const std::string &Name,
                                    const RapConfig &Config,
                                    uint64_t TimelineStride) {
  // Single lookup: re-adding a name replaces the profile in place and
  // must not grow Names (each name appears exactly once, at its
  // original insertion position).
  auto [It, Inserted] = Profiles.try_emplace(Name);
  if (Inserted)
    Names.push_back(Name);
  It->second = std::make_unique<RapProfiler>(Config, TimelineStride);
  return *It->second;
}

RapProfiler &RapSession::getProfile(const std::string &Name) {
  auto It = Profiles.find(Name);
  assert(It != Profiles.end() && "unknown profile name");
  return *It->second;
}

const RapProfiler &RapSession::getProfile(const std::string &Name) const {
  auto It = Profiles.find(Name);
  assert(It != Profiles.end() && "unknown profile name");
  return *It->second;
}

bool RapSession::hasProfile(const std::string &Name) const {
  return Profiles.count(Name) != 0;
}
