//===- sim/Cache.h - Set-associative LRU cache model -----------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven set-associative LRU cache and a two-level hierarchy.
/// Fig 9 of the paper profiles the load values of DL1 and DL2 misses;
/// this model filters the synthetic load stream exactly the way the
/// authors' machine caches filtered theirs: addresses with temporal
/// reuse hit, streaming scans miss.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_SIM_CACHE_H
#define RAP_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace rap {

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 32 * 1024;
  unsigned Associativity = 4;
  unsigned LineBytes = 64;

  /// Number of sets implied by the geometry.
  uint64_t numSets() const {
    return SizeBytes / (static_cast<uint64_t>(Associativity) * LineBytes);
  }

  /// Validates the geometry (power-of-two sets and line size). Returns
  /// true if usable; otherwise false with a diagnostic in \p Error.
  bool validate(std::string *Error = nullptr) const;
};

/// One set-associative cache level with true-LRU replacement.
class SetAssocCache {
public:
  explicit SetAssocCache(const CacheConfig &Geometry);

  /// Looks up \p Address; on a miss the line is filled (allocating,
  /// write-allocate semantics are irrelevant since we model loads).
  /// Returns true on a hit.
  bool access(uint64_t Address);

  /// Invalidates all lines and zeroes statistics.
  void reset();

  uint64_t numAccesses() const { return NumAccesses; }
  uint64_t numHits() const { return NumHits; }
  uint64_t numMisses() const { return NumAccesses - NumHits; }

  /// Miss ratio (0 when no accesses yet).
  double missRatio() const {
    return NumAccesses == 0
               ? 0.0
               : static_cast<double>(numMisses()) /
                     static_cast<double>(NumAccesses);
  }

  const CacheConfig &config() const { return Config; }

private:
  struct Line {
    uint64_t Tag = 0;
    bool Valid = false;
  };

  CacheConfig Config;
  unsigned LineShift;
  uint64_t SetMask;
  /// Ways of each set, most recently used first.
  std::vector<std::vector<Line>> Sets;
  uint64_t NumAccesses = 0;
  uint64_t NumHits = 0;
};

/// Two-level data cache hierarchy (DL1 backed by DL2), accessed on
/// every load. DL2 sees only DL1 misses.
class CacheHierarchy {
public:
  /// Outcome of one load.
  struct Result {
    bool L1Hit = false;
    bool L2Hit = false; ///< Meaningful only when !L1Hit.
  };

  CacheHierarchy(const CacheConfig &L1Config, const CacheConfig &L2Config)
      : L1(L1Config), L2(L2Config) {}

  /// Performs one load at \p Address through the hierarchy.
  Result access(uint64_t Address);

  const SetAssocCache &l1() const { return L1; }
  const SetAssocCache &l2() const { return L2; }

  /// The paper-era default geometry: 32KB/4-way DL1, 512KB/8-way DL2,
  /// 64B lines.
  static CacheHierarchy makeDefault();

private:
  SetAssocCache L1;
  SetAssocCache L2;
};

} // namespace rap

#endif // RAP_SIM_CACHE_H
