//===- sim/Cache.cpp - Set-associative LRU cache model --------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include "support/BitUtils.h"

#include <cassert>

using namespace rap;

bool CacheConfig::validate(std::string *Error) const {
  auto Fail = [Error](const char *Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  if (LineBytes == 0 || !isPowerOfTwo(LineBytes))
    return Fail("LineBytes must be a power of two");
  if (Associativity == 0)
    return Fail("Associativity must be positive");
  if (SizeBytes % (static_cast<uint64_t>(Associativity) * LineBytes) != 0)
    return Fail("SizeBytes must be a multiple of Associativity * LineBytes");
  if (!isPowerOfTwo(numSets()))
    return Fail("the number of sets must be a power of two");
  return true;
}

SetAssocCache::SetAssocCache(const CacheConfig &Geometry) : Config(Geometry) {
  [[maybe_unused]] std::string Error;
  assert(Geometry.validate(&Error) && "invalid cache geometry");
  LineShift = log2Exact(Geometry.LineBytes);
  SetMask = Geometry.numSets() - 1;
  Sets.assign(Geometry.numSets(), {});
  for (auto &Set : Sets)
    Set.resize(Geometry.Associativity);
}

bool SetAssocCache::access(uint64_t Address) {
  ++NumAccesses;
  uint64_t Block = Address >> LineShift;
  uint64_t SetIndex = Block & SetMask;
  uint64_t Tag = Block >> log2Exact(SetMask + 1);
  std::vector<Line> &Set = Sets[SetIndex];

  // MRU-first search; on hit rotate the line to the front.
  for (unsigned Way = 0; Way != Set.size(); ++Way) {
    if (!Set[Way].Valid || Set[Way].Tag != Tag)
      continue;
    Line Hit = Set[Way];
    Set.erase(Set.begin() + Way);
    Set.insert(Set.begin(), Hit);
    ++NumHits;
    return true;
  }

  // Miss: fill at MRU, evicting the LRU way.
  Line Fill;
  Fill.Tag = Tag;
  Fill.Valid = true;
  Set.pop_back();
  Set.insert(Set.begin(), Fill);
  return false;
}

void SetAssocCache::reset() {
  for (auto &Set : Sets)
    for (Line &L : Set)
      L.Valid = false;
  NumAccesses = 0;
  NumHits = 0;
}

CacheHierarchy::Result CacheHierarchy::access(uint64_t Address) {
  Result R;
  R.L1Hit = L1.access(Address);
  if (!R.L1Hit)
    R.L2Hit = L2.access(Address);
  return R;
}

CacheHierarchy CacheHierarchy::makeDefault() {
  CacheConfig L1Config;
  L1Config.SizeBytes = 32 * 1024;
  L1Config.Associativity = 4;
  L1Config.LineBytes = 64;
  CacheConfig L2Config;
  L2Config.SizeBytes = 512 * 1024;
  L2Config.Associativity = 8;
  L2Config.LineBytes = 64;
  return CacheHierarchy(L1Config, L2Config);
}
