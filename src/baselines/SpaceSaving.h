//===- baselines/SpaceSaving.h - Item-granularity heavy hitters -*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SpaceSaving algorithm (Metwally, Agrawal, El Abbadi 2005): the
/// canonical bounded-memory *item* heavy-hitter sketch. The paper's
/// intro contrasts RAP with schemes that report "the top 50 individual
/// loaded values" (Sec 6); SpaceSaving is the strongest representative
/// of that class, so the benchmark comparison uses it to show what
/// item-only profiling misses on range-structured streams.
///
/// Guarantees with K counters: every item with true count > n/K is
/// retained, and each reported count overestimates truth by at most
/// n/K.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BASELINES_SPACESAVING_H
#define RAP_BASELINES_SPACESAVING_H

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace rap {

/// Bounded set of (item, count, overestimate-error) counters.
class SpaceSaving {
public:
  /// One monitored item.
  struct Entry {
    uint64_t Item = 0;
    uint64_t Count = 0; ///< Upper bound on the item's true count.
    uint64_t Error = 0; ///< Count minus Error lower-bounds the truth.
  };

  /// Creates a sketch with \p NumCounters monitored items.
  explicit SpaceSaving(uint64_t NumCounters);

  /// Processes one occurrence of \p X.
  void addPoint(uint64_t X);

  /// Total events processed.
  uint64_t numEvents() const { return NumEvents; }

  /// Number of counters in use.
  uint64_t numCounters() const { return ByItem.size(); }

  /// Upper-bound estimate of the count of \p X (0 if unmonitored).
  uint64_t estimateOf(uint64_t X) const;

  /// Guaranteed heavy hitters: monitored items whose guaranteed count
  /// (Count - Error) is at least \p Phi * n. Sorted by count
  /// descending.
  std::vector<Entry> heavyHitters(double Phi) const;

  /// All entries sorted by count descending (top-k view).
  std::vector<Entry> entries() const;

  /// Memory footprint at 24 bytes per counter slot.
  uint64_t memoryBytes() const { return Capacity * 24; }

private:
  uint64_t Capacity;
  uint64_t NumEvents = 0;
  std::unordered_map<uint64_t, Entry> ByItem;
  // Multimap from count to item, maintained alongside ByItem so the
  // minimum-count victim is found in O(log K).
  std::multimap<uint64_t, uint64_t> ByCount;
  std::unordered_map<uint64_t, std::multimap<uint64_t, uint64_t>::iterator>
      CountIters;
};

} // namespace rap

#endif // RAP_BASELINES_SPACESAVING_H
