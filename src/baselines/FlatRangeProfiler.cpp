//===- baselines/FlatRangeProfiler.cpp - Fixed-range counters ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/FlatRangeProfiler.h"

using namespace rap;

uint64_t FlatRangeProfiler::estimateRange(uint64_t Lo, uint64_t Hi) const {
  assert(Lo <= Hi && "empty query range");
  uint64_t BucketWidth = Shift >= 64 ? 0 : (uint64_t(1) << Shift);
  uint64_t Total = 0;
  uint64_t FirstBucket = bucketOf(Lo);
  uint64_t LastBucket = bucketOf(Hi);
  for (uint64_t B = FirstBucket; B <= LastBucket; ++B) {
    uint64_t BucketLo = Shift >= 64 ? 0 : B << Shift;
    uint64_t BucketHi =
        BucketWidth == 0 ? ~uint64_t(0) : BucketLo + BucketWidth - 1;
    if (BucketLo >= Lo && BucketHi <= Hi)
      Total += Counters[B];
    if (B == LastBucket)
      break; // avoid overflow when LastBucket is the max index
  }
  return Total;
}
