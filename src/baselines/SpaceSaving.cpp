//===- baselines/SpaceSaving.cpp - Item-granularity heavy hitters --------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/SpaceSaving.h"

#include <algorithm>
#include <cassert>

using namespace rap;

SpaceSaving::SpaceSaving(uint64_t NumCounters) : Capacity(NumCounters) {
  assert(NumCounters >= 1 && "need at least one counter");
}

void SpaceSaving::addPoint(uint64_t X) {
  ++NumEvents;
  auto It = ByItem.find(X);
  if (It != ByItem.end()) {
    Entry &E = It->second;
    ByCount.erase(CountIters[X]);
    ++E.Count;
    CountIters[X] = ByCount.emplace(E.Count, X);
    return;
  }
  if (ByItem.size() < Capacity) {
    Entry E;
    E.Item = X;
    E.Count = 1;
    E.Error = 0;
    ByItem[X] = E;
    CountIters[X] = ByCount.emplace(uint64_t(1), X);
    return;
  }
  // Evict the minimum-count item and inherit its count as error.
  auto MinIt = ByCount.begin();
  uint64_t Victim = MinIt->second;
  uint64_t MinCount = MinIt->first;
  ByCount.erase(MinIt);
  CountIters.erase(Victim);
  ByItem.erase(Victim);

  Entry E;
  E.Item = X;
  E.Count = MinCount + 1;
  E.Error = MinCount;
  ByItem[X] = E;
  CountIters[X] = ByCount.emplace(E.Count, X);
}

uint64_t SpaceSaving::estimateOf(uint64_t X) const {
  auto It = ByItem.find(X);
  return It == ByItem.end() ? 0 : It->second.Count;
}

std::vector<SpaceSaving::Entry> SpaceSaving::entries() const {
  std::vector<Entry> Result;
  Result.reserve(ByItem.size());
  for (const auto &[Item, E] : ByItem)
    Result.push_back(E);
  std::sort(Result.begin(), Result.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Item < B.Item;
            });
  return Result;
}

std::vector<SpaceSaving::Entry> SpaceSaving::heavyHitters(double Phi) const {
  double Threshold = Phi * static_cast<double>(NumEvents);
  std::vector<Entry> Result;
  for (const Entry &E : entries())
    if (static_cast<double>(E.Count - E.Error) >= Threshold)
      Result.push_back(E);
  return Result;
}
