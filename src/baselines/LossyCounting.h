//===- baselines/LossyCounting.h - Lossy counting sketch -------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lossy Counting (Manku & Motwani 2002): the other classic epsilon-
/// deficient item counter, included as a second point in the
/// item-granularity baseline family. With parameter epsilon it uses
/// O(1/eps * log(eps*n)) entries and undercounts each item by at most
/// eps*n — the same style of guarantee RAP gives, but per item instead
/// of per range.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BASELINES_LOSSYCOUNTING_H
#define RAP_BASELINES_LOSSYCOUNTING_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rap {

/// Epsilon-deficient item counting with periodic bucket pruning.
class LossyCounting {
public:
  /// One tracked item.
  struct Entry {
    uint64_t Item = 0;
    uint64_t Count = 0; ///< Count since the item (re)entered the table.
    uint64_t Delta = 0; ///< Maximum undercount for this item.
  };

  /// Creates a counter with error bound \p Epsilon in (0, 1).
  explicit LossyCounting(double Eps);

  /// Processes one occurrence of \p X.
  void addPoint(uint64_t X);

  /// Total events processed.
  uint64_t numEvents() const { return NumEvents; }

  /// Entries currently tracked.
  uint64_t numCounters() const { return Table.size(); }

  /// Items whose guaranteed frequency is at least \p Phi
  /// (Count >= (Phi - Epsilon) * n), sorted by count descending.
  std::vector<Entry> heavyHitters(double Phi) const;

  /// Lower-bound estimate of the count of \p X.
  uint64_t estimateOf(uint64_t X) const;

  /// Memory footprint at 24 bytes per entry.
  uint64_t memoryBytes() const { return Table.size() * 24; }

private:
  void pruneBucket();

  double Epsilon;
  uint64_t BucketWidth;
  uint64_t NumEvents = 0;
  uint64_t CurrentBucket = 1;
  std::unordered_map<uint64_t, Entry> Table;
};

} // namespace rap

#endif // RAP_BASELINES_LOSSYCOUNTING_H
