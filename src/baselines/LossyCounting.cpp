//===- baselines/LossyCounting.cpp - Lossy counting sketch ---------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/LossyCounting.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace rap;

LossyCounting::LossyCounting(double Eps) : Epsilon(Eps) {
  assert(Eps > 0.0 && Eps < 1.0 && "epsilon out of range");
  BucketWidth = static_cast<uint64_t>(std::ceil(1.0 / Eps));
}

void LossyCounting::addPoint(uint64_t X) {
  ++NumEvents;
  auto It = Table.find(X);
  if (It != Table.end()) {
    ++It->second.Count;
  } else {
    Entry E;
    E.Item = X;
    E.Count = 1;
    E.Delta = CurrentBucket - 1;
    Table[X] = E;
  }
  if (NumEvents % BucketWidth == 0) {
    pruneBucket();
    ++CurrentBucket;
  }
}

void LossyCounting::pruneBucket() {
  for (auto It = Table.begin(); It != Table.end();) {
    if (It->second.Count + It->second.Delta <= CurrentBucket)
      It = Table.erase(It);
    else
      ++It;
  }
}

uint64_t LossyCounting::estimateOf(uint64_t X) const {
  auto It = Table.find(X);
  return It == Table.end() ? 0 : It->second.Count;
}

std::vector<LossyCounting::Entry>
LossyCounting::heavyHitters(double Phi) const {
  assert(Phi > Epsilon && "phi must exceed the error bound");
  double Threshold =
      (Phi - Epsilon) * static_cast<double>(NumEvents);
  std::vector<Entry> Result;
  for (const auto &[Item, E] : Table)
    if (static_cast<double>(E.Count) >= Threshold)
      Result.push_back(E);
  std::sort(Result.begin(), Result.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Count != B.Count)
                return A.Count > B.Count;
              return A.Item < B.Item;
            });
  return Result;
}
