//===- baselines/SamplingProfiler.h - Sampled exact profiling --*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic software alternative the paper contrasts with (Sec 2,
/// [2, 21]): record every K-th event into an exact histogram and scale
/// estimates by K. Unlike RAP, sampled counts are not lower bounds and
/// rare ranges may be missed entirely; unlike RAP, memory is unbounded
/// in the number of distinct sampled values.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BASELINES_SAMPLINGPROFILER_H
#define RAP_BASELINES_SAMPLINGPROFILER_H

#include "baselines/ExactProfiler.h"

#include <cassert>
#include <cstdint>

namespace rap {

/// Systematic 1-in-K sampling into an exact histogram.
class SamplingProfiler {
public:
  explicit SamplingProfiler(uint64_t Period) : SamplePeriod(Period) {
    assert(Period >= 1 && "sample period must be positive");
  }

  /// Processes one event; every SamplePeriod-th is recorded.
  void addPoint(uint64_t X) {
    ++NumEvents;
    if (NumEvents % SamplePeriod == 0)
      Sampled.addPoint(X);
  }

  /// Total events offered (sampled or not).
  uint64_t numEvents() const { return NumEvents; }

  /// Number of events actually recorded.
  uint64_t numSampled() const { return Sampled.numEvents(); }

  /// Scaled estimate of the events in [Lo, Hi].
  uint64_t estimateRange(uint64_t Lo, uint64_t Hi) const {
    return Sampled.countInRange(Lo, Hi) * SamplePeriod;
  }

  /// Scaled estimate for a single value.
  uint64_t estimateOf(uint64_t X) const {
    return Sampled.countOf(X) * SamplePeriod;
  }

  /// Memory footprint at 16 bytes per distinct sampled value.
  uint64_t memoryBytes() const { return Sampled.numDistinct() * 16; }

private:
  uint64_t SamplePeriod;
  uint64_t NumEvents = 0;
  ExactProfiler Sampled;
};

} // namespace rap

#endif // RAP_BASELINES_SAMPLINGPROFILER_H
