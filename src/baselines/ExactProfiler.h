//===- baselines/ExactProfiler.h - Offline perfect profiler ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's ground truth: "the actual count that was gathered by
/// making multiple passes through the program's execution, tracking one
/// hot range at a time (as a perfect offline profiler would)" (Sec 4.3).
/// Our streams are deterministic, so a single pass into an exact
/// histogram plus sorted prefix sums answers every range query exactly.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BASELINES_EXACTPROFILER_H
#define RAP_BASELINES_EXACTPROFILER_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rap {

/// Exact event histogram with exact range-count queries.
class ExactProfiler {
public:
  /// Records \p Weight occurrences of \p X.
  void addPoint(uint64_t X, uint64_t Weight = 1) {
    Counts[X] += Weight;
    NumEvents += Weight;
    IndexDirty = true;
  }

  /// Total stream weight.
  uint64_t numEvents() const { return NumEvents; }

  /// Number of distinct values seen.
  uint64_t numDistinct() const { return Counts.size(); }

  /// Exact number of events with value exactly \p X.
  uint64_t countOf(uint64_t X) const {
    auto It = Counts.find(X);
    return It == Counts.end() ? 0 : It->second;
  }

  /// Exact number of events in [Lo, Hi] inclusive. Builds the sorted
  /// index on first use after a mutation (amortized).
  uint64_t countInRange(uint64_t Lo, uint64_t Hi) const;

  /// All (value, count) pairs with count >= \p MinCount, sorted by
  /// value. Used by verification to enumerate the truly heavy values a
  /// hot-range report must cover.
  std::vector<std::pair<uint64_t, uint64_t>>
  heavyValues(uint64_t MinCount) const;

private:
  void rebuildIndex() const;

  std::unordered_map<uint64_t, uint64_t> Counts;
  uint64_t NumEvents = 0;

  // Sorted values plus prefix sums, rebuilt lazily for range queries.
  mutable bool IndexDirty = false;
  mutable std::vector<uint64_t> SortedValues;
  mutable std::vector<uint64_t> PrefixSums; // PrefixSums[i] = sum of first i
};

} // namespace rap

#endif // RAP_BASELINES_EXACTPROFILER_H
