//===- baselines/ExactProfiler.cpp - Offline perfect profiler ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/ExactProfiler.h"

#include <algorithm>
#include <cassert>

using namespace rap;

void ExactProfiler::rebuildIndex() const {
  SortedValues.clear();
  SortedValues.reserve(Counts.size());
  for (const auto &[Value, Count] : Counts)
    SortedValues.push_back(Value);
  std::sort(SortedValues.begin(), SortedValues.end());

  PrefixSums.assign(SortedValues.size() + 1, 0);
  for (size_t I = 0; I != SortedValues.size(); ++I)
    PrefixSums[I + 1] = PrefixSums[I] + Counts.at(SortedValues[I]);
  IndexDirty = false;
}

std::vector<std::pair<uint64_t, uint64_t>>
ExactProfiler::heavyValues(uint64_t MinCount) const {
  std::vector<std::pair<uint64_t, uint64_t>> Heavy;
  for (const auto &[Value, Count] : Counts)
    if (Count >= MinCount)
      Heavy.emplace_back(Value, Count);
  std::sort(Heavy.begin(), Heavy.end());
  return Heavy;
}

uint64_t ExactProfiler::countInRange(uint64_t Lo, uint64_t Hi) const {
  assert(Lo <= Hi && "empty query range");
  if (IndexDirty || PrefixSums.size() != Counts.size() + 1)
    rebuildIndex();
  auto First =
      std::lower_bound(SortedValues.begin(), SortedValues.end(), Lo);
  auto Last = std::upper_bound(SortedValues.begin(), SortedValues.end(), Hi);
  size_t FirstIdx = static_cast<size_t>(First - SortedValues.begin());
  size_t LastIdx = static_cast<size_t>(Last - SortedValues.begin());
  return PrefixSums[LastIdx] - PrefixSums[FirstIdx];
}
