//===- baselines/FlatRangeProfiler.h - Fixed-range counters ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's strawman (Sec 2): divide the universe into N equal
/// ranges and keep one counter per range. Counting is exact at range
/// granularity but the granularity never adapts — the comparison
/// baseline that motivates RAP.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_BASELINES_FLATRANGEPROFILER_H
#define RAP_BASELINES_FLATRANGEPROFILER_H

#include "support/BitUtils.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace rap {

/// N equal fixed ranges over [0, 2^RangeBits), N a power of two.
class FlatRangeProfiler {
public:
  FlatRangeProfiler(unsigned Bits, uint64_t NumRanges)
      : RangeBits(Bits), Counters(NumRanges, 0) {
    assert(Bits >= 1 && Bits <= 64 && "bad universe");
    assert(isPowerOfTwo(NumRanges) && "NumRanges must be a power of two");
    assert(log2Exact(NumRanges) <= Bits && "more ranges than values");
    Shift = Bits - log2Exact(NumRanges);
  }

  /// Records \p Weight occurrences of \p X.
  void addPoint(uint64_t X, uint64_t Weight = 1) {
    assert((RangeBits == 64 || X < (uint64_t(1) << RangeBits)) &&
           "event outside the universe");
    Counters[bucketOf(X)] += Weight;
    NumEvents += Weight;
  }

  /// Bucket index covering \p X.
  uint64_t bucketOf(uint64_t X) const { return Shift >= 64 ? 0 : X >> Shift; }

  /// Counter of bucket \p Bucket.
  uint64_t bucketCount(uint64_t Bucket) const { return Counters[Bucket]; }

  /// Number of buckets.
  uint64_t numBuckets() const { return Counters.size(); }

  /// Total stream weight.
  uint64_t numEvents() const { return NumEvents; }

  /// Memory footprint at 8 bytes per counter.
  uint64_t memoryBytes() const { return Counters.size() * 8; }

  /// Lower-bound estimate of the events in [Lo, Hi]: the sum of
  /// counters of buckets fully contained in the query (the same
  /// semantics as RapTree::estimateRange, for a fair comparison).
  uint64_t estimateRange(uint64_t Lo, uint64_t Hi) const;

private:
  unsigned RangeBits;
  unsigned Shift;
  uint64_t NumEvents = 0;
  std::vector<uint64_t> Counters;
};

} // namespace rap

#endif // RAP_BASELINES_FLATRANGEPROFILER_H
