//===- hw/PipelinedEngine.cpp - The 5-stage RAP engine of Fig 4 ----------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/PipelinedEngine.h"

#include "support/BitUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

using namespace rap;

PipelinedRapEngine::PipelinedRapEngine(const EngineConfig &EngineCfg)
    : Config(EngineCfg), Array(EngineCfg.TcamCapacity),
      Buffer(EngineCfg.BufferCapacity) {
  [[maybe_unused]] std::string Error;
  assert(EngineCfg.Profile.validate(&Error) && "invalid profile config");
  // The root pattern covers the whole universe.
  [[maybe_unused]] int64_t RootSlot =
      Array.insert(0, EngineCfg.Profile.RangeBits);
  assert(RootSlot >= 0 && "TCAM too small for the root entry");
  NextMergeAt = EngineCfg.Profile.InitialMergeInterval;
}

void PipelinedRapEngine::pushEvent(uint64_t X) {
  if (Buffer.push(X))
    flush();
}

void PipelinedRapEngine::flush() {
  for (const auto &[Event, Count] : Buffer.drain())
    processPair(Event, Count);
}

void PipelinedRapEngine::processPair(uint64_t X, uint64_t Weight) {
  assert((Config.Profile.RangeBits == 64 ||
          X < (uint64_t(1) << Config.Profile.RangeBits)) &&
         "event outside the configured universe");
  NumEvents += Weight;
  UpdateCycles += Config.CyclesPerUpdate;

  // Stages 1-3: match, arbitrate, update the counter.
  int64_t Slot = Array.searchSmallestCover(X);
  assert(Slot >= 0 && "the root pattern always matches");
  TcamEntry &E = Array.entry(static_cast<uint64_t>(Slot));
  E.Count += Weight;

  // Stage 4: split-threshold comparison.
  if (E.WidthBits > 0 && static_cast<double>(E.Count) >
                             Config.Profile.splitThreshold(NumEvents))
    splitEntry(static_cast<uint64_t>(Slot));

  // Batched merges, exponentially spaced (Sec 3.1).
  if (Config.Profile.EnableMerges && NumEvents >= NextMergeAt) {
    mergePass();
    scheduleAfterMerge();
  }
}

void PipelinedRapEngine::splitEntry(uint64_t Slot) {
  const TcamEntry E = Array.entry(Slot); // Copy: inserts may reallocate.
  unsigned BitsPerLevel = Config.Profile.bitsPerLevel();
  unsigned ChildBits =
      E.WidthBits > BitsPerLevel ? E.WidthBits - BitsPerLevel : 0;
  unsigned NumChildren = 1u << (E.WidthBits - ChildBits);

  // A split flushes the pipeline and replays from the buffer (Sec 3.3
  // stage 0); charge the flush once plus an insert per created child.
  SplitStallCycles += Config.PipelineDepth;
  for (unsigned I = 0; I != NumChildren; ++I) {
    uint64_t ChildLo = E.Lo + (static_cast<uint64_t>(I) << ChildBits);
    if (Array.find(ChildLo, ChildBits) >= 0)
      continue; // Survivor of an earlier merge already covers this slot.
    if (Array.insert(ChildLo, ChildBits) < 0) {
      ++CapacityOverflows;
      continue;
    }
    SplitStallCycles += Config.CyclesPerSplitChild;
  }
  ++NumSplits;
}

namespace {
/// Scratch node used to rebuild the containment forest during a merge.
struct ScanNode {
  uint64_t Slot;
  uint64_t Lo;
  uint64_t Hi;
  unsigned WidthBits;
  int Parent = -1;
  std::vector<int> Children;
};
} // namespace

void PipelinedRapEngine::mergePass() {
  double Threshold = Config.Profile.mergeThreshold(NumEvents);
  std::vector<uint64_t> Slots = Array.liveSlots();
  MergeStallCycles += Config.CyclesPerMergeScanEntry * Slots.size();

  // Rebuild the containment forest: sort patterns in preorder (range
  // start ascending, wider ranges first) and thread a parent stack.
  std::vector<ScanNode> Nodes;
  Nodes.reserve(Slots.size());
  for (uint64_t Slot : Slots) {
    const TcamEntry &E = Array.entry(Slot);
    ScanNode N;
    N.Slot = Slot;
    N.Lo = E.Lo;
    N.WidthBits = E.WidthBits;
    N.Hi = E.WidthBits == 64 ? ~uint64_t(0)
                             : E.Lo + ((uint64_t(1) << E.WidthBits) - 1);
    Nodes.push_back(N);
  }
  std::sort(Nodes.begin(), Nodes.end(),
            [](const ScanNode &A, const ScanNode &B) {
              if (A.Lo != B.Lo)
                return A.Lo < B.Lo;
              return A.WidthBits > B.WidthBits;
            });
  std::vector<int> Stack;
  for (int I = 0; I != static_cast<int>(Nodes.size()); ++I) {
    while (!Stack.empty() &&
           !(Nodes[Stack.back()].Lo <= Nodes[I].Lo &&
             Nodes[I].Hi <= Nodes[Stack.back()].Hi))
      Stack.pop_back();
    if (!Stack.empty()) {
      Nodes[I].Parent = Stack.back();
      Nodes[Stack.back()].Children.push_back(I);
    }
    Stack.push_back(I);
  }

  // Post-order fold, identical in effect to RapTree::mergeWalk: a child
  // whose subtree weight is below the threshold is folded into its
  // parent and its TCAM entry freed.
  std::function<uint64_t(int)> Fold = [&](int Index) -> uint64_t {
    ScanNode &N = Nodes[Index];
    uint64_t Total = Array.entry(N.Slot).Count;
    for (int ChildIndex : N.Children) {
      uint64_t ChildWeight = Fold(ChildIndex);
      Total += ChildWeight;
      if (static_cast<double>(ChildWeight) < Threshold) {
        // By induction the child is already a leaf here.
        Array.entry(N.Slot).Count += ChildWeight;
        Array.remove(Nodes[ChildIndex].Slot);
        MergeStallCycles += 1;
      }
    }
    return Total;
  };
  for (int I = 0; I != static_cast<int>(Nodes.size()); ++I)
    if (Nodes[I].Parent < 0)
      Fold(I);

  ++NumMergePasses;
}

void PipelinedRapEngine::scheduleAfterMerge() {
  double Next =
      static_cast<double>(NextMergeAt) * Config.Profile.MergeRatio;
  uint64_t NextInt = static_cast<uint64_t>(std::llround(Next));
  NextMergeAt = std::max<uint64_t>(NumEvents + 1, NextInt);
}

std::vector<std::tuple<uint64_t, unsigned, uint64_t>>
PipelinedRapEngine::snapshot() const {
  std::vector<std::tuple<uint64_t, unsigned, uint64_t>> Result;
  for (uint64_t Slot : Array.liveSlots()) {
    const TcamEntry &E = Array.entry(Slot);
    Result.emplace_back(E.Lo, E.WidthBits, E.Count);
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}
