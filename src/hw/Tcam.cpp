//===- hw/Tcam.cpp - Ternary CAM range-match model -------------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/Tcam.h"

#include "support/BitUtils.h"

#include <cassert>

using namespace rap;

Tcam::Tcam(uint64_t Capacity) {
  assert(Capacity >= 1 && "TCAM needs at least one slot");
  Entries.resize(Capacity);
  FreeSlots.reserve(Capacity);
  for (uint64_t Slot = Capacity; Slot != 0; --Slot)
    FreeSlots.push_back(Slot - 1);
}

int64_t Tcam::insert(uint64_t Lo, unsigned WidthBits) {
  assert(find(Lo, WidthBits) < 0 && "pattern already present");
  if (FreeSlots.empty())
    return -1;
  uint64_t Slot = FreeSlots.back();
  FreeSlots.pop_back();
  TcamEntry &E = Entries[Slot];
  E.Lo = Lo;
  E.WidthBits = static_cast<uint8_t>(WidthBits);
  E.Valid = true;
  E.Count = 0;
  if (WidthBits == 0)
    UnitDirectory[Lo] = Slot;
  else
    Directory[prefixKey(Lo, WidthBits)] = Slot;
  ++NumLive;
  return static_cast<int64_t>(Slot);
}

void Tcam::remove(uint64_t Slot) {
  TcamEntry &E = Entries[Slot];
  assert(E.Valid && "removing an empty slot");
  if (E.WidthBits == 0)
    UnitDirectory.erase(E.Lo);
  else
    Directory.erase(prefixKey(E.Lo, E.WidthBits));
  E.Valid = false;
  E.Count = 0;
  FreeSlots.push_back(Slot);
  --NumLive;
}

int64_t Tcam::find(uint64_t Lo, unsigned WidthBits) const {
  if (WidthBits == 0) {
    auto It = UnitDirectory.find(Lo);
    return It == UnitDirectory.end() ? -1 : static_cast<int64_t>(It->second);
  }
  auto It = Directory.find(prefixKey(Lo, WidthBits));
  return It == Directory.end() ? -1 : static_cast<int64_t>(It->second);
}

int64_t Tcam::searchSmallestCover(uint64_t Key) {
  ++NumSearches;
  // Hardware raises one match line per covering prefix in parallel and
  // the fixed-priority arbiter picks the longest; the model probes
  // widths from the most specific upward and tallies every hit so the
  // match-line statistics stay faithful.
  int64_t Best = -1;
  for (unsigned Width = 0; Width <= 64; ++Width) {
    uint64_t Lo = Width == 64 ? 0 : alignDown(Key, uint64_t(1) << Width);
    int64_t Slot = find(Lo, Width);
    if (Slot < 0)
      continue;
    ++NumMatchLines;
    if (Best < 0)
      Best = Slot; // Longest prefix = first (smallest-width) hit.
  }
  return Best;
}

std::vector<uint64_t> Tcam::liveSlots() const {
  std::vector<uint64_t> Result;
  Result.reserve(NumLive);
  for (uint64_t Slot = 0; Slot != Entries.size(); ++Slot)
    if (Entries[Slot].Valid)
      Result.push_back(Slot);
  return Result;
}
