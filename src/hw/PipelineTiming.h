//===- hw/PipelineTiming.h - Engine timing and power analysis -*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins the functional engine's activity counts with the circuit cost
/// model into the Section 3.4 performance/power/area summary:
///
///   "The clock frequency is determined by the maximum delay in any
///   pipeline stage ... governed by the TCAM look up stage [7 ns]. We
///   can aggressively pipeline the TCAM stage by doing byte/nibble
///   comparison at each pipeline stage [27] and effectively we can
///   shift the critical path to the SRAM stage, which takes 1.26 ns."
///
/// PipelineTiming computes the cycle time for a given TCAM
/// sub-pipelining depth, and converts a PipelinedRapEngine run into
/// wall-clock time, sustained event rate, energy and average power.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_HW_PIPELINETIMING_H
#define RAP_HW_PIPELINETIMING_H

#include "hw/HwCostModel.h"
#include "hw/PipelinedEngine.h"

#include <cstdint>

namespace rap {

/// Timing of one engine configuration.
class PipelineTiming {
public:
  /// \p TcamSubStages = 1 models the unpipelined TCAM (7 ns cycle at
  /// the paper config); higher values split the comparison per
  /// byte/nibble as in [27], down to the SRAM-limited 1.26 ns.
  PipelineTiming(const HwCostModel &CostModel, unsigned SubStages = 1);

  /// Cycle time: the slowest pipeline stage.
  double cycleTimeNs() const;

  /// Clock frequency in MHz.
  double clockMhz() const { return 1000.0 / cycleTimeNs(); }

  /// Total pipeline stages: buffer, TCAM sub-stages, arbiter, SRAM,
  /// comparator (Fig 4 with the TCAM possibly split).
  unsigned numStages() const { return 4 + TcamSubStages; }

  /// Latency for one event to traverse the empty pipeline.
  double fillLatencyNs() const { return cycleTimeNs() * numStages(); }

  /// Peak throughput in events/second (one buffered event per cycle at
  /// full pipelining; CyclesPerUpdate otherwise).
  double peakEventsPerSecond(unsigned CyclesPerUpdate) const {
    return clockMhz() * 1e6 / CyclesPerUpdate;
  }

  /// Wall-clock summary of one engine run.
  struct RunReport {
    double RuntimeSeconds = 0.0;     ///< totalCycles * cycleTime
    double RawEventsPerSecond = 0.0; ///< sustained input rate
    double EnergyJoules = 0.0;       ///< searches + SRAM ops + logic
    double AveragePowerWatts = 0.0;  ///< energy / runtime
  };

  /// Converts \p Engine's activity statistics into time and energy
  /// using the cost model's per-operation constants. Every TCAM search
  /// pays the full parallel-search energy; SRAM and logic energy are
  /// charged per processed cycle.
  RunReport analyze(const PipelinedRapEngine &Engine) const;

  unsigned tcamSubStages() const { return TcamSubStages; }
  const HwCostModel &cost() const { return Cost; }

private:
  HwCostModel Cost;
  unsigned TcamSubStages;
};

} // namespace rap

#endif // RAP_HW_PIPELINETIMING_H
