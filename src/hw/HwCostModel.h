//===- hw/HwCostModel.h - Area/delay/energy model (Sec 3.4) ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parametric area, delay and energy model of the pipelined RAP engine
/// hardware. The paper derives its numbers from modified Cacti-3.2 and
/// Orion models at a conservative 0.18um technology (Sec 3.4); those
/// tools are not reproducible here, so this model re-expresses the
/// published results as an explicit parametric fit:
///
///   - area = per-cell constants * cell counts + fixed logic,
///   - TCAM search delay grows with log2(entries),
///   - SRAM access delay grows with log2(bytes),
///   - energy/op is dominated by the parallel TCAM search.
///
/// The constants are calibrated so the paper's flagship configuration
/// (4096 x 36b TCAM, 16KB SRAM, 0.18um) reproduces the published
/// 24.73 mm^2 / 7 ns TCAM / 1.26 ns SRAM / 1.272 nJ, and the scaling
/// shapes (a 400-entry engine is more than 10x smaller/cheaper) follow.
/// Technology scaling uses constant-field rules: area ~ s^2,
/// delay ~ s, energy ~ s^3 for feature-size ratio s.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_HW_HWCOSTMODEL_H
#define RAP_HW_HWCOSTMODEL_H

#include <cstdint>

namespace rap {

/// Cost model for one engine configuration.
class HwCostModel {
public:
  /// \p TcamEntries x \p TcamWidthBits ternary array backed by
  /// \p SramBytes of counter memory, at \p TechnologyNm feature size.
  HwCostModel(uint64_t Entries, unsigned WidthBits, uint64_t Bytes,
              double FeatureNm = 180.0);

  /// The paper's flagship configuration: 4096 x 36, 16KB SRAM, 0.18um.
  static HwCostModel makePaperConfig();

  /// The paper's modest 400-entry variant (Sec 3.4).
  static HwCostModel makeSmallConfig();

  // Area -----------------------------------------------------------------
  double tcamAreaMm2() const;
  double sramAreaMm2() const;
  /// Priority arbiter + split comparator + threshold registers.
  double logicAreaMm2() const;
  double totalAreaMm2() const {
    return tcamAreaMm2() + sramAreaMm2() + logicAreaMm2();
  }

  // Delay ------------------------------------------------------------------
  /// Full-array TCAM search critical path (7 ns at the paper config).
  double tcamSearchDelayNs() const;
  /// SRAM read-modify-write stage (1.26 ns at the paper config); with
  /// the byte/nibble-pipelined TCAM of [27] this becomes the cycle
  /// time.
  double sramAccessDelayNs() const;
  /// Engine clock frequency in MHz assuming the aggressive TCAM
  /// pipelining, i.e. the SRAM stage sets the cycle time.
  double pipelinedClockMhz() const { return 1000.0 / sramAccessDelayNs(); }
  /// Clock without TCAM pipelining (TCAM search sets the cycle time).
  double unpipelinedClockMhz() const { return 1000.0 / tcamSearchDelayNs(); }

  // Energy -------------------------------------------------------------
  double tcamEnergyPerOpNj() const;
  double sramEnergyPerOpNj() const;
  double logicEnergyPerOpNj() const;
  double totalEnergyPerOpNj() const {
    return tcamEnergyPerOpNj() + sramEnergyPerOpNj() + logicEnergyPerOpNj();
  }

  // Throughput ---------------------------------------------------------
  /// Events/second at 4 cycles per event (Sec 3.4) on the pipelined
  /// clock.
  double eventsPerSecond() const {
    return pipelinedClockMhz() * 1e6 / 4.0;
  }

  uint64_t tcamEntries() const { return TcamEntries; }
  unsigned tcamWidthBits() const { return TcamWidthBits; }
  uint64_t sramBytes() const { return SramBytes; }

private:
  double areaScale() const;   // s^2
  double delayScale() const;  // s
  double energyScale() const; // s^3

  uint64_t TcamEntries;
  unsigned TcamWidthBits;
  uint64_t SramBytes;
  double TechnologyNm;
};

} // namespace rap

#endif // RAP_HW_HWCOSTMODEL_H
