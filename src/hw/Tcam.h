//===- hw/Tcam.h - Ternary CAM range-match model ---------------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional model of the stage-1/stage-2 TCAM of the pipelined RAP
/// engine (Fig 4). Every RAP tree node is a prefix pattern
/// (value bits above widthBits are exact, the rest are don't-care);
/// a search raises a match line for every covering entry, and the
/// fixed-priority arbiter picks the longest prefix, i.e. the smallest
/// covering range. The model also counts searched entries so the
/// engine can charge realistic cycle/energy costs.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_HW_TCAM_H
#define RAP_HW_TCAM_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rap {

/// One TCAM entry: the prefix pattern of a RAP node plus its SRAM data
/// (counter). Index in the backing array is the entry's SRAM address.
struct TcamEntry {
  uint64_t Lo = 0;        ///< Range start (aligned to width).
  uint8_t WidthBits = 0;  ///< Number of don't-care low bits.
  bool Valid = false;
  uint64_t Count = 0;     ///< The associated SRAM counter.
};

/// Flat TCAM + SRAM array storing a RAP tree without pointers.
class Tcam {
public:
  /// Creates an array with \p Capacity entry slots (the paper's
  /// configurations: 4096 aggressive, 400 modest).
  explicit Tcam(uint64_t Capacity);

  /// Inserts an entry; returns its slot index, or -1 if the array is
  /// full. O(1); the (Lo, WidthBits) pair must not already be present.
  int64_t insert(uint64_t Lo, unsigned WidthBits);

  /// Removes the entry in \p Slot.
  void remove(uint64_t Slot);

  /// Longest-prefix (smallest-range) match for \p Key: the stage-1
  /// search plus the stage-2 priority arbitration. Returns the slot
  /// index, or -1 if nothing matches. Also tallies match-line
  /// statistics.
  int64_t searchSmallestCover(uint64_t Key);

  /// Looks up the slot of an exact (Lo, WidthBits) pattern, or -1.
  int64_t find(uint64_t Lo, unsigned WidthBits) const;

  /// Entry accessors.
  TcamEntry &entry(uint64_t Slot) { return Entries[Slot]; }
  const TcamEntry &entry(uint64_t Slot) const { return Entries[Slot]; }

  /// Number of live entries.
  uint64_t size() const { return NumLive; }

  /// Capacity in slots.
  uint64_t capacity() const { return Entries.size(); }

  /// All live slot indices, ascending (for scans).
  std::vector<uint64_t> liveSlots() const;

  /// Total searches issued.
  uint64_t numSearches() const { return NumSearches; }

  /// Total match lines raised across all searches (every covering
  /// prefix raises one; the arbiter then picks the longest).
  uint64_t numMatchLines() const { return NumMatchLines; }

private:
  /// Bijective 64-bit encoding of a prefix pattern with WidthBits >= 1:
  /// the prefix value with a marker bit above it. Prefixes of different
  /// lengths land in disjoint key ranges, so the encoding is unique.
  /// WidthBits == 0 (unit ranges) would need 65 bits and uses a
  /// separate directory keyed by the value itself.
  static uint64_t prefixKey(uint64_t Lo, unsigned WidthBits) {
    if (WidthBits == 64)
      return 0; // The all-don't-care pattern; no other key can be 0.
    return (Lo >> WidthBits) | (uint64_t(1) << (64 - WidthBits));
  }

  std::vector<TcamEntry> Entries;
  std::vector<uint64_t> FreeSlots;
  /// Exact-pattern directories, standing in for the partial sort by
  /// prefix length that hardware maintains.
  std::unordered_map<uint64_t, uint64_t> Directory;     ///< WidthBits >= 1
  std::unordered_map<uint64_t, uint64_t> UnitDirectory; ///< WidthBits == 0
  uint64_t NumLive = 0;
  uint64_t NumSearches = 0;
  uint64_t NumMatchLines = 0;
};

} // namespace rap

#endif // RAP_HW_TCAM_H
