//===- hw/EventBuffer.cpp - Stage-0 combining event buffer ----------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/EventBuffer.h"

#include <algorithm>

using namespace rap;

std::vector<std::pair<uint64_t, uint64_t>> EventBuffer::drain() {
  std::vector<std::pair<uint64_t, uint64_t>> Result;
  if (Capacity == 0) {
    Result.swap(Immediate);
  } else {
    Result.reserve(Combined.size());
    for (const auto &[Event, Count] : Combined)
      Result.emplace_back(Event, Count);
    Combined.clear();
    // Deterministic drain order regardless of hash iteration order.
    std::sort(Result.begin(), Result.end());
  }
  DrainedPairs += Result.size();
  return Result;
}
