//===- hw/PipelineTiming.cpp - Engine timing and power analysis ----------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/PipelineTiming.h"

#include <algorithm>
#include <cassert>

using namespace rap;

PipelineTiming::PipelineTiming(const HwCostModel &CostModel,
                               unsigned SubStages)
    : Cost(CostModel), TcamSubStages(SubStages) {
  assert(SubStages >= 1 && "at least one TCAM stage");
}

double PipelineTiming::cycleTimeNs() const {
  // Splitting the TCAM comparison over k sub-stages divides its
  // critical path (the match lines discharge per byte/nibble [27]);
  // the SRAM read-modify-write is the floor.
  double TcamStage = Cost.tcamSearchDelayNs() / TcamSubStages;
  return std::max(TcamStage, Cost.sramAccessDelayNs());
}

PipelineTiming::RunReport
PipelineTiming::analyze(const PipelinedRapEngine &Engine) const {
  RunReport Report;
  double CycleSeconds = cycleTimeNs() * 1e-9;
  double TotalCycles = static_cast<double>(Engine.totalCycles());
  Report.RuntimeSeconds = TotalCycles * CycleSeconds;
  Report.RawEventsPerSecond =
      Report.RuntimeSeconds == 0.0
          ? 0.0
          : static_cast<double>(Engine.numEvents()) /
                Report.RuntimeSeconds;

  // Energy: each TCAM search discharges the whole array once; counter
  // updates and the arbiter/comparator logic are charged per processed
  // cycle (they are active only when the pipeline advances).
  double SearchEnergy = static_cast<double>(Engine.tcam().numSearches()) *
                        Cost.tcamEnergyPerOpNj() * 1e-9;
  double SramEnergy =
      TotalCycles * Cost.sramEnergyPerOpNj() * 1e-9;
  double LogicEnergy =
      TotalCycles * Cost.logicEnergyPerOpNj() * 1e-9;
  Report.EnergyJoules = SearchEnergy + SramEnergy + LogicEnergy;
  Report.AveragePowerWatts = Report.RuntimeSeconds == 0.0
                                 ? 0.0
                                 : Report.EnergyJoules /
                                       Report.RuntimeSeconds;
  return Report;
}
