//===- hw/PipelinedEngine.h - The 5-stage RAP engine of Fig 4 --*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional + cycle-approximate model of the pipelined RAP engine
/// (Fig 4): stage 0 buffers and combines events, stage 1 TCAM-matches
/// all covering ranges, stage 2 arbitrates the longest prefix, stage 3
/// updates the counter SRAM, stage 4 compares against the split
/// threshold. Splits flush the pipeline; merges are batched and stall
/// it "for ten to a hundred cycles" (Sec 3.3). The engine is a second,
/// pointer-free implementation of the RAP algorithm; tests check its
/// final state is identical to the software RapTree fed the same
/// stream.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_HW_PIPELINEDENGINE_H
#define RAP_HW_PIPELINEDENGINE_H

#include "core/RapConfig.h"
#include "hw/EventBuffer.h"
#include "hw/Tcam.h"

#include <cstdint>
#include <tuple>
#include <vector>

namespace rap {

/// Static configuration of the engine.
struct EngineConfig {
  /// The RAP algorithm parameters (eps, b, q, universe).
  RapConfig Profile;

  /// TCAM slots. The paper evaluates a 4096-entry engine and mentions
  /// a modest 400-entry variant (Sec 3.4).
  uint64_t TcamCapacity = 4096;

  /// Stage-0 buffer capacity in distinct events (Sec 3.3: 1k).
  /// Zero disables combining: each event is dispatched immediately.
  uint64_t BufferCapacity = 1024;

  // Cycle model (Sec 3.4: "RAP requires 4 cycles to process an event,
  // 2 cycles each for TCAM and SRAM accesses").
  unsigned CyclesPerUpdate = 4;
  /// Pipeline flush penalty paid by a split (Fig 4 has 5 stages).
  unsigned PipelineDepth = 5;
  /// TCAM/SRAM insert cost per child created by a split.
  unsigned CyclesPerSplitChild = 1;
  /// Per-live-entry cost of the bottom-up merge scan.
  unsigned CyclesPerMergeScanEntry = 1;
};

/// The engine proper.
class PipelinedRapEngine {
public:
  explicit PipelinedRapEngine(const EngineConfig &EngineCfg);

  /// Feeds one raw event through stage 0. If the buffer fills, it is
  /// drained through the pipeline automatically.
  void pushEvent(uint64_t X);

  /// Drains any buffered events through the pipeline (call at end of
  /// stream before reading results).
  void flush();

  /// Raw events accepted so far (n).
  uint64_t numEvents() const { return NumEvents; }

  /// The TCAM+SRAM state.
  const Tcam &tcam() const { return Array; }

  /// The stage-0 buffer (for combining statistics).
  const EventBuffer &buffer() const { return Buffer; }

  // Cycle accounting --------------------------------------------------
  uint64_t updateCycles() const { return UpdateCycles; }
  uint64_t splitStallCycles() const { return SplitStallCycles; }
  uint64_t mergeStallCycles() const { return MergeStallCycles; }
  uint64_t totalCycles() const {
    return UpdateCycles + SplitStallCycles + MergeStallCycles;
  }

  /// Engine cycles per *raw* event: with combining this drops well
  /// below CyclesPerUpdate (the Sec 3.3 buffer claim).
  double cyclesPerRawEvent() const {
    return NumEvents == 0
               ? 0.0
               : static_cast<double>(totalCycles()) /
                     static_cast<double>(NumEvents);
  }

  // Structural statistics ---------------------------------------------
  uint64_t numSplits() const { return NumSplits; }
  uint64_t numMergePasses() const { return NumMergePasses; }
  /// Children a split could not allocate because the TCAM was full.
  uint64_t numCapacityOverflows() const { return CapacityOverflows; }

  /// Sorted (lo, widthBits, count) triples of all live entries; equal
  /// to the software tree's node set when fed the same stream.
  std::vector<std::tuple<uint64_t, unsigned, uint64_t>> snapshot() const;

private:
  void processPair(uint64_t X, uint64_t Weight);
  void splitEntry(uint64_t Slot);
  void mergePass();
  void scheduleAfterMerge();

  EngineConfig Config;
  Tcam Array;
  EventBuffer Buffer;
  uint64_t NumEvents = 0;
  uint64_t NextMergeAt;
  uint64_t UpdateCycles = 0;
  uint64_t SplitStallCycles = 0;
  uint64_t MergeStallCycles = 0;
  uint64_t NumSplits = 0;
  uint64_t NumMergePasses = 0;
  uint64_t CapacityOverflows = 0;
};

} // namespace rap

#endif // RAP_HW_PIPELINEDENGINE_H
