//===- hw/HwCostModel.cpp - Area/delay/energy model (Sec 3.4) ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "hw/HwCostModel.h"

#include <cassert>
#include <cmath>

using namespace rap;

// Calibrated constants (0.18um). With the paper's flagship
// configuration (4096 x 36 TCAM, 16KB SRAM) these reproduce the
// published totals exactly:
//   area   = 20.6438 + 3.6700 + 0.4162 = 24.73 mm^2
//   delays = 7.0 ns TCAM search, 1.26 ns SRAM stage
//   energy = 1.1796 + 0.0655 + 0.0268 = 1.272 nJ per operation
namespace {
constexpr double TcamCellAreaUm2 = 140.0;  // ternary cell + matchline share
constexpr double SramBitAreaUm2 = 28.0;    // 6T cell + decoder share
constexpr double ArbiterAreaPerEntryUm2 = 100.0;
constexpr double FixedLogicAreaUm2 = 6600.0; // comparator + registers

constexpr double TcamDelayBaseNs = 1.0;
constexpr double TcamDelayPerLog2EntryNs = 0.5;
constexpr double SramDelayBaseNs = 0.86;
constexpr double SramDelayPerLog2KbNs = 0.10;

constexpr double TcamEnergyPerCellNj = 8.0e-6;  // 8 fJ per ternary cell
constexpr double SramEnergyPerBitNj = 0.5e-6;   // 0.5 fJ per bit
constexpr double LogicEnergyPerEntryNj = 6.55e-6;
} // namespace

HwCostModel::HwCostModel(uint64_t Entries, unsigned WidthBits,
                         uint64_t Bytes, double FeatureNm)
    : TcamEntries(Entries), TcamWidthBits(WidthBits), SramBytes(Bytes),
      TechnologyNm(FeatureNm) {
  assert(Entries >= 1 && WidthBits >= 1 && Bytes >= 1 &&
         "degenerate configuration");
  assert(FeatureNm > 0.0 && "bad feature size");
}

HwCostModel HwCostModel::makePaperConfig() {
  return HwCostModel(4096, 36, 16 * 1024, 180.0);
}

HwCostModel HwCostModel::makeSmallConfig() {
  // 400 entries with proportionally fewer counters: the Sec 3.4 claim
  // is that this variant costs more than 10x less area and power.
  return HwCostModel(400, 36, 1600, 180.0);
}

double HwCostModel::areaScale() const {
  double S = TechnologyNm / 180.0;
  return S * S;
}

double HwCostModel::delayScale() const { return TechnologyNm / 180.0; }

double HwCostModel::energyScale() const {
  double S = TechnologyNm / 180.0;
  return S * S * S;
}

double HwCostModel::tcamAreaMm2() const {
  double Cells = static_cast<double>(TcamEntries) * TcamWidthBits;
  return Cells * TcamCellAreaUm2 * 1e-6 * areaScale();
}

double HwCostModel::sramAreaMm2() const {
  double Bits = static_cast<double>(SramBytes) * 8.0;
  return Bits * SramBitAreaUm2 * 1e-6 * areaScale();
}

double HwCostModel::logicAreaMm2() const {
  return (static_cast<double>(TcamEntries) * ArbiterAreaPerEntryUm2 +
          FixedLogicAreaUm2) *
         1e-6 * areaScale();
}

double HwCostModel::tcamSearchDelayNs() const {
  double Log2Entries = std::log2(static_cast<double>(TcamEntries));
  return (TcamDelayBaseNs + TcamDelayPerLog2EntryNs * Log2Entries) *
         delayScale();
}

double HwCostModel::sramAccessDelayNs() const {
  double Log2Kb =
      std::log2(std::max(1.0, static_cast<double>(SramBytes) / 1024.0));
  return (SramDelayBaseNs + SramDelayPerLog2KbNs * Log2Kb) * delayScale();
}

double HwCostModel::tcamEnergyPerOpNj() const {
  double Cells = static_cast<double>(TcamEntries) * TcamWidthBits;
  return Cells * TcamEnergyPerCellNj * energyScale();
}

double HwCostModel::sramEnergyPerOpNj() const {
  double Bits = static_cast<double>(SramBytes) * 8.0;
  return Bits * SramEnergyPerBitNj * energyScale();
}

double HwCostModel::logicEnergyPerOpNj() const {
  return static_cast<double>(TcamEntries) * LogicEnergyPerEntryNj *
         energyScale();
}
