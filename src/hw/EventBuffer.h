//===- hw/EventBuffer.h - Stage-0 combining event buffer -------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stage-0 buffer of the pipelined RAP engine (Fig 4): incoming
/// events are buffered, and identical events are combined into
/// (event, count) pairs before entering the matcher. The paper observes
/// that a 1k buffer reduces the throughput requirement on the engine by
/// about a factor of 10 for code profiles (Sec 3.3); the
/// combiningFactor() statistic reproduces that measurement.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_HW_EVENTBUFFER_H
#define RAP_HW_EVENTBUFFER_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rap {

/// Fixed-capacity buffer that merges duplicate events.
class EventBuffer {
public:
  /// Creates a buffer holding up to \p Capacity distinct events
  /// (capacity 0 disables combining: every push drains immediately).
  explicit EventBuffer(uint64_t MaxDistinct) : Capacity(MaxDistinct) {}

  /// Adds one raw event. Returns true if the buffer is now full and
  /// must be drained before more events arrive.
  bool push(uint64_t Event) {
    ++RawEvents;
    if (Capacity == 0) {
      Immediate.emplace_back(Event, 1);
      return true;
    }
    auto [It, Inserted] = Combined.try_emplace(Event, 0);
    ++It->second;
    (void)Inserted;
    return Combined.size() >= Capacity;
  }

  /// Removes and returns all buffered (event, count) pairs, in
  /// insertion-independent deterministic (ascending event) order.
  std::vector<std::pair<uint64_t, uint64_t>> drain();

  /// Raw events pushed so far.
  uint64_t rawEvents() const { return RawEvents; }

  /// Combined pairs handed downstream so far.
  uint64_t drainedPairs() const { return DrainedPairs; }

  /// Raw-to-combined reduction achieved by the buffer; this is the
  /// factor by which the buffer lowers the required engine throughput.
  double combiningFactor() const {
    return DrainedPairs == 0
               ? 1.0
               : static_cast<double>(RawEvents) /
                     static_cast<double>(DrainedPairs);
  }

  /// Distinct events currently buffered.
  uint64_t size() const {
    return Capacity == 0 ? Immediate.size() : Combined.size();
  }

private:
  uint64_t Capacity;
  uint64_t RawEvents = 0;
  uint64_t DrainedPairs = 0;
  std::unordered_map<uint64_t, uint64_t> Combined;
  std::vector<std::pair<uint64_t, uint64_t>> Immediate;
};

} // namespace rap

#endif // RAP_HW_EVENTBUFFER_H
