//===- verify/ReferenceRapTree.cpp - Legacy pointer-based tree ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
//
// This file intentionally mirrors the pre-arena core/RapTree.cpp update
// path line for line (same operations in the same order, including the
// saturation and floating-point comparisons): any behavioral edit here
// changes the specification the oracle checks the arena tree against,
// so do not "improve" it.
//
//===----------------------------------------------------------------------===//

#include "verify/ReferenceRapTree.h"

#include "support/BitUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace rap;

struct ReferenceRapTree::Node {
  Node(uint64_t Low, unsigned Width)
      : Lo(Low), WidthBits(static_cast<uint8_t>(Width)) {}

  bool isUnitRange() const { return WidthBits == 0; }
  bool hasChildren() const { return !Children.empty(); }

  uint64_t subtreeNodeCount() const {
    uint64_t Total = 1;
    for (const auto &Child : Children)
      if (Child)
        Total += Child->subtreeNodeCount();
    return Total;
  }

  uint64_t Lo;
  uint64_t Count = 0;
  uint8_t WidthBits;
  std::vector<std::unique_ptr<Node>> Children;
};

ReferenceRapTree::ReferenceRapTree(const RapConfig &TreeConfig)
    : Config(TreeConfig) {
  assert(Config.validate(nullptr) && "invalid config for reference tree");
  Root = std::make_unique<Node>(0, Config.RangeBits);
  NextMergeAt = Config.InitialMergeInterval;
}

ReferenceRapTree::~ReferenceRapTree() = default;

ReferenceRapTree::Node *ReferenceRapTree::descend(uint64_t X) {
  Node *N = Root.get();
  unsigned BitsPerLevel = Config.bitsPerLevel();
  while (N->hasChildren()) {
    unsigned ChildBits =
        N->WidthBits > BitsPerLevel ? N->WidthBits - BitsPerLevel : 0;
    uint64_t Offset = X - N->Lo;
    unsigned Slot = static_cast<unsigned>(Offset >> ChildBits);
    assert(Slot < N->Children.size() && "child slot out of range");
    Node *Child = N->Children[Slot].get();
    if (!Child)
      break; // Sub-range was merged back into this node (Sec 3.3).
    N = Child;
  }
  return N;
}

void ReferenceRapTree::addPoint(uint64_t X, uint64_t Weight) {
  if (Weight == 0)
    return;
  assert((Config.RangeBits == 64 || X < (uint64_t(1) << Config.RangeBits)) &&
         "event outside the configured universe");
  NumEvents = saturatingAdd(NumEvents, Weight);

  Node *N = descend(X);
  N->Count = saturatingAdd(N->Count, Weight);

  if (!N->isUnitRange() &&
      static_cast<double>(N->Count) > Config.splitThreshold(NumEvents))
    splitNode(*N);

  if (Config.EnableMerges && NumEvents >= NextMergeAt) {
    mergeNow();
    scheduleAfterMerge();
  }
}

void ReferenceRapTree::splitNode(Node &N) {
  assert(!N.isUnitRange() && "cannot split a unit range");
  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned ChildBits =
      N.WidthBits > BitsPerLevel ? N.WidthBits - BitsPerLevel : 0;
  unsigned NumSlots = 1u << (N.WidthBits - ChildBits);
  if (N.Children.empty())
    N.Children.resize(NumSlots);
  assert(N.Children.size() == NumSlots && "child slot count changed");

  for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
    if (N.Children[Slot])
      continue;
    uint64_t ChildLo = N.Lo + (static_cast<uint64_t>(Slot) << ChildBits);
    N.Children[Slot] = std::make_unique<Node>(ChildLo, ChildBits);
    ++NumNodes;
  }
  ++NumSplits;
  MaxNumNodes = std::max(MaxNumNodes, NumNodes);
}

uint64_t ReferenceRapTree::mergeWalk(Node &N, double Threshold,
                                     uint64_t &Removed) {
  uint64_t Total = N.Count;
  if (!N.hasChildren())
    return Total;

  bool AnyChildLeft = false;
  for (auto &ChildSlot : N.Children) {
    if (!ChildSlot)
      continue;
    uint64_t ChildWeight = mergeWalk(*ChildSlot, Threshold, Removed);
    Total = saturatingAdd(Total, ChildWeight);
    if (static_cast<double>(ChildWeight) < Threshold) {
      N.Count = saturatingAdd(N.Count, ChildWeight);
      uint64_t Dropped = ChildSlot->subtreeNodeCount();
      Removed += Dropped;
      NumNodes -= Dropped;
      ChildSlot.reset();
    } else {
      AnyChildLeft = true;
    }
  }
  if (!AnyChildLeft)
    N.Children.clear();
  return Total;
}

uint64_t ReferenceRapTree::mergeNow() {
  double Threshold = Config.mergeThreshold(NumEvents);
  uint64_t Removed = 0;
  mergeWalk(*Root, Threshold, Removed);
  ++NumMergePasses;
  NumMergedNodes += Removed;
  MergeEventCounts.push_back(NumEvents);
  return Removed;
}

void ReferenceRapTree::scheduleAfterMerge() {
  double Next = static_cast<double>(NextMergeAt) * Config.MergeRatio;
  uint64_t NextInt =
      Next >= static_cast<double>(std::numeric_limits<int64_t>::max())
          ? ~uint64_t(0)
          : static_cast<uint64_t>(std::llround(Next));
  NextMergeAt = std::max<uint64_t>(saturatingAdd(NumEvents, 1), NextInt);
}

std::vector<ReferenceRapTree::NodeTriple>
ReferenceRapTree::collectNodes() const {
  // Local struct: keeps the recursion able to see the private Node.
  struct Walker {
    static void walk(const Node *N, std::vector<NodeTriple> &Out) {
      Out.emplace_back(N->Lo, N->WidthBits, N->Count);
      for (const auto &Child : N->Children)
        if (Child)
          walk(Child.get(), Out);
    }
  };
  std::vector<NodeTriple> Out;
  Walker::walk(Root.get(), Out);
  return Out;
}
