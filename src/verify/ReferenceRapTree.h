//===- verify/ReferenceRapTree.h - Legacy pointer-based tree ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original pointer-chasing RapTree update path, preserved verbatim
/// as an executable specification. When core/RapTree moved to slab
/// arena storage (32-bit indices, SoA counters, packed-word descend),
/// the semantics were required to stay bit-for-bit: this class is the
/// pre-arena implementation — one heap node per counter, unique_ptr
/// children, the same split/merge/schedule arithmetic in the same
/// order — against which the DifferentialOracle structurally
/// cross-checks every arena tree it audits.
///
/// Two trees that agree on the preorder (lo, widthBits, count) node
/// sequence agree on every estimate, hot-range extraction and bound the
/// library derives, so structural identity here is the strongest
/// equivalence the oracle can assert. It is also the "legacy" variant
/// timed by bench/bench_run for the before/after numbers in
/// BENCH_core.json.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_VERIFY_REFERENCERAPTREE_H
#define RAP_VERIFY_REFERENCERAPTREE_H

#include "core/RapConfig.h"

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

namespace rap {

/// Pre-arena RapTree: identical observable semantics, original storage.
class ReferenceRapTree {
public:
  /// (lo, widthBits, count) of one node, in preorder.
  using NodeTriple = std::tuple<uint64_t, uint8_t, uint64_t>;

  /// Constructs an empty tree. \p Config must validate (asserted, not
  /// thrown: the reference tree is only ever built by harnesses that
  /// already validated the config for the real tree).
  explicit ReferenceRapTree(const RapConfig &Config);
  ~ReferenceRapTree();

  ReferenceRapTree(const ReferenceRapTree &) = delete;
  ReferenceRapTree &operator=(const ReferenceRapTree &) = delete;

  /// Records \p Weight occurrences of \p X: the legacy update + split
  /// check + batched-merge schedule, bit for bit.
  void addPoint(uint64_t X, uint64_t Weight = 1);

  /// Runs one batched merge pass immediately. Returns nodes removed.
  uint64_t mergeNow();

  const RapConfig &config() const { return Config; }
  uint64_t numEvents() const { return NumEvents; }
  uint64_t numNodes() const { return NumNodes; }
  uint64_t maxNumNodes() const { return MaxNumNodes; }
  uint64_t numSplits() const { return NumSplits; }
  uint64_t numMergePasses() const { return NumMergePasses; }
  uint64_t numMergedNodes() const { return NumMergedNodes; }
  uint64_t nextMergeAt() const { return NextMergeAt; }
  const std::vector<uint64_t> &mergeEventCounts() const {
    return MergeEventCounts;
  }

  /// The tree's nodes as preorder (lo, widthBits, count) triples —
  /// root first, children in ascending slot order. Comparing this
  /// against the arena tree's preorder is the oracle's structural
  /// equivalence check.
  std::vector<NodeTriple> collectNodes() const;

private:
  struct Node;

  Node *descend(uint64_t X);
  void splitNode(Node &N);
  uint64_t mergeWalk(Node &N, double Threshold, uint64_t &Removed);
  void scheduleAfterMerge();

  RapConfig Config;
  std::unique_ptr<Node> Root;
  uint64_t NumEvents = 0;
  uint64_t NumNodes = 1;
  uint64_t MaxNumNodes = 1;
  uint64_t NumSplits = 0;
  uint64_t NumMergePasses = 0;
  uint64_t NumMergedNodes = 0;
  uint64_t NextMergeAt;
  std::vector<uint64_t> MergeEventCounts;
};

} // namespace rap

#endif // RAP_VERIFY_REFERENCERAPTREE_H
