//===- verify/StreamFuzzer.h - Adversarial stream generator ---*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, fully deterministic generation of adversarial event streams
/// for the verification subsystem. A StreamFuzzer draws events of one
/// of several shapes chosen to stress distinct parts of the RAP
/// algorithm: the split threshold (point masses, Zipf heads), the
/// batched merge (shifting phases that abandon previously hot
/// regions), split/merge hysteresis (sawtooth around an aligned
/// boundary), node-count bounds (all-distinct, uniform), and range
/// arithmetic (universe-edge values, weighted bursts).
///
/// deriveEpisode() expands (master seed, episode index) into a random
/// RapConfig plus a stream shape and seed, so a failing episode is
/// fully described by two integers — the replay line the fuzz driver
/// prints. runFuzzEpisode() feeds the stream through a
/// DifferentialOracle, running both that oracle's query battery and
/// the structural TreeInvariants audit every CheckEvery events.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_VERIFY_STREAMFUZZER_H
#define RAP_VERIFY_STREAMFUZZER_H

#include "core/RapConfig.h"
#include "support/Rng.h"
#include "verify/TreeInvariants.h"

#include <cstdint>
#include <vector>

namespace rap {

/// Stream shapes the fuzzer can generate. Each stresses a different
/// mechanism; see the file comment.
enum class StreamShape : unsigned {
  Uniform,        ///< i.i.d. uniform over the universe.
  Zipf,           ///< Heavy-tailed ranks hashed across the universe.
  PointMass,      ///< One value takes most of the mass.
  ShiftingPhase,  ///< Hot region relocates every phase (merge stress).
  Sawtooth,       ///< Triangle wave across an aligned boundary.
  AllDistinct,    ///< A value never repeats (until universe wrap).
  UniverseEdges,  ///< 0, 2^k boundaries, and 2^R - 1 extremes.
  WeightedBursts, ///< Uniform values with occasional huge weights.
};

/// Number of StreamShape enumerators (for random selection).
constexpr unsigned NumStreamShapes = 8;

/// Stable name of \p Shape for logs and replay lines.
const char *streamShapeName(StreamShape Shape);

/// One stream event.
struct StreamEvent {
  uint64_t X;
  uint64_t Weight;
};

/// Deterministic generator of one stream: same (Seed, Shape,
/// RangeBits) always yields the same event sequence on every platform.
class StreamFuzzer {
public:
  StreamFuzzer(uint64_t Seed, StreamShape StreamKind, unsigned Bits);

  /// Draws the next event. Values are always inside [0, 2^RangeBits).
  /// About one event in 128 carries weight zero, to exercise the
  /// zero-weight no-op path.
  StreamEvent next();

  StreamShape shape() const { return Shape; }

private:
  uint64_t drawValue();

  Rng R;
  StreamShape Shape;
  unsigned RangeBits;
  uint64_t UniverseHi;

  // Shape-specific state, initialized in the constructor.
  uint64_t HotValue = 0;     // PointMass
  double HotProb = 0.9;      // PointMass
  uint64_t ZipfSalt = 0;     // Zipf value hashing
  std::vector<double> ZipfCdf;
  uint64_t PhaseLen = 4096;  // ShiftingPhase
  uint64_t PhaseLeft = 0;    // ShiftingPhase
  unsigned RegionBits = 0;   // ShiftingPhase
  uint64_t RegionLo = 0;     // ShiftingPhase
  uint64_t Boundary = 0;     // Sawtooth
  uint64_t Amplitude = 1;    // Sawtooth
  uint64_t SawStep = 0;      // Sawtooth
  uint64_t Counter = 0;      // AllDistinct
  uint64_t OddStep = 1;      // AllDistinct
};

/// A fully derived fuzz episode: everything needed to replay it.
struct FuzzEpisode {
  uint64_t MasterSeed = 0;
  uint64_t Index = 0;
  uint64_t StreamSeed = 0;
  StreamShape Shape = StreamShape::Uniform;
  RapConfig Config;

  /// Stage-0 combining buffer capacity for the tree-side stream
  /// (0 = feed the tree directly). Nonzero episodes exercise the
  /// combining buffer + arena descent path end to end.
  uint64_t CombineCapacity = 0;

  /// When nonzero, the arena-allocation failpoint is armed to throw
  /// std::bad_alloc on the next slab growth once every this many
  /// events, exercising the degraded split-refusal path.
  uint64_t AllocFailEvery = 0;

  /// Run the end-of-episode snapshot robustness battery: binary
  /// round-trip, then seeded one-byte corruptions and truncations of
  /// the byte stream, every one of which must be rejected.
  bool SnapshotChecks = false;

  /// Fence-mode episode (rap_fuzz --fence): the episode is run by
  /// runFenceFuzzEpisode, which drives a fence-ON tree through the
  /// full oracle battery while cross-checking a fence-OFF twin fed
  /// the identical stream bit for bit.
  bool FenceTwin = false;

  /// Sharded-mode parameters (rap_fuzz --sharded). ShardThreads > 0
  /// marks a sharded episode: that many ingest threads drive one
  /// ShardedRapSession with SessionShards shards and an automatic
  /// combine watermark of ShardCombineEvery (0 = manual combines
  /// only, a final combineNow before checking).
  unsigned ShardThreads = 0;
  unsigned SessionShards = 0;
  uint64_t ShardCombineEvery = 0;
};

/// Expands (master seed, episode index) into a random valid RapConfig,
/// stream shape, and stream seed. Deterministic and platform-stable.
FuzzEpisode deriveEpisode(uint64_t MasterSeed, uint64_t Index);

/// Like deriveEpisode (identical config/stream for the same inputs)
/// but additionally draws a stage-0 combining capacity, so the stream
/// reaches the tree through StageZeroBuffer windows while the exact
/// and flat oracles still see the raw stream.
FuzzEpisode deriveArenaEpisode(uint64_t MasterSeed, uint64_t Index);

/// Like deriveEpisode (identical config/stream for the same inputs)
/// but additionally draws a resource-governance regime — a node or
/// byte budget on the tree, a periodic injected allocation failure,
/// or both — and enables the end-of-episode snapshot robustness
/// battery. The invariant checks run after every injected fault, so a
/// clean fault episode certifies graceful degradation end to end.
FuzzEpisode deriveFaultEpisode(uint64_t MasterSeed, uint64_t Index);

/// Like deriveEpisode (identical config/stream for the same inputs)
/// but additionally draws a thread count, shard count, and combine
/// watermark for concurrent ingest through ShardedRapSession.
FuzzEpisode deriveShardedEpisode(uint64_t MasterSeed, uint64_t Index);

/// Like deriveEpisode (identical config/stream for the same inputs)
/// but with the randomized split-admission gate enabled: draws an
/// admission coarseness from {1, 2, 4, 8} and an admission seed, so an
/// episode replays deterministically including every admit/deny
/// decision.
FuzzEpisode deriveAdmissionEpisode(uint64_t MasterSeed, uint64_t Index);

/// Like deriveEpisode (identical config/stream for the same inputs)
/// but marked as a fence-twin episode, with a drawn governance regime
/// layered on top: nothing, the randomized admission gate, a node or
/// byte budget, or both at once. Every drawn regime is deterministic
/// per tree (the admission RNG is seeded per tree, budget passes are
/// deterministic), so the fence-ON and fence-OFF twins stay
/// bit-identical — which is exactly the property the episode checks.
/// Injected allocation faults are deliberately never drawn: the
/// failpoint counter is process-global, so the armed failure would
/// land in whichever twin allocates next and they would lawfully
/// diverge.
FuzzEpisode deriveFenceEpisode(uint64_t MasterSeed, uint64_t Index);

/// Result of running one episode.
struct FuzzReport {
  /// Violations from the differential oracle, the online transition
  /// auditor, and the structural audit, in detection order.
  std::vector<InvariantViolation> Violations;

  /// Events fed when the first failing check ran (== NumEvents for a
  /// clean episode: the run stops at the first failing checkpoint).
  uint64_t EventsFed = 0;

  bool ok() const { return Violations.empty(); }
};

/// Feeds \p NumEvents events of the episode's stream into a
/// DifferentialOracle, running the full query battery plus a
/// structural TreeInvariants audit every \p CheckEvery events (0 means
/// check only once, after the last event). Stops at the first failing
/// checkpoint.
FuzzReport runFuzzEpisode(const FuzzEpisode &Episode, uint64_t NumEvents,
                          uint64_t CheckEvery);

/// Runs one sharded episode: ShardThreads threads concurrently ingest
/// deterministic per-thread sub-streams (thread t draws from a seed
/// derived from (StreamSeed, t), splitting NumEvents evenly) into one
/// ShardedRapSession, racing the watermark-triggered combiner. After
/// the threads join and a final combine, the merged profile is
/// cross-checked against a sequential ExactProfiler replay of the
/// identical sub-streams: total weight must match exactly, the
/// whole-universe estimate must equal it, range estimates must be
/// lower bounds, and estimate brackets must contain the exact count.
/// The interleaving is nondeterministic; every checked property holds
/// for every interleaving, which is the point — a duplicated shard
/// delta breaks the lower bound, a lost or torn one breaks
/// conservation. (The statistical eps-accuracy model stays with the
/// single-threaded fuzz legs: its slack terms depend on the merge
/// history, which combining multiplies.)
FuzzReport runShardedFuzzEpisode(const FuzzEpisode &Episode,
                                 uint64_t NumEvents);

/// Runs one admission episode. The admission-ON tree goes through the
/// full DifferentialOracle battery — which enforces the closed-form
/// deferred-weight error bound on top of eps * n and the top-k report
/// properties — while a second, admission-OFF tree is fed the
/// identical stream. At every checkpoint the two trees are
/// cross-checked on properties that hold regardless of which splits
/// were admitted: exact event-count agreement, whole-universe
/// conservation on both, truth-containing estimate brackets on both
/// for the same random ranges, per-tree top-k nesting (topK(k) is a
/// field-for-field prefix of topK(k + m)), and admission accounting
/// (the OFF tree records no denials; ON-tree deferred weight implies
/// denials). Cross-TREE subset relations are deliberately NOT
/// checked: denying a split changes which ranges exist, so neither
/// tree's top-k need contain the other's.
FuzzReport runAdmissionFuzzEpisode(const FuzzEpisode &Episode,
                                   uint64_t NumEvents, uint64_t CheckEvery);

/// Runs one fence episode. The fence-ON tree goes through the full
/// DifferentialOracle battery (with the oracle's own fence twin
/// disabled — this runner IS the twin check) while a fence-OFF tree
/// is fed the identical stream. At every checkpoint the runner
/// requires bit-for-bit agreement on node counts, range estimates,
/// estimate brackets, and topK reports for the same drawn queries,
/// and checks fence soundness directly: any range the fenced tree
/// proves cold must estimate to zero on the UNFENCED tree (the fence
/// never consulted). Both trees also pass the structural audit.
FuzzReport runFenceFuzzEpisode(const FuzzEpisode &Episode,
                               uint64_t NumEvents, uint64_t CheckEvery);

/// Shrinks a failing episode to a short failing prefix: binary-searches
/// the smallest event count whose end-of-stream check still fails.
/// Violations need not be monotone in the prefix length, so this is a
/// heuristic — it always returns *some* failing prefix length, at most
/// \p FailingEvents (which must itself fail with an end-only check;
/// if it does not, FailingEvents is returned unchanged).
uint64_t minimizeFailure(const FuzzEpisode &Episode, uint64_t FailingEvents);

} // namespace rap

#endif // RAP_VERIFY_STREAMFUZZER_H
