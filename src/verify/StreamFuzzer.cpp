//===- verify/StreamFuzzer.cpp - Adversarial stream generator ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/StreamFuzzer.h"

#include "baselines/ExactProfiler.h"
#include "core/Serialization.h"
#include "core/ShardedRapSession.h"
#include "support/BitUtils.h"
#include "support/FailPoint.h"
#include "verify/DifferentialOracle.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

using namespace rap;

const char *rap::streamShapeName(StreamShape Shape) {
  switch (Shape) {
  case StreamShape::Uniform:
    return "uniform";
  case StreamShape::Zipf:
    return "zipf";
  case StreamShape::PointMass:
    return "point-mass";
  case StreamShape::ShiftingPhase:
    return "shifting-phase";
  case StreamShape::Sawtooth:
    return "sawtooth";
  case StreamShape::AllDistinct:
    return "all-distinct";
  case StreamShape::UniverseEdges:
    return "universe-edges";
  case StreamShape::WeightedBursts:
    return "weighted-bursts";
  }
  return "unknown";
}

namespace {

/// SplitMix64 finalizer as a stateless hash: spreads Zipf ranks across
/// the universe so heavy ranks land in unrelated subtrees.
uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Maps a raw 64-bit draw into [0, 1), platform-stable.
double toUnit(uint64_t X) { return static_cast<double>(X >> 11) * 0x1.0p-53; }

} // namespace

StreamFuzzer::StreamFuzzer(uint64_t Seed, StreamShape StreamKind,
                           unsigned Bits)
    : R(Seed), Shape(StreamKind), RangeBits(Bits),
      UniverseHi(Bits == 0 ? 0 : lowBitMask(Bits)) {
  switch (StreamKind) {
  case StreamShape::PointMass:
    HotValue = R.next() & UniverseHi;
    HotProb = 0.5 + 0.45 * R.nextDouble();
    break;
  case StreamShape::Zipf: {
    uint64_t N = RangeBits >= 12 ? 4096 : (uint64_t(1) << RangeBits);
    double Exponent = 0.8 + 0.8 * R.nextDouble();
    ZipfCdf.resize(N);
    double Total = 0.0;
    for (uint64_t I = 0; I != N; ++I) {
      Total += std::pow(static_cast<double>(I + 1), -Exponent);
      ZipfCdf[I] = Total;
    }
    for (double &C : ZipfCdf)
      C /= Total;
    ZipfCdf.back() = 1.0;
    ZipfSalt = R.next();
    break;
  }
  case StreamShape::ShiftingPhase: {
    PhaseLen = 512 + R.nextBelow(4096);
    unsigned MaxNarrow = RangeBits > 1 ? std::min(RangeBits - 1, 10u) : 0;
    RegionBits =
        RangeBits - (MaxNarrow ? 1 + unsigned(R.nextBelow(MaxNarrow)) : 0);
    break;
  }
  case StreamShape::Sawtooth: {
    if (RangeBits >= 2) {
      // An aligned boundary a node split will create, plus a small
      // amplitude so the wave keeps crossing it.
      unsigned W = 1 + unsigned(R.nextBelow(RangeBits - 1));
      uint64_t Slots = std::max<uint64_t>(1, UniverseHi >> W);
      Boundary = (1 + R.nextBelow(Slots)) << W;
      Amplitude = 1 + R.nextBelow(32);
      Amplitude = std::min(Amplitude, Boundary);
      if (Boundary < UniverseHi)
        Amplitude = std::min(Amplitude, UniverseHi - Boundary);
    }
    break;
  }
  case StreamShape::AllDistinct:
    OddStep = R.next() | 1;
    Counter = R.next();
    break;
  default:
    break;
  }
}

uint64_t StreamFuzzer::drawValue() {
  switch (Shape) {
  case StreamShape::Uniform:
  case StreamShape::WeightedBursts:
    return R.next() & UniverseHi;
  case StreamShape::Zipf: {
    double U = R.nextDouble();
    auto It = std::lower_bound(ZipfCdf.begin(), ZipfCdf.end(), U);
    uint64_t Rank =
        static_cast<uint64_t>(std::distance(ZipfCdf.begin(), It));
    if (Rank >= ZipfCdf.size())
      Rank = ZipfCdf.size() - 1;
    return mix64(Rank + ZipfSalt) & UniverseHi;
  }
  case StreamShape::PointMass:
    return R.nextBernoulli(HotProb) ? HotValue : R.next() & UniverseHi;
  case StreamShape::ShiftingPhase: {
    if (PhaseLeft == 0) {
      RegionLo = (R.next() & UniverseHi) & ~lowBitMask(RegionBits);
      PhaseLeft = PhaseLen;
    }
    --PhaseLeft;
    return RegionLo + (R.next() & lowBitMask(RegionBits));
  }
  case StreamShape::Sawtooth: {
    if (Amplitude == 0)
      return 0;
    uint64_t Period = 2 * Amplitude;
    uint64_t T = SawStep++ % (2 * Period);
    uint64_t Delta = T < Period ? T : 2 * Period - T;
    return std::min(Boundary - Amplitude + Delta, UniverseHi);
  }
  case StreamShape::AllDistinct:
    return (Counter++ * OddStep) & UniverseHi;
  case StreamShape::UniverseEdges: {
    unsigned K = unsigned(R.nextBelow(RangeBits + 1));
    uint64_t Power = K >= 64 ? 0 : (uint64_t(1) << K);
    switch (R.nextBelow(5)) {
    case 0:
      return 0;
    case 1:
      return UniverseHi;
    case 2:
      return (Power - 1) & UniverseHi;
    case 3:
      return Power & UniverseHi;
    default:
      return (Power + 1) & UniverseHi;
    }
  }
  }
  return 0;
}

StreamEvent StreamFuzzer::next() {
  uint64_t Weight = 1;
  if (Shape == StreamShape::WeightedBursts) {
    double U = R.nextDouble();
    if (U < 0.01)
      Weight = 1 + R.nextBelow(1000000);
    else if (U < 0.15)
      Weight = 1 + R.nextBelow(1000);
  }
  uint64_t X = drawValue();
  if (R.nextBernoulli(1.0 / 128))
    Weight = 0; // exercise the zero-weight no-op path
  return {X, Weight};
}

FuzzEpisode rap::deriveEpisode(uint64_t MasterSeed, uint64_t Index) {
  SplitMix64 M(MasterSeed ^ (0xa24baed4963ee407ULL * (Index + 1)));
  FuzzEpisode E;
  E.MasterSeed = MasterSeed;
  E.Index = Index;
  E.StreamSeed = M.next();
  E.Shape = static_cast<StreamShape>(M.next() % NumStreamShapes);

  RapConfig &C = E.Config;
  static const unsigned BitsTable[] = {0,  1,  2,  3,  4,  6,  8,  8, 10,
                                       12, 16, 16, 20, 24, 32, 48, 64};
  C.RangeBits =
      BitsTable[M.next() % (sizeof(BitsTable) / sizeof(BitsTable[0]))];

  static const unsigned Branches[] = {2, 4, 8, 16};
  unsigned Pick = unsigned(M.next() % 4);
  for (unsigned Tries = 0; Tries != 4; ++Tries) {
    unsigned B = Branches[(Pick + Tries) % 4];
    if (C.RangeBits == 0 || log2Exact(B) <= C.RangeBits) {
      C.BranchFactor = B;
      break;
    }
  }

  double U = toUnit(M.next());
  C.Epsilon = std::exp(std::log(0.005) + U * (std::log(0.5) - std::log(0.005)));
  C.MergeRatio = 1.25 + toUnit(M.next()) * 2.75;
  C.InitialMergeInterval = uint64_t(1) << (6 + M.next() % 6);
  C.EnableMerges = (M.next() % 8) != 0;

  if (!C.validate())
    C = RapConfig(); // unreachable by construction; stay usable anyway
  return E;
}

FuzzEpisode rap::deriveArenaEpisode(uint64_t MasterSeed, uint64_t Index) {
  FuzzEpisode E = deriveEpisode(MasterSeed, Index);
  // A separate draw stream: the base episode stays bit-identical to
  // deriveEpisode so arena episodes replay against the same configs.
  SplitMix64 M(MasterSeed ^ (0xd1342543de82ef95ULL * (Index + 1)));
  static const uint64_t Capacities[] = {16, 64, 256, 1024};
  E.CombineCapacity = Capacities[M.next() % 4];
  return E;
}

FuzzEpisode rap::deriveFaultEpisode(uint64_t MasterSeed, uint64_t Index) {
  FuzzEpisode E = deriveEpisode(MasterSeed, Index);
  // A separate draw stream (same pattern as deriveArenaEpisode): the
  // base episode stays bit-identical so fault episodes replay against
  // the same configs and streams.
  SplitMix64 M(MasterSeed ^ (0x2545f4914f6cdd1dULL * (Index + 1)));
  switch (M.next() % 3) {
  case 0:
    // The acceptance regime: a 4 KB memory budget (256 nodes at 16
    // bytes each) on adversarial streams.
    E.Config.MaxMemoryBytes = 4096;
    break;
  case 1:
    E.Config.MaxNodes = 64;
    break;
  default:
    break; // unbudgeted: faults only
  }
  uint64_t Draw = M.next();
  if (Draw % 3 != 0)
    E.AllocFailEvery = uint64_t(64) << (Draw % 4);
  if (E.Config.effectiveNodeBudget() == 0 && E.AllocFailEvery == 0)
    E.AllocFailEvery = 64; // every fault episode injects something
  E.SnapshotChecks = true;
  return E;
}

FuzzEpisode rap::deriveShardedEpisode(uint64_t MasterSeed, uint64_t Index) {
  FuzzEpisode E = deriveEpisode(MasterSeed, Index);
  // A separate draw stream (same pattern as deriveArenaEpisode): the
  // base episode stays bit-identical so sharded episodes replay
  // against the same configs and streams.
  SplitMix64 M(MasterSeed ^ (0x9e6c63d0876a9a47ULL * (Index + 1)));
  static const unsigned ThreadCounts[] = {2, 3, 4};
  static const unsigned ShardCounts[] = {1, 2, 4, 8, 16};
  static const uint64_t Watermarks[] = {0, 256, 1024, 4096};
  E.ShardThreads = ThreadCounts[M.next() % 3];
  E.SessionShards = ShardCounts[M.next() % 5];
  E.ShardCombineEvery = Watermarks[M.next() % 4];
  return E;
}

FuzzEpisode rap::deriveAdmissionEpisode(uint64_t MasterSeed, uint64_t Index) {
  FuzzEpisode E = deriveEpisode(MasterSeed, Index);
  // A separate draw stream (same pattern as deriveArenaEpisode): the
  // base episode stays bit-identical so admission episodes replay
  // against the same configs and streams.
  SplitMix64 M(MasterSeed ^ (0x8cb92ba72f3d8dd7ULL * (Index + 1)));
  static const double Coarseness[] = {1.0, 2.0, 4.0, 8.0};
  E.Config.EnableAdmission = true;
  E.Config.AdmissionCoarseness = Coarseness[M.next() % 4];
  E.Config.AdmissionSeed = M.next();
  return E;
}

FuzzEpisode rap::deriveFenceEpisode(uint64_t MasterSeed, uint64_t Index) {
  FuzzEpisode E = deriveEpisode(MasterSeed, Index);
  // A separate draw stream (same pattern as deriveArenaEpisode): the
  // base episode stays bit-identical so fence episodes replay against
  // the same configs and streams.
  SplitMix64 M(MasterSeed ^ (0x6c62272e07bb0142ULL * (Index + 1)));
  E.FenceTwin = true;
  E.Config.EnableRangeFence = true; // the OFF twin flips this
  uint64_t Regime = M.next() % 4;
  if (Regime == 1 || Regime == 3) {
    static const double Coarseness[] = {1.0, 2.0, 4.0, 8.0};
    E.Config.EnableAdmission = true;
    E.Config.AdmissionCoarseness = Coarseness[M.next() % 4];
    E.Config.AdmissionSeed = M.next();
  }
  if (Regime == 2 || Regime == 3) {
    if (M.next() % 2 == 0)
      E.Config.MaxMemoryBytes = 4096;
    else
      E.Config.MaxNodes = 64;
  }
  return E;
}

namespace {

/// End-of-episode snapshot robustness battery: round-trips the tree
/// through the binary format, then verifies that every seeded
/// one-byte corruption and every truncation of the byte stream is
/// rejected (the CRC-32 footer guarantees single-byte detection, and
/// any truncation loses the footer).
void snapshotTorture(const RapTree &Tree, uint64_t Seed,
                     std::vector<InvariantViolation> &Out) {
  ProfileSnapshot Original = ProfileSnapshot::capture(Tree);
  std::ostringstream OS;
  if (!Original.writeBinary(OS)) {
    Out.push_back({"snapshot-io", "writeBinary failed on a healthy stream"});
    return;
  }
  const std::string Bytes = OS.str();
  {
    std::istringstream IS(Bytes);
    std::string Error;
    std::unique_ptr<ProfileSnapshot> Back =
        ProfileSnapshot::readBinary(IS, &Error);
    if (!Back) {
      Out.push_back({"snapshot-io", "round-trip read failed: " + Error});
      return;
    }
    if (!(*Back == Original)) {
      Out.push_back({"snapshot-io", "round-trip changed the snapshot"});
      return;
    }
  }
  char Detail[96];
  SplitMix64 M(Seed ^ 0x94d049bb133111ebULL);
  for (unsigned Probe = 0; Probe != 16; ++Probe) {
    std::string Corrupt = Bytes;
    size_t Offset = static_cast<size_t>(M.next() % Corrupt.size());
    // Adding 1..255 mod 256 always changes the byte.
    Corrupt[Offset] = static_cast<char>(
        static_cast<unsigned char>(Corrupt[Offset]) + 1 + M.next() % 255);
    std::istringstream IS(Corrupt);
    if (ProfileSnapshot::readBinary(IS)) {
      std::snprintf(Detail, sizeof(Detail),
                    "one-byte corruption at offset %zu was accepted",
                    Offset);
      Out.push_back({"snapshot-corruption", Detail});
    }
  }
  const size_t Cuts[] = {0,   1,   4,   Bytes.size() / 2,
                         Bytes.size() - 8, Bytes.size() - 1};
  for (size_t Cut : Cuts) {
    if (Cut >= Bytes.size())
      continue;
    std::istringstream IS(Bytes.substr(0, Cut));
    if (ProfileSnapshot::readBinary(IS)) {
      std::snprintf(Detail, sizeof(Detail),
                    "truncation to %zu of %zu bytes was accepted", Cut,
                    Bytes.size());
      Out.push_back({"snapshot-corruption", Detail});
    }
  }
}

} // namespace

FuzzReport rap::runFuzzEpisode(const FuzzEpisode &Episode, uint64_t NumEvents,
                               uint64_t CheckEvery) {
  // Fault hygiene: never inherit an armed failpoint from a previous
  // episode, and never leak one past this episode's return.
  failpoints::disarmAll();
  failpoints::ScopedDisarm Guard;

  OracleOptions Options;
  Options.CombineCapacity = Episode.CombineCapacity;
  // The legacy reference tree models no resource governance and no
  // allocation faults, so it diverges (correctly) from the governed
  // tree; the exact and flat oracles plus the degraded error budget
  // still bound the estimates.
  if (Episode.Config.effectiveNodeBudget() != 0 || Episode.AllocFailEvery != 0)
    Options.CrossCheckReference = false;
  // The fence twin survives budgets and admission (both per-tree
  // deterministic), but not injected allocation faults: the failpoint
  // counter is process-global, so with two trees feeding, the armed
  // failure lands in whichever tree allocates next and only that tree
  // degrades — a lawful divergence, not a fence bug.
  if (Episode.AllocFailEvery != 0)
    Options.CrossCheckFence = false;
  DifferentialOracle Oracle(Episode.Config, Options);
  StreamFuzzer Stream(Episode.StreamSeed, Episode.Shape,
                      Episode.Config.RangeBits);
  Rng QueryRng(Episode.StreamSeed ^ 0x5bf03635aca1fed5ULL);

  FuzzReport Report;
  auto CheckPoint = [&](uint64_t EventsFed) {
    Oracle.checkNow(QueryRng);
    Report.Violations = Oracle.violations();
    std::vector<InvariantViolation> Structural =
        TreeInvariants::audit(Oracle.tree());
    Report.Violations.insert(Report.Violations.end(), Structural.begin(),
                             Structural.end());
    Report.EventsFed = EventsFed;
    return Report.Violations.empty();
  };

  for (uint64_t I = 0; I != NumEvents; ++I) {
    if (Episode.AllocFailEvery != 0 &&
        (I + 1) % Episode.AllocFailEvery == 0)
      failpoints::arm(failpoints::Fp::ArenaAlloc);
    StreamEvent Event = Stream.next();
    Oracle.addPoint(Event.X, Event.Weight);
    if (CheckEvery != 0 && (I + 1) % CheckEvery == 0 && I + 1 != NumEvents)
      if (!CheckPoint(I + 1))
        return Report;
  }
  // The snapshot battery must not see an armed allocation failpoint.
  failpoints::disarmAll();
  if (!CheckPoint(NumEvents))
    return Report;
  if (Episode.SnapshotChecks) {
    snapshotTorture(Oracle.tree(), Episode.StreamSeed, Report.Violations);
    Report.EventsFed = NumEvents;
  }
  return Report;
}

namespace {

/// Per-tree top-k nesting: topK(K) must be a field-for-field prefix
/// of topK(K + M). Holds deterministically because topK ranks by a
/// total order; a violation means the order has ties it cannot break.
void checkTopKNesting(const RapTree &Tree, const char *Which,
                      std::vector<InvariantViolation> &Out) {
  const size_t K = 5, M = 4;
  std::vector<TopKRange> Small = Tree.topK(K);
  std::vector<TopKRange> Big = Tree.topK(K + M);
  char Detail[128];
  if (Big.size() < Small.size()) {
    std::snprintf(Detail, sizeof(Detail),
                  "%s tree: topK(%zu) returned %zu entries but topK(%zu) "
                  "only %zu",
                  Which, K, Small.size(), K + M, Big.size());
    Out.push_back({"admission-topk-nesting", Detail});
    return;
  }
  for (size_t I = 0; I != Small.size(); ++I) {
    const TopKRange &A = Small[I], &B = Big[I];
    if (A.Lo != B.Lo || A.Hi != B.Hi || A.WidthBits != B.WidthBits ||
        A.Depth != B.Depth || A.Retained != B.Retained ||
        A.LowerWeight != B.LowerWeight || A.UpperWeight != B.UpperWeight) {
      std::snprintf(Detail, sizeof(Detail),
                    "%s tree: topK(%zu)[%zu] differs from topK(%zu)[%zu]",
                    Which, K, I, K + M, I);
      Out.push_back({"admission-topk-nesting", Detail});
      return;
    }
  }
}

} // namespace

FuzzReport rap::runAdmissionFuzzEpisode(const FuzzEpisode &Episode,
                                        uint64_t NumEvents,
                                        uint64_t CheckEvery) {
  // Fault hygiene, as in runFuzzEpisode.
  failpoints::disarmAll();
  failpoints::ScopedDisarm Guard;

  // The admission-ON tree runs under the full oracle (which also
  // enforces the deferred-weight error bound); the OFF twin sees the
  // identical raw stream directly.
  DifferentialOracle Oracle(Episode.Config, OracleOptions());
  RapConfig OffConfig = Episode.Config;
  OffConfig.EnableAdmission = false;
  RapTree OffTree(OffConfig);

  StreamFuzzer Stream(Episode.StreamSeed, Episode.Shape,
                      Episode.Config.RangeBits);
  Rng QueryRng(Episode.StreamSeed ^ 0x5bf03635aca1fed5ULL);
  Rng CrossRng(Episode.StreamSeed ^ 0x3c79ac492ba7b653ULL);
  const uint64_t UniverseHi =
      Episode.Config.RangeBits == 0 ? 0
                                    : lowBitMask(Episode.Config.RangeBits);

  FuzzReport Report;
  char Detail[192];
  const RapTree &OffView = OffTree;
  auto CrossCheck = [&]() {
    std::vector<InvariantViolation> &Out = Report.Violations;
    const RapTree &On = Oracle.tree();
    // Conservation, independent of which splits were admitted: both
    // trees saw every event, and estimates conserve total weight.
    if (On.numEvents() != OffTree.numEvents()) {
      std::snprintf(Detail, sizeof(Detail),
                    "admission-on tree saw %" PRIu64
                    " events, admission-off twin %" PRIu64,
                    On.numEvents(), OffTree.numEvents());
      Out.push_back({"admission-conservation", Detail});
    }
    if (On.estimateRange(0, UniverseHi) != On.numEvents()) {
      std::snprintf(Detail, sizeof(Detail),
                    "on tree whole-universe estimate %" PRIu64
                    " != numEvents %" PRIu64,
                    On.estimateRange(0, UniverseHi), On.numEvents());
      Out.push_back({"admission-conservation", Detail});
    }
    if (OffTree.estimateRange(0, UniverseHi) != OffTree.numEvents()) {
      std::snprintf(Detail, sizeof(Detail),
                    "off tree whole-universe estimate %" PRIu64
                    " != numEvents %" PRIu64,
                    OffTree.estimateRange(0, UniverseHi),
                    OffTree.numEvents());
      Out.push_back({"admission-conservation", Detail});
    }
    // Accounting: only the gated tree may deny, and deferred weight
    // exists only alongside denials.
    if (OffTree.numAdmissionDeniedSplits() != 0 ||
        OffTree.admissionDeferredWeight() != 0) {
      std::snprintf(Detail, sizeof(Detail),
                    "admission-off tree recorded %" PRIu64
                    " denials / %" PRIu64 " deferred weight",
                    OffTree.numAdmissionDeniedSplits(),
                    OffTree.admissionDeferredWeight());
      Out.push_back({"admission-accounting", Detail});
    }
    if (On.admissionDeferredWeight() != 0 &&
        On.numAdmissionDeniedSplits() == 0) {
      std::snprintf(Detail, sizeof(Detail),
                    "on tree deferred weight %" PRIu64 " with zero denials",
                    On.admissionDeferredWeight());
      Out.push_back({"admission-accounting", Detail});
    }
    // Both trees' brackets must contain the exact truth for the SAME
    // random ranges (the oracle's own battery draws different ones).
    for (unsigned Q = 0; Q != 16; ++Q) {
      uint64_t Lo = CrossRng.next() & UniverseHi;
      uint64_t Hi = Lo + (CrossRng.next() & (UniverseHi - Lo));
      uint64_t Truth = Oracle.exact().countInRange(Lo, Hi);
      for (const RapTree *T : {&On, &OffView}) {
        RapTree::RangeBounds B = T->estimateRangeBounds(Lo, Hi);
        if (B.Lower > Truth || B.Upper < Truth) {
          std::snprintf(Detail, sizeof(Detail),
                        "%s tree bracket [%" PRIu64 ", %" PRIu64
                        "] misses exact %" PRIu64 " on [%" PRIx64 ", %"
                        PRIx64 "]",
                        T == &On ? "on" : "off", B.Lower, B.Upper, Truth,
                        Lo, Hi);
          Out.push_back({"admission-bracket", Detail});
        }
      }
    }
    checkTopKNesting(On, "on", Out);
    checkTopKNesting(OffTree, "off", Out);
  };
  auto CheckPoint = [&](uint64_t EventsFed) {
    Oracle.checkNow(QueryRng);
    Report.Violations = Oracle.violations();
    for (const RapTree *T : {&Oracle.tree(), &OffView}) {
      std::vector<InvariantViolation> Structural = TreeInvariants::audit(*T);
      Report.Violations.insert(Report.Violations.end(), Structural.begin(),
                               Structural.end());
    }
    CrossCheck();
    Report.EventsFed = EventsFed;
    return Report.Violations.empty();
  };

  for (uint64_t I = 0; I != NumEvents; ++I) {
    StreamEvent Event = Stream.next();
    Oracle.addPoint(Event.X, Event.Weight);
    if (Event.Weight != 0)
      OffTree.addPoint(Event.X, Event.Weight);
    if (CheckEvery != 0 && (I + 1) % CheckEvery == 0 && I + 1 != NumEvents)
      if (!CheckPoint(I + 1))
        return Report;
  }
  CheckPoint(NumEvents);
  return Report;
}

FuzzReport rap::runFenceFuzzEpisode(const FuzzEpisode &Episode,
                                    uint64_t NumEvents, uint64_t CheckEvery) {
  // Fault hygiene, as in runFuzzEpisode.
  failpoints::disarmAll();
  failpoints::ScopedDisarm Guard;

  // The fence-ON tree runs under the full oracle; this runner IS the
  // twin check, so the oracle's built-in fence twin is redundant and
  // disabled. The legacy reference tree models no resource
  // governance, so budgeted regimes drop that cross-check (same rule
  // as runFuzzEpisode).
  OracleOptions Options;
  Options.CrossCheckFence = false;
  if (Episode.Config.effectiveNodeBudget() != 0)
    Options.CrossCheckReference = false;
  DifferentialOracle Oracle(Episode.Config, Options);
  RapConfig OffConfig = Episode.Config;
  OffConfig.EnableRangeFence = false;
  RapTree OffTree(OffConfig);

  StreamFuzzer Stream(Episode.StreamSeed, Episode.Shape,
                      Episode.Config.RangeBits);
  Rng QueryRng(Episode.StreamSeed ^ 0x5bf03635aca1fed5ULL);
  Rng CrossRng(Episode.StreamSeed ^ 0x6a09e667f3bcc909ULL);
  const uint64_t UniverseHi =
      Episode.Config.RangeBits == 0 ? 0
                                    : lowBitMask(Episode.Config.RangeBits);

  FuzzReport Report;
  char Detail[192];
  auto CrossCheck = [&]() {
    std::vector<InvariantViolation> &Out = Report.Violations;
    const RapTree &On = Oracle.tree();
    if (On.numEvents() != OffTree.numEvents() ||
        On.numNodes() != OffTree.numNodes()) {
      std::snprintf(Detail, sizeof(Detail),
                    "fenced tree %" PRIu64 " events / %" PRIu64
                    " nodes, unfenced twin %" PRIu64 " / %" PRIu64,
                    On.numEvents(), On.numNodes(), OffTree.numEvents(),
                    OffTree.numNodes());
      Out.push_back({"fence-equivalence", Detail});
      return; // structurally diverged; range diffs would just cascade
    }
    for (unsigned Q = 0; Q != 32; ++Q) {
      uint64_t Lo = CrossRng.next() & UniverseHi;
      uint64_t Hi = Lo + (CrossRng.next() & (UniverseHi - Lo));
      uint64_t OnEst = On.estimateRange(Lo, Hi);
      uint64_t OffEst = OffTree.estimateRange(Lo, Hi);
      if (OnEst != OffEst) {
        std::snprintf(Detail, sizeof(Detail),
                      "[%" PRIx64 ", %" PRIx64 "] fenced estimate %" PRIu64
                      " != unfenced %" PRIu64,
                      Lo, Hi, OnEst, OffEst);
        Out.push_back({"fence-equivalence", Detail});
      }
      RapTree::RangeBounds OnB = On.estimateRangeBounds(Lo, Hi);
      RapTree::RangeBounds OffB = OffTree.estimateRangeBounds(Lo, Hi);
      if (OnB.Lower != OffB.Lower || OnB.Upper != OffB.Upper) {
        std::snprintf(Detail, sizeof(Detail),
                      "[%" PRIx64 ", %" PRIx64 "] fenced bracket [%" PRIu64
                      ", %" PRIu64 "] != unfenced [%" PRIu64 ", %" PRIu64 "]",
                      Lo, Hi, OnB.Lower, OnB.Upper, OffB.Lower, OffB.Upper);
        Out.push_back({"fence-equivalence", Detail});
      }
      // Soundness, checked against the tree that never consults the
      // fence: provably cold must mean literally zero retained weight.
      if (On.rangeProvablyCold(Lo, Hi) && OffEst != 0) {
        std::snprintf(Detail, sizeof(Detail),
                      "[%" PRIx64 ", %" PRIx64 "] provably cold but the "
                      "unfenced walk retains %" PRIu64,
                      Lo, Hi, OffEst);
        Out.push_back({"fence-soundness", Detail});
      }
    }
    // topK below, at, and above the warm-node prune threshold, so both
    // the pruned and full-walk regimes are compared.
    for (size_t K : {size_t(1), size_t(5),
                     static_cast<size_t>(On.numNodes()) + 3}) {
      std::vector<TopKRange> OnTop = On.topK(K);
      std::vector<TopKRange> OffTop = OffTree.topK(K);
      if (OnTop.size() != OffTop.size()) {
        std::snprintf(Detail, sizeof(Detail),
                      "topK(%zu): fenced returned %zu entries, unfenced %zu",
                      K, OnTop.size(), OffTop.size());
        Out.push_back({"fence-equivalence", Detail});
        continue;
      }
      for (size_t I = 0; I != OnTop.size(); ++I) {
        const TopKRange &A = OnTop[I], &B = OffTop[I];
        if (A.Lo != B.Lo || A.Hi != B.Hi || A.WidthBits != B.WidthBits ||
            A.Retained != B.Retained || A.LowerWeight != B.LowerWeight ||
            A.UpperWeight != B.UpperWeight) {
          std::snprintf(Detail, sizeof(Detail),
                        "topK(%zu)[%zu] differs between fenced and "
                        "unfenced trees",
                        K, I);
          Out.push_back({"fence-equivalence", Detail});
          break;
        }
      }
    }
  };
  const RapTree &OffView = OffTree;
  auto CheckPoint = [&](uint64_t EventsFed) {
    Oracle.checkNow(QueryRng);
    Report.Violations = Oracle.violations();
    for (const RapTree *T : {&Oracle.tree(), &OffView}) {
      std::vector<InvariantViolation> Structural = TreeInvariants::audit(*T);
      Report.Violations.insert(Report.Violations.end(), Structural.begin(),
                               Structural.end());
    }
    CrossCheck();
    Report.EventsFed = EventsFed;
    return Report.Violations.empty();
  };

  for (uint64_t I = 0; I != NumEvents; ++I) {
    StreamEvent Event = Stream.next();
    Oracle.addPoint(Event.X, Event.Weight);
    if (Event.Weight != 0)
      OffTree.addPoint(Event.X, Event.Weight);
    if (CheckEvery != 0 && (I + 1) % CheckEvery == 0 && I + 1 != NumEvents)
      if (!CheckPoint(I + 1))
        return Report;
  }
  CheckPoint(NumEvents);
  return Report;
}

namespace {

/// The seed thread \p T's sub-stream draws from. Pure function of the
/// episode stream seed, so the concurrent ingest pass and the
/// sequential oracle replay generate bit-identical streams.
uint64_t shardedThreadSeed(uint64_t StreamSeed, unsigned T) {
  return SplitMix64(StreamSeed ^ (0xbf58476d1ce4e5b9ULL * (T + 1))).next();
}

} // namespace

FuzzReport rap::runShardedFuzzEpisode(const FuzzEpisode &Episode,
                                      uint64_t NumEvents) {
  FuzzReport Report;
  Report.EventsFed = NumEvents;
  const unsigned NumThreads = Episode.ShardThreads == 0
                                  ? 2
                                  : Episode.ShardThreads;
  auto EventsFor = [&](unsigned T) {
    return NumEvents / NumThreads + (T == 0 ? NumEvents % NumThreads : 0);
  };

  // Concurrent pass: every thread ingests its own deterministic
  // sub-stream; watermark-triggered combines race the ingest.
  ShardedRapSession Session(Episode.Config, Episode.SessionShards,
                            Episode.ShardCombineEvery);
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&, T]() {
        StreamFuzzer Stream(shardedThreadSeed(Episode.StreamSeed, T),
                            Episode.Shape, Episode.Config.RangeBits);
        for (uint64_t I = 0, N = EventsFor(T); I != N; ++I) {
          StreamEvent Event = Stream.next();
          Session.ingest(Event.X, Event.Weight);
        }
      });
    for (std::thread &Th : Threads)
      Th.join();
  }
  Session.combineNow();

  // Sequential replay of the identical sub-streams into the exact
  // oracle. Total weight saturates exactly like the tree's counter.
  ExactProfiler Exact;
  uint64_t Total = 0;
  for (unsigned T = 0; T < NumThreads; ++T) {
    StreamFuzzer Stream(shardedThreadSeed(Episode.StreamSeed, T),
                        Episode.Shape, Episode.Config.RangeBits);
    for (uint64_t I = 0, N = EventsFor(T); I != N; ++I) {
      StreamEvent Event = Stream.next();
      if (Event.Weight != 0)
        Exact.addPoint(Event.X, Event.Weight);
      Total = saturatingAdd(Total, Event.Weight);
    }
  }

  char Detail[160];
  // Conservation: no interleaving may lose or duplicate weight.
  if (Session.totalEvents() != Total) {
    std::snprintf(Detail, sizeof(Detail),
                  "sharded totalEvents %" PRIu64 " != sequential total %"
                  PRIu64, Session.totalEvents(), Total);
    Report.Violations.push_back({"sharded-conservation", Detail});
  }
  const uint64_t UniverseHi =
      Episode.Config.RangeBits == 0 ? 0
                                    : lowBitMask(Episode.Config.RangeBits);
  if (Session.combinedEstimate(0, UniverseHi) != Session.totalEvents()) {
    std::snprintf(Detail, sizeof(Detail),
                  "whole-universe estimate %" PRIu64 " != totalEvents %"
                  PRIu64, Session.combinedEstimate(0, UniverseHi),
                  Session.totalEvents());
    Report.Violations.push_back({"sharded-conservation", Detail});
  }

  // Range checks that hold for EVERY interleaving and merge schedule
  // (the statistical eps-accuracy model is the single-threaded fuzz
  // legs' job; its slack terms depend on the merge history, which
  // sharded combining multiplies): a duplicated shard delta breaks
  // the lower bound, a lost or torn one breaks conservation above or
  // the bracket upper below.
  Rng QueryRng(Episode.StreamSeed ^ 0x27d4eb2f165667c5ULL);
  for (unsigned Q = 0; Q != 32; ++Q) {
    uint64_t Lo = QueryRng.next() & UniverseHi;
    uint64_t Hi = Lo + (QueryRng.next() & (UniverseHi - Lo));
    uint64_t ExactCount = Exact.countInRange(Lo, Hi);
    uint64_t Estimate = Session.combinedEstimate(Lo, Hi);
    if (Estimate > ExactCount) {
      std::snprintf(Detail, sizeof(Detail),
                    "[%" PRIx64 ", %" PRIx64 "] estimate %" PRIu64
                    " exceeds exact %" PRIu64,
                    Lo, Hi, Estimate, ExactCount);
      Report.Violations.push_back({"sharded-overcount", Detail});
    }
    RapTree::RangeBounds Bounds = Session.combinedEstimateBounds(Lo, Hi);
    if (Bounds.Lower != Estimate) {
      std::snprintf(Detail, sizeof(Detail),
                    "[%" PRIx64 ", %" PRIx64 "] bracket lower %" PRIu64
                    " disagrees with estimate %" PRIu64,
                    Lo, Hi, Bounds.Lower, Estimate);
      Report.Violations.push_back({"sharded-bracket", Detail});
    }
    if (Bounds.Lower > ExactCount || Bounds.Upper < ExactCount) {
      std::snprintf(Detail, sizeof(Detail),
                    "[%" PRIx64 ", %" PRIx64 "] bracket [%" PRIu64 ", %"
                    PRIu64 "] misses exact %" PRIu64,
                    Lo, Hi, Bounds.Lower, Bounds.Upper, ExactCount);
      Report.Violations.push_back({"sharded-bracket", Detail});
    }
  }
  return Report;
}

uint64_t rap::minimizeFailure(const FuzzEpisode &Episode,
                              uint64_t FailingEvents) {
  // Fence and admission episodes carry their twin cross-checks in
  // their runners, so minimization must replay through the same
  // runner that found the failure.
  auto FailsAt = [&](uint64_t N) {
    FuzzReport R =
        Episode.FenceTwin ? runFenceFuzzEpisode(Episode, N, /*CheckEvery=*/0)
        : Episode.Config.EnableAdmission
            ? runAdmissionFuzzEpisode(Episode, N, /*CheckEvery=*/0)
            : runFuzzEpisode(Episode, N, /*CheckEvery=*/0);
    return !R.ok();
  };
  if (!FailsAt(FailingEvents))
    return FailingEvents;
  uint64_t Lo = 1, Hi = FailingEvents;
  while (Lo < Hi) {
    uint64_t Mid = Lo + (Hi - Lo) / 2;
    if (FailsAt(Mid))
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Hi;
}
