//===- verify/DifferentialOracle.h - RAP vs exact oracle ------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential checking of the paper's accuracy guarantees: an
/// identical stream is fed to the RAP tree under test, to the exact
/// offline profiler (ground truth, Sec 4.3), and to a flat fixed-range
/// profiler whose bucket-aligned counts are themselves exact — a second
/// independent oracle that cross-validates the first. checkNow() then
/// asserts, for exhaustive grid-aligned ranges and for randomly drawn
/// arbitrary ranges:
///
///   - estimates never exceed the truth (lower-bound property),
///   - grid-aligned under-estimates stay within the provable error
///     bound — eps * n of Sec 2.2, times the q/(q-1) merge-fold factor
///     when batched merging is enabled, plus the documented
///     weighted-event slack (docs/VERIFICATION.md),
///   - [lower, upper] brackets from estimateRangeBounds contain the
///     truth,
///   - every reported hot range is truly hot (precision), and every
///     value heavier than (phi + eps) * n is covered by some reported
///     hot range (recall) — Sec 4.1/4.3,
///   - topK reports are score-ordered, k-nested (topK(k) is a prefix
///     of topK(k+m)), bracketed by the truth, and cover every value
///     whose true count clears the k-th score plus the error budget.
///
/// All checks report violations instead of asserting, so they run in
/// NDEBUG builds and compose with the fuzz driver's seed minimization.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_VERIFY_DIFFERENTIALORACLE_H
#define RAP_VERIFY_DIFFERENTIALORACLE_H

#include "baselines/ExactProfiler.h"
#include "baselines/FlatRangeProfiler.h"
#include "core/StageZeroBuffer.h"
#include "support/Rng.h"
#include "verify/ReferenceRapTree.h"
#include "verify/TreeInvariants.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rap {

/// Knobs for the oracle's query battery.
struct OracleOptions {
  /// Budget of exhaustively enumerated grid-aligned ranges per check
  /// (widest levels first; a level that no longer fits is sampled).
  uint64_t AlignedQueryBudget = 2048;

  /// Randomly drawn arbitrary (unaligned) ranges per check.
  unsigned RandomQueries = 64;

  /// Hotness fractions to cross-check hot-range extraction at.
  std::vector<double> HotPhis = {0.01, 0.05, 0.20};

  /// log2 of the flat cross-check profiler's bucket count (clipped to
  /// the universe). Flat bucket counts are exact at this granularity.
  unsigned FlatBucketBits = 10;

  /// Extra multiplier on the error budget. The budget already includes
  /// the provable merge-fold slack — eps * n with merges disabled,
  /// eps * n * q/(q-1) with merges enabled (docs/VERIFICATION.md) —
  /// so 1.0 enforces the provable bound; tests inject tighter or
  /// looser budgets through this knob.
  double ErrorBoundFactor = 1.0;

  /// Nonzero routes the tree-side stream through a StageZeroBuffer of
  /// this capacity (software stage-0 combining, Sec 3.3): the tree and
  /// the reference tree see coalesced (event, weight) pairs at drain
  /// points while the exact/flat oracles keep seeing the raw stream —
  /// so every accuracy check also validates the combining path.
  /// checkNow() flushes pending events first.
  uint64_t CombineCapacity = 0;

  /// Cross-check the arena tree structurally against the preserved
  /// legacy implementation (ReferenceRapTree) fed the identical
  /// (combined) stream. Preorder (lo, width, count) identity implies
  /// identical estimates, brackets and hot ranges, which is the
  /// arena-vs-legacy equivalence guarantee.
  bool CrossCheckReference = true;

  /// Maintain a twin RapTree with EnableRangeFence flipped, fed the
  /// identical (combined) stream, and require every estimate, bracket
  /// and topK report to match the audited tree bit for bit. The fence
  /// is advertised as pure query acceleration; this is the invariant
  /// that backs the claim. Unlike the reference cross-check it stays
  /// valid under budgets and admission (the fence consumes no
  /// randomness and never changes tree structure).
  bool CrossCheckFence = true;
};

/// Feeds one stream to all three profilers and checks them against
/// each other.
class DifferentialOracle {
public:
  explicit DifferentialOracle(const RapConfig &Config,
                              OracleOptions Options = {});

  /// Feeds \p Weight occurrences of \p X to the tree (through the
  /// online transition auditor), the exact profiler, and the flat
  /// profiler. With CombineCapacity set, the tree side is held back in
  /// the combining buffer until a window fills or checkNow() runs.
  void addPoint(uint64_t X, uint64_t Weight = 1);

  /// Runs the whole query battery now (flushing the combining buffer
  /// first), drawing random queries from \p QueryRng. Violations
  /// accumulate across calls.
  void checkNow(Rng &QueryRng);

  /// All violations found so far: differential failures plus anything
  /// the online transition auditor caught during feeding.
  std::vector<InvariantViolation> violations() const;

  /// The audited tree.
  const RapTree &tree() const { return Tree; }

  /// Ground truth profiler (for tests that want to poke at it).
  const ExactProfiler &exact() const { return Exact; }

  /// The eps * n error budget currently enforced, including the
  /// weighted-event slack.
  double errorBudget() const;

  /// The legacy cross-check tree, or null when CrossCheckReference is
  /// off.
  const ReferenceRapTree *reference() const { return Reference.get(); }

  /// The fence-flipped twin tree, or null when CrossCheckFence is
  /// off.
  const RapTree *fenceTwin() const { return FenceTwin.get(); }

private:
  void checkRange(uint64_t Lo, uint64_t Hi, bool GridAligned);
  void checkHotRanges(double Phi);
  void checkTopK();
  void checkReference();

  /// Hands one (possibly combined) pair to the audited tree and the
  /// reference tree.
  void deliverPoint(uint64_t X, uint64_t Weight);

  /// Drains any pending combined pairs into the trees.
  void flushCombiner();

  RapConfig Config;
  OracleOptions Options;
  RapTree Tree;
  OnlineAuditor Auditor;
  ExactProfiler Exact;
  FlatRangeProfiler Flat;
  std::unique_ptr<ReferenceRapTree> Reference;
  std::unique_ptr<RapTree> FenceTwin;
  std::unique_ptr<StageZeroBuffer> Combiner;
  uint64_t MaxWeight = 1;
  std::vector<InvariantViolation> Violations;
};

} // namespace rap

#endif // RAP_VERIFY_DIFFERENTIALORACLE_H
