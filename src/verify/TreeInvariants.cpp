//===- verify/TreeInvariants.cpp - Structural + online auditors ----------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/TreeInvariants.h"

#include "core/WorstCaseBounds.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace rap;

namespace {

/// Collects a violation with printf-style context.
class Report {
public:
  explicit Report(std::vector<InvariantViolation> &Sink) : Out(Sink) {}

  [[gnu::format(printf, 3, 4)]] void fail(const char *Invariant,
                                          const char *Format, ...) {
    char Buffer[256];
    va_list Args;
    va_start(Args, Format);
    std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
    va_end(Args);
    Out.push_back({Invariant, Buffer});
  }

private:
  std::vector<InvariantViolation> &Out;
};

/// Expected child width under \p ParentWidth (the floor of zero makes
/// the last level absorb a RangeBits not divisible by log2(b)).
unsigned childWidthBits(unsigned ParentWidth, unsigned BitsPerLevel) {
  return ParentWidth > BitsPerLevel ? ParentWidth - BitsPerLevel : 0;
}

struct WalkStats {
  uint64_t Nodes = 0;
  uint64_t Weight = 0;
};

/// Recursive structural walk of a live tree.
void walk(const RapNode &Node, const RapConfig &Config, Report &R,
          WalkStats &Stats) {
  ++Stats.Nodes;
  Stats.Weight = saturatingAdd(Stats.Weight, Node.count());

  uint64_t Width = Node.widthBits() >= 64
                       ? 0
                       : (uint64_t(1) << Node.widthBits());
  if (Node.widthBits() > Config.RangeBits)
    R.fail("range-alignment", "node [%" PRIx64 "] wider (%u bits) than the "
           "universe (%u bits)",
           Node.lo(), Node.widthBits(), Config.RangeBits);
  else if (Width != 0 && Node.lo() != alignDown(Node.lo(), Width))
    R.fail("range-alignment",
           "node lo %" PRIx64 " not aligned to its %u-bit width", Node.lo(),
           Node.widthBits());

  if (!Node.hasChildren())
    return;

  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned ChildBits = childWidthBits(Node.widthBits(), BitsPerLevel);
  unsigned ExpectedSlots = 1u << (Node.widthBits() - ChildBits);
  if (Node.numChildSlots() != ExpectedSlots)
    R.fail("child-geometry",
           "node [%" PRIx64 ", width %u] has %u child slots, expected %u",
           Node.lo(), Node.widthBits(), Node.numChildSlots(), ExpectedSlots);

  bool AnyChild = false;
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot) {
    const RapNode *Child = Node.child(Slot);
    if (!Child)
      continue;
    AnyChild = true;
    // Children exactly partition the parent: slot S covers
    // [parent.lo + S * 2^childBits, ...] at exactly childBits width.
    uint64_t ExpectedLo =
        Node.lo() + (static_cast<uint64_t>(Slot) << ChildBits);
    if (Child->widthBits() != ChildBits)
      R.fail("child-geometry",
             "child [%" PRIx64 "] width %u inconsistent with branching "
             "factor (expected %u)",
             Child->lo(), Child->widthBits(), ChildBits);
    else if (Child->lo() != ExpectedLo)
      R.fail("child-geometry",
             "child in slot %u has lo %" PRIx64 ", expected %" PRIx64, Slot,
             Child->lo(), ExpectedLo);
    walk(*Child, Config, R, Stats);
  }
  if (!AnyChild)
    R.fail("child-geometry",
           "node [%" PRIx64 "] keeps an empty child array (all slots "
           "merged away must clear it)",
           Node.lo());
}

} // namespace

std::vector<InvariantViolation> TreeInvariants::audit(const RapTree &Tree) {
  std::vector<InvariantViolation> Violations;
  Report R(Violations);
  const RapConfig &Config = Tree.config();

  // Root covers the whole configured universe.
  if (Tree.root().lo() != 0 || Tree.root().widthBits() != Config.RangeBits)
    R.fail("root-universe",
           "root covers [%" PRIx64 ", width %u], expected [0, width %u]",
           Tree.root().lo(), Tree.root().widthBits(), Config.RangeBits);

  WalkStats Stats;
  walk(Tree.root(), Config, R, Stats);

  // Conservation: every unit of stream weight is on exactly one
  // counter (weights saturate at 2^64-1, as does numEvents).
  uint64_t SubtreeWeight = Tree.root().subtreeWeight();
  if (SubtreeWeight != Tree.numEvents())
    R.fail("conservation",
           "tree holds %" PRIu64 " weight but %" PRIu64 " events were fed",
           SubtreeWeight, Tree.numEvents());
  uint64_t WholeUniverse =
      Tree.estimateRange(0, Config.RangeBits == 0
                                ? 0
                                : lowBitMask(Config.RangeBits));
  if (WholeUniverse != Tree.numEvents())
    R.fail("conservation",
           "whole-universe estimate %" PRIu64 " != %" PRIu64 " events",
           WholeUniverse, Tree.numEvents());

  // Node accounting matches the real structure.
  if (Stats.Nodes != Tree.numNodes())
    R.fail("node-accounting", "numNodes() says %" PRIu64 " but tree has "
           "%" PRIu64 " nodes",
           Tree.numNodes(), Stats.Nodes);
  if (Tree.maxNumNodes() < Tree.numNodes())
    R.fail("node-accounting",
           "maxNumNodes() %" PRIu64 " below current numNodes() %" PRIu64,
           Tree.maxNumNodes(), Tree.numNodes());

  // Resource governance: a configured node budget is a hard cap after
  // every public operation (updates, absorb, restore), and the tree
  // must report the cap its config implies.
  uint64_t Budget = Config.effectiveNodeBudget();
  if (Budget != 0 && Tree.numNodes() > Budget)
    R.fail("node-budget",
           "%" PRIu64 " nodes exceed the configured budget %" PRIu64,
           Tree.numNodes(), Budget);
  if (Tree.nodeBudget() != Budget)
    R.fail("node-budget",
           "tree reports budget %" PRIu64 " but the config implies %" PRIu64,
           Tree.nodeBudget(), Budget);

  // Merge schedule: with batched merging enabled the next merge is
  // always strictly in the future after an update returns.
  if (Config.EnableMerges && Tree.numEvents() > 0 &&
      Tree.nextMergeAt() <= Tree.numEvents())
    R.fail("merge-schedule",
           "nextMergeAt %" PRIu64 " not past the stream position %" PRIu64,
           Tree.nextMergeAt(), Tree.numEvents());

  // Worst-case node bound (Sec 3.1 / Fig 3): post-merge bound plus the
  // splits possible since the last merge. Only meaningful under the
  // paper's regime: proportional split threshold and merges at least
  // as aggressive as the split threshold.
  if (Config.EnableMerges && Config.FixedSplitThreshold == 0.0 &&
      Config.MergeThresholdScale >= 1.0 && Config.RangeBits >= 1 &&
      Tree.numEvents() > 0) {
    WorstCaseBounds Bounds(Config.RangeBits, Config.BranchFactor,
                           Config.Epsilon);
    uint64_t LastMerge = Tree.mergeEventCounts().empty()
                             ? 1
                             : std::max<uint64_t>(
                                   1, Tree.mergeEventCounts().back());
    double Limit = Bounds.boundAt(Tree.numEvents(), LastMerge) + 1.0;
    if (static_cast<double>(Tree.numNodes()) > Limit)
      R.fail("node-bound",
             "%" PRIu64 " nodes exceed the analytic bound %.1f at "
             "n=%" PRIu64 " (last merge at %" PRIu64 ")",
             Tree.numNodes(), Limit, Tree.numEvents(), LastMerge);
  }

  return Violations;
}

std::vector<InvariantViolation> TreeInvariants::auditNodeSet(
    const RapConfig &Config,
    std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> Nodes,
    uint64_t NumEvents) {
  std::vector<InvariantViolation> Violations;
  Report R(Violations);

  std::string ConfigError;
  if (!Config.validate(&ConfigError)) {
    R.fail("config", "invalid configuration: %s", ConfigError.c_str());
    return Violations;
  }
  if (Nodes.empty()) {
    R.fail("root-universe", "node set is empty (the root is mandatory)");
    return Violations;
  }

  // Preorder of a trie == sorted by (lo ascending, width descending),
  // so arbitrary input order (e.g. the engine's sorted TCAM snapshot)
  // is normalized first.
  std::sort(Nodes.begin(), Nodes.end(), [](const auto &A, const auto &B) {
    if (std::get<0>(A) != std::get<0>(B))
      return std::get<0>(A) < std::get<0>(B);
    return std::get<1>(A) > std::get<1>(B);
  });

  auto HiOf = [](uint64_t Lo, uint8_t WidthBits) {
    return WidthBits >= 64 ? ~uint64_t(0)
                           : Lo + ((uint64_t(1) << WidthBits) - 1);
  };

  if (std::get<0>(Nodes[0]) != 0 ||
      std::get<1>(Nodes[0]) != Config.RangeBits) {
    R.fail("root-universe",
           "first node [%" PRIx64 ", width %u] is not the universe root "
           "(width %u)",
           std::get<0>(Nodes[0]),
           static_cast<unsigned>(std::get<1>(Nodes[0])), Config.RangeBits);
    return Violations;
  }

  unsigned BitsPerLevel = Config.bitsPerLevel();
  uint64_t TotalCount = std::get<2>(Nodes[0]);
  // Ancestor stack of (lo, widthBits) — the same maintained-path scheme
  // RapTree::fromNodeSet uses, but collecting every defect.
  std::vector<std::pair<uint64_t, uint8_t>> Path = {
      {std::get<0>(Nodes[0]), std::get<1>(Nodes[0])}};

  for (size_t I = 1; I < Nodes.size(); ++I) {
    auto [Lo, WidthBits, Count] = Nodes[I];
    TotalCount = saturatingAdd(TotalCount, Count);

    if (WidthBits >= Config.RangeBits) {
      R.fail("child-geometry",
             "non-root node [%" PRIx64 "] as wide as the universe", Lo);
      continue;
    }
    uint64_t Width = uint64_t(1) << WidthBits;
    if (Lo != alignDown(Lo, Width)) {
      R.fail("range-alignment",
             "node lo %" PRIx64 " not aligned to its %u-bit width", Lo,
             static_cast<unsigned>(WidthBits));
      continue;
    }
    uint64_t Hi = HiOf(Lo, WidthBits);
    while (!Path.empty() && !(Path.back().first <= Lo &&
                              Hi <= HiOf(Path.back().first,
                                         Path.back().second)))
      Path.pop_back();
    if (Path.empty()) {
      R.fail("child-geometry",
             "node [%" PRIx64 ", width %u] not contained in any ancestor",
             Lo, static_cast<unsigned>(WidthBits));
      Path.push_back({std::get<0>(Nodes[0]), std::get<1>(Nodes[0])});
      continue;
    }
    auto [ParentLo, ParentWidth] = Path.back();
    if (ParentLo == Lo && ParentWidth == WidthBits) {
      R.fail("child-geometry", "duplicate node [%" PRIx64 ", width %u]", Lo,
             static_cast<unsigned>(WidthBits));
      continue;
    }
    unsigned Expected = childWidthBits(ParentWidth, BitsPerLevel);
    if (WidthBits != Expected) {
      R.fail("child-geometry",
             "node [%" PRIx64 "] width %u under a width-%u parent must be "
             "%u (branch factor %u)",
             Lo, static_cast<unsigned>(WidthBits),
             static_cast<unsigned>(ParentWidth), Expected,
             Config.BranchFactor);
      continue;
    }
    Path.push_back({Lo, WidthBits});
  }

  if (TotalCount != NumEvents)
    R.fail("conservation",
           "node counts sum to %" PRIu64 " but %" PRIu64 " events were fed",
           TotalCount, NumEvents);

  return Violations;
}

std::string
TreeInvariants::render(const std::vector<InvariantViolation> &Vs) {
  std::string Out;
  for (const InvariantViolation &V : Vs) {
    Out += "[";
    Out += V.Invariant;
    Out += "] ";
    Out += V.Detail;
    Out += "\n";
  }
  return Out;
}

void OnlineAuditor::addPoint(uint64_t X, uint64_t Weight) {
  Report R(Violations);
  const RapConfig &Config = Tree.config();

  const RapNode &Before = Tree.findSmallestCover(X);
  const uint64_t CountBefore = Before.count();
  const unsigned WidthBefore = Before.widthBits();
  const bool Unit = Before.isUnitRange();
  const uint64_t EventsBefore = Tree.numEvents();
  const uint64_t SplitsBefore = Tree.numSplits();
  const uint64_t MergesBefore = Tree.numMergePasses();
  const uint64_t NextMergeBefore = Tree.nextMergeAt();
  const uint64_t RefusedBefore = Tree.numRefusedSplits();
  const uint64_t ForcedBefore = Tree.forcedMergePasses();
  const uint64_t DeniedBefore = Tree.numAdmissionDeniedSplits();
  const uint64_t DeferredBefore = Tree.admissionDeferredWeight();

  Tree.addPoint(X, Weight);

  // Pressure accounting deltas: under a node budget (or an injected
  // allocation failure) the tree may lawfully refuse a due split, and
  // under randomized admission it may lawfully deny one — but it must
  // then say so through the pressure counters.
  const uint64_t RefusedDelta = Tree.numRefusedSplits() - RefusedBefore;
  const uint64_t ForcedDelta = Tree.forcedMergePasses() - ForcedBefore;
  const uint64_t DeniedDelta = Tree.numAdmissionDeniedSplits() - DeniedBefore;
  const uint64_t DeferredDelta =
      Tree.admissionDeferredWeight() - DeferredBefore;

  if (Weight == 0) {
    // Zero-weight events are no-ops by contract.
    if (Tree.numEvents() != EventsBefore ||
        Tree.numSplits() != SplitsBefore ||
        Tree.numMergePasses() != MergesBefore)
      R.fail("zero-weight", "zero-weight event mutated the tree "
             "(x=%" PRIx64 ")", X);
    return;
  }

  // Event accounting (saturating, like the counters).
  const uint64_t EventsAfter = saturatingAdd(EventsBefore, Weight);
  if (Tree.numEvents() != EventsAfter)
    R.fail("event-accounting",
           "numEvents %" PRIu64 " after add, expected %" PRIu64,
           Tree.numEvents(), EventsAfter);

  // Split decision (Sec 2.2): the landing counter must split iff it
  // strictly exceeds eps * n / log(R) — evaluated, exactly as the
  // update rule does, at the post-update stream position.
  const uint64_t CountAfter = saturatingAdd(CountBefore, Weight);
  const bool MustSplit =
      !Unit &&
      static_cast<double>(CountAfter) > Config.splitThreshold(EventsAfter);
  const uint64_t SplitDelta = Tree.numSplits() - SplitsBefore;
  // A due split either happens, is refused-and-accounted (pressure),
  // or is denied-and-accounted (admission); a refusal or denial with
  // no due split would be bookkeeping gone wrong.
  const uint64_t ExpectedSplits =
      (MustSplit && RefusedDelta == 0 && DeniedDelta == 0) ? 1u : 0u;
  if (SplitDelta != ExpectedSplits)
    R.fail("split-threshold",
           "counter %" PRIu64 " vs threshold %.6f at n=%" PRIu64
           " (width %u): expected %s, saw %" PRIu64 " split(s)",
           CountAfter, Config.splitThreshold(EventsAfter), EventsAfter,
           WidthBefore, ExpectedSplits ? "a split" : "no split", SplitDelta);
  if (RefusedDelta != 0 && !MustSplit)
    R.fail("split-threshold",
           "split refused (x=%" PRIx64 ") though no split was due", X);
  if (RefusedDelta == 0 && ForcedDelta != 0 && SplitDelta == 0)
    R.fail("split-threshold",
           "forced coarsening ran (x=%" PRIx64 ") but the due split "
           "neither happened nor was refused",
           X);

  // Admission accounting: at most one decision per update; a denial
  // only on a due split with admission enabled, charged at exactly the
  // event's weight (saturating); a granted draw leaves both counters
  // untouched.
  if (DeniedDelta > 1)
    R.fail("admission-accounting",
           "%" PRIu64 " admission denials in one update (x=%" PRIx64 ")",
           DeniedDelta, X);
  if (DeniedDelta != 0 && (!Config.EnableAdmission || !MustSplit))
    R.fail("admission-accounting",
           "admission denied (x=%" PRIx64 ") though %s", X,
           Config.EnableAdmission ? "no split was due"
                                  : "admission is disabled");
  if (DeniedDelta != 0 && SplitDelta != 0)
    R.fail("admission-accounting",
           "update both denied admission and split (x=%" PRIx64 ")", X);
  const uint64_t ExpectedDeferred =
      DeniedDelta == 0 ? 0
                       : saturatingAdd(DeferredBefore, Weight) -
                             DeferredBefore;
  if (DeferredDelta != ExpectedDeferred)
    R.fail("admission-accounting",
           "deferred weight moved by %" PRIu64 ", expected %" PRIu64
           " (x=%" PRIx64 ")",
           DeferredDelta, ExpectedDeferred, X);

  // Merge schedule (Sec 3.1): one batched merge pass exactly when the
  // stream crosses the scheduled position, none otherwise, and the
  // next position moves strictly past the stream.
  const bool MustMerge =
      Config.EnableMerges && EventsAfter >= NextMergeBefore;
  const uint64_t MergeDelta = Tree.numMergePasses() - MergesBefore;
  if (MergeDelta != (MustMerge ? 1u : 0u))
    R.fail("merge-schedule",
           "n=%" PRIu64 " vs scheduled merge at %" PRIu64
           ": expected %s, saw %" PRIu64 " pass(es)",
           EventsAfter, NextMergeBefore, MustMerge ? "a merge" : "no merge",
           MergeDelta);
  if (Config.EnableMerges && Tree.nextMergeAt() <= Tree.numEvents())
    R.fail("merge-schedule",
           "nextMergeAt %" PRIu64 " not past stream position %" PRIu64,
           Tree.nextMergeAt(), Tree.numEvents());
  if (MustMerge && MergeDelta == 1 && NextMergeBefore > 1 &&
      Config.MergeRatio > 1.0) {
    // The schedule grows by at least the configured ratio (or snaps to
    // just past the stream, whichever is later).
    uint64_t Scheduled = static_cast<uint64_t>(
        std::max(1.0, static_cast<double>(NextMergeBefore) *
                          Config.MergeRatio * 0.999));
    if (Tree.nextMergeAt() < std::min(Scheduled, EventsAfter + 1))
      R.fail("merge-schedule",
             "next merge %" PRIu64 " grew less than ratio q=%.3f from "
             "%" PRIu64,
             Tree.nextMergeAt(), Config.MergeRatio, NextMergeBefore);
  }

  // A split must refine the landing range when nothing merged it away
  // in the same update. A forced coarsening pass can fold the landing
  // node into an ancestor first, so the post-split cover may land at
  // the pre-update width; skip the refinement claim in that case.
  if (MustSplit && SplitDelta == 1 && MergeDelta == 0 && ForcedDelta == 0) {
    const RapNode &After = Tree.findSmallestCover(X);
    if (After.widthBits() >= WidthBefore)
      R.fail("split-threshold",
             "split did not refine the landing range (width %u -> %u)",
             WidthBefore, After.widthBits());
  }
}
