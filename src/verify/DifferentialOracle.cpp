//===- verify/DifferentialOracle.cpp - RAP vs exact oracle ---------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "verify/DifferentialOracle.h"

#include "support/BitUtils.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace rap;

namespace {

/// Bucket count for the flat cross-check profiler: 2^FlatBucketBits
/// clipped to the universe (and at least one bucket).
uint64_t flatBuckets(const RapConfig &Config, unsigned FlatBucketBits) {
  unsigned Bits = std::min(FlatBucketBits, std::max(Config.RangeBits, 1u));
  return uint64_t(1) << Bits;
}

[[gnu::format(printf, 3, 4)]] void
fail(std::vector<InvariantViolation> &Out, const char *Invariant,
     const char *Format, ...) {
  char Buffer[256];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buffer, sizeof(Buffer), Format, Args);
  va_end(Args);
  Out.push_back({Invariant, Buffer});
}

} // namespace

DifferentialOracle::DifferentialOracle(const RapConfig &TreeConfig,
                                       OracleOptions Opts)
    : Config(TreeConfig), Options(Opts), Tree(TreeConfig), Auditor(Tree),
      Flat(std::max(TreeConfig.RangeBits, 1u),
           flatBuckets(TreeConfig, Opts.FlatBucketBits)) {
  // The preserved legacy tree models neither resource governance nor
  // randomized admission: under a node budget or an admission gate the
  // arena tree lawfully diverges from it, so the structural
  // cross-check is meaningless and is forced off.
  if (Config.effectiveNodeBudget() != 0 || Config.EnableAdmission)
    Options.CrossCheckReference = false;
  if (Options.CrossCheckReference)
    Reference = std::make_unique<ReferenceRapTree>(TreeConfig);
  if (Options.CrossCheckFence) {
    RapConfig TwinConfig = TreeConfig;
    TwinConfig.EnableRangeFence = !TreeConfig.EnableRangeFence;
    FenceTwin = std::make_unique<RapTree>(TwinConfig);
  }
  if (Options.CombineCapacity != 0)
    Combiner = std::make_unique<StageZeroBuffer>(Options.CombineCapacity);
}

void DifferentialOracle::deliverPoint(uint64_t X, uint64_t Weight) {
  Auditor.addPoint(X, Weight);
  if (Reference)
    Reference->addPoint(X, Weight);
  if (FenceTwin)
    FenceTwin->addPoint(X, Weight);
  if (Weight != 0)
    MaxWeight = std::max(MaxWeight, Weight);
}

void DifferentialOracle::flushCombiner() {
  if (!Combiner || Combiner->size() == 0)
    return;
  for (const auto &[Event, Weight] : Combiner->drain())
    deliverPoint(Event, Weight);
}

void DifferentialOracle::addPoint(uint64_t X, uint64_t Weight) {
  // The exact and flat oracles always see the raw stream: combining
  // must not change any truth the tree is checked against.
  if (Weight != 0) {
    Exact.addPoint(X, Weight);
    Flat.addPoint(X, Weight);
  }
  if (!Combiner) {
    deliverPoint(X, Weight);
    return;
  }
  if (Combiner->push(X, Weight))
    flushCombiner();
}

double DifferentialOracle::errorBudget() const {
  double N = static_cast<double>(Tree.numEvents());
  unsigned Depth = std::max(Config.maxDepth(), 1u);
  // The split-only bound is eps * n per ancestor level, plus the
  // arrival that pushes each level over its threshold: the counter is
  // incremented before the split lands and counters never move down,
  // so every level retains one full arrival — up to maxWeight counts —
  // out of the refined profile. It can do so again after every batched
  // merge pass, because a merge that folds a level's children back
  // makes the next (possibly heavy) arrival land on the parent before
  // the re-split. One arrival per level per merge epoch is therefore
  // the honest slack; at tiny n this term (not eps * n) dominates.
  double WeightSlack = static_cast<double>(Depth) *
                       static_cast<double>(MaxWeight) *
                       (1.0 + static_cast<double>(Tree.numMergePasses()));
  // Each batched merge can additionally fold up to one merge-threshold
  // of a leaf's counts into its parent before the leaf regrows. With
  // merge times growing geometrically at ratio q the folds sum to a
  // q/(q-1) factor on the per-level threshold (docs/VERIFICATION.md).
  // q == 1 has no geometric decay; cap its slack instead of dividing
  // by zero.
  double MergeSlack = 1.0;
  if (Config.EnableMerges) {
    double Q = Config.MergeRatio;
    MergeSlack = Q > 1.0 + 1e-9 ? Q / (Q - 1.0) : 16.0;
  }
  // Degraded weight is the documented cost of resource governance:
  // every unit the budgeted tree refused to refine (or folded in a
  // forced pass) may sit one level above where the guarantee wants it,
  // so estimates can additionally miss up to that total. Admission
  // deferred weight is the same kind of charge for splits the
  // randomized gate denied: the closed-form admission bound is simply
  // this extra additive term on top of eps*n*q/(q-1). Both are zero
  // for an unbudgeted, admission-free, failure-free tree.
  return Config.Epsilon * N * MergeSlack * Options.ErrorBoundFactor +
         WeightSlack + static_cast<double>(Tree.degradedWeight()) +
         static_cast<double>(Tree.admissionDeferredWeight()) + 1e-6;
}

void DifferentialOracle::checkRange(uint64_t Lo, uint64_t Hi,
                                    bool GridAligned) {
  uint64_t Truth = Exact.countInRange(Lo, Hi);
  uint64_t Estimate = Tree.estimateRange(Lo, Hi);
  RapTree::RangeBounds Bounds = Tree.estimateRangeBounds(Lo, Hi);

  if (Estimate > Truth)
    fail(Violations, "lower-bound",
         "[%" PRIx64 ", %" PRIx64 "] estimated %" PRIu64
         " above the true %" PRIu64,
         Lo, Hi, Estimate, Truth);
  if (Bounds.Lower != Estimate)
    fail(Violations, "bracket",
         "[%" PRIx64 ", %" PRIx64 "] bracket lower %" PRIu64
         " disagrees with estimateRange %" PRIu64,
         Lo, Hi, Bounds.Lower, Estimate);
  if (Bounds.Upper < Truth)
    fail(Violations, "bracket",
         "[%" PRIx64 ", %" PRIx64 "] bracket upper %" PRIu64
         " below the true %" PRIu64,
         Lo, Hi, Bounds.Upper, Truth);
  // Fence equivalence: the fence-flipped twin saw the same stream, so
  // every estimate and bracket must agree bit for bit — the fence is
  // never allowed to change an answer, only to reach it faster. The
  // flipped tree also validates the incremental bitmap against the
  // rebuilt one (whichever side carries the fence exercises both the
  // first-touch marks and the merge-time rebuilds).
  if (FenceTwin) {
    uint64_t TwinEstimate = FenceTwin->estimateRange(Lo, Hi);
    RapTree::RangeBounds TwinBounds = FenceTwin->estimateRangeBounds(Lo, Hi);
    if (TwinEstimate != Estimate)
      fail(Violations, "fence-equivalence",
           "[%" PRIx64 ", %" PRIx64 "] fenced/unfenced estimates diverge: %"
           PRIu64 " vs %" PRIu64,
           Lo, Hi, Estimate, TwinEstimate);
    if (TwinBounds.Lower != Bounds.Lower || TwinBounds.Upper != Bounds.Upper)
      fail(Violations, "fence-equivalence",
           "[%" PRIx64 ", %" PRIx64 "] fenced/unfenced brackets diverge: [%"
           PRIu64 ", %" PRIu64 "] vs [%" PRIu64 ", %" PRIu64 "]",
           Lo, Hi, Bounds.Lower, Bounds.Upper, TwinBounds.Lower,
           TwinBounds.Upper);
  }

  if (GridAligned && Estimate <= Truth &&
      static_cast<double>(Truth - Estimate) > errorBudget())
    fail(Violations, "eps-bound",
         "[%" PRIx64 ", %" PRIx64 "] under-estimated by %" PRIu64
         " with budget %.3f (n=%" PRIu64 ")",
         Lo, Hi, Truth - Estimate, errorBudget(), Tree.numEvents());

  // Flat cross-oracle: at its own bucket granularity the flat profiler
  // is exact, so it must agree with the exact profiler bit for bit.
  uint64_t BucketLo = Flat.bucketOf(Lo);
  uint64_t BucketHi = Flat.bucketOf(Hi);
  unsigned Shift =
      std::max(Config.RangeBits, 1u) - log2Exact(Flat.numBuckets());
  bool BucketAligned =
      (Shift >= 64 || (Lo == (BucketLo << Shift) &&
                       Hi == ((BucketHi + 1) << Shift) - 1));
  if (BucketAligned) {
    uint64_t FlatCount = 0;
    for (uint64_t B = BucketLo; B <= BucketHi; ++B)
      FlatCount = saturatingAdd(FlatCount, Flat.bucketCount(B));
    if (FlatCount != Truth)
      fail(Violations, "oracle-cross",
           "[%" PRIx64 ", %" PRIx64 "] flat oracle says %" PRIu64
           ", exact oracle says %" PRIu64,
           Lo, Hi, FlatCount, Truth);
  }
}

void DifferentialOracle::checkHotRanges(double Phi) {
  uint64_t N = Tree.numEvents();
  std::vector<HotRange> Hot = Tree.extractHotRanges(Phi);
  double Threshold = Phi * static_cast<double>(N);

  for (const HotRange &H : Hot) {
    // Precision: a reported hot range is guaranteed hot (Sec 4.3). Its
    // exclusive weight is a lower bound on the true range count, so
    // the truth must reach the extraction's own evidence.
    uint64_t Truth = Exact.countInRange(H.Lo, H.Hi);
    if (Truth < H.ExclusiveWeight)
      fail(Violations, "hot-precision",
           "hot [%" PRIx64 ", %" PRIx64 "] claims exclusive %" PRIu64
           " but truly holds %" PRIu64,
           H.Lo, H.Hi, H.ExclusiveWeight, Truth);
    if (static_cast<double>(H.ExclusiveWeight) + 1e-6 < Threshold)
      fail(Violations, "hot-extraction",
           "hot [%" PRIx64 ", %" PRIx64 "] exclusive %" PRIu64
           " below phi*n = %.3f",
           H.Lo, H.Hi, H.ExclusiveWeight, Threshold);
  }

  // Recall: any value whose true count clears phi*n plus the error
  // budget must be covered by some reported range — its smallest cover
  // node retains at least truth - budget on its own counter, which
  // feeds that node's exclusive weight (Sec 4.1).
  double MinHeavy = Threshold + errorBudget() + 1.0;
  uint64_t MinCount = MinHeavy >= 1.8e19
                          ? ~uint64_t(0)
                          : static_cast<uint64_t>(std::ceil(MinHeavy));
  for (const auto &[Value, Count] : Exact.heavyValues(MinCount)) {
    bool Covered = false;
    for (const HotRange &H : Hot)
      if (H.Lo <= Value && Value <= H.Hi) {
        Covered = true;
        break;
      }
    if (!Covered)
      fail(Violations, "hot-recall",
           "value %" PRIx64 " with true count %" PRIu64
           " (>= %.3f) is in no hot range at phi=%.3f",
           Value, Count, MinHeavy, Phi);
  }
}

void DifferentialOracle::checkTopK() {
  const size_t K =
      static_cast<size_t>(std::min<uint64_t>(Tree.numNodes(), 8));
  std::vector<TopKRange> Top = Tree.topK(K);
  std::vector<TopKRange> More = Tree.topK(K + 4);

  // Fence equivalence for reports: both the pruned regime (small K,
  // all winners positive-retained) and the full-walk regime (K past
  // the node count, zero-retained tail included) must be identical to
  // the fence-flipped twin, entry for entry.
  if (FenceTwin) {
    for (size_t QueryK :
         {K, static_cast<size_t>(Tree.numNodes()) + 3}) {
      std::vector<TopKRange> Mine = Tree.topK(QueryK);
      std::vector<TopKRange> Twin = FenceTwin->topK(QueryK);
      bool Match = Mine.size() == Twin.size();
      for (size_t I = 0; Match && I != Mine.size(); ++I)
        Match = Mine[I].Lo == Twin[I].Lo &&
                Mine[I].WidthBits == Twin[I].WidthBits &&
                Mine[I].Retained == Twin[I].Retained &&
                Mine[I].LowerWeight == Twin[I].LowerWeight &&
                Mine[I].UpperWeight == Twin[I].UpperWeight;
      if (!Match)
        fail(Violations, "fence-equivalence",
             "topK(%zu) diverges between fenced and unfenced trees "
             "(%zu vs %zu entries)",
             QueryK, Mine.size(), Twin.size());
    }
  }

  if (Top.size() != K)
    fail(Violations, "topk-shape", "topK(%zu) returned %zu entries", K,
         Top.size());

  // k-nesting: the deterministic total order makes topK(k) a prefix of
  // topK(k + m) over the same tree.
  for (size_t I = 0; I != Top.size() && I != More.size(); ++I) {
    const TopKRange &A = Top[I];
    const TopKRange &B = More[I];
    if (A.Lo != B.Lo || A.WidthBits != B.WidthBits ||
        A.Retained != B.Retained)
      fail(Violations, "topk-nesting",
           "topK(%zu)[%zu] = [%" PRIx64 ", %" PRIx64 "] is not "
           "topK(%zu)[%zu] = [%" PRIx64 ", %" PRIx64 "]",
           K, I, A.Lo, A.Hi, K + 4, I, B.Lo, B.Hi);
  }

  uint64_t PrevScore = ~uint64_t(0);
  for (const TopKRange &E : Top) {
    if (E.Retained > PrevScore)
      fail(Violations, "topk-order",
           "score %" PRIu64 " after %" PRIu64 " (not non-increasing)",
           E.Retained, PrevScore);
    PrevScore = E.Retained;
    // A node range's lower bracket is exactly the range estimate, and
    // the [lower, upper] bracket must contain the truth.
    uint64_t Truth = Exact.countInRange(E.Lo, E.Hi);
    if (E.LowerWeight != Tree.estimateRange(E.Lo, E.Hi))
      fail(Violations, "topk-bracket",
           "[%" PRIx64 ", %" PRIx64 "] lower %" PRIu64
           " disagrees with estimateRange %" PRIu64,
           E.Lo, E.Hi, E.LowerWeight, Tree.estimateRange(E.Lo, E.Hi));
    if (Truth < E.LowerWeight || Truth > E.UpperWeight)
      fail(Violations, "topk-bracket",
           "[%" PRIx64 ", %" PRIx64 "] bracket [%" PRIu64 ", %" PRIu64
           "] misses the true %" PRIu64,
           E.Lo, E.Hi, E.LowerWeight, E.UpperWeight, Truth);
  }

  // Recall: a value whose true count clears the k-th retained score
  // plus the error budget retains more than the k-th score on its
  // smallest cover node (same argument as hot-range recall), so that
  // node outranks the k-th entry and must be reported.
  if (Top.empty())
    return;
  double MinHeavy = static_cast<double>(Top.back().Retained) +
                    errorBudget() + 1.0;
  uint64_t MinCount = MinHeavy >= 1.8e19
                          ? ~uint64_t(0)
                          : static_cast<uint64_t>(std::ceil(MinHeavy));
  for (const auto &[Value, Count] : Exact.heavyValues(MinCount)) {
    bool Covered = false;
    for (const TopKRange &E : Top)
      if (E.Lo <= Value && Value <= E.Hi) {
        Covered = true;
        break;
      }
    if (!Covered)
      fail(Violations, "topk-recall",
           "value %" PRIx64 " with true count %" PRIu64
           " (>= %.3f) is in no topK(%zu) range",
           Value, Count, MinHeavy, K);
  }
}

/// Preorder (lo, widthBits, count) triples of the audited arena tree,
/// in the same child order ReferenceRapTree::collectNodes() uses.
static void collectArena(const RapNode &Node,
                         std::vector<ReferenceRapTree::NodeTriple> &Out) {
  Out.emplace_back(Node.lo(), static_cast<uint8_t>(Node.widthBits()),
                   Node.count());
  for (unsigned Slot = 0; Slot != Node.numChildSlots(); ++Slot)
    if (const RapNode *Child = Node.child(Slot))
      collectArena(*Child, Out);
}

void DifferentialOracle::checkReference() {
  if (Tree.numEvents() != Reference->numEvents() ||
      Tree.numNodes() != Reference->numNodes() ||
      Tree.numSplits() != Reference->numSplits() ||
      Tree.numMergePasses() != Reference->numMergePasses() ||
      Tree.nextMergeAt() != Reference->nextMergeAt())
    fail(Violations, "arena-reference-divergence",
         "stats diverge: n=%" PRIu64 "/%" PRIu64 " nodes=%" PRIu64
         "/%" PRIu64 " splits=%" PRIu64 "/%" PRIu64 " merges=%" PRIu64
         "/%" PRIu64 " next=%" PRIu64 "/%" PRIu64,
         Tree.numEvents(), Reference->numEvents(), Tree.numNodes(),
         Reference->numNodes(), Tree.numSplits(), Reference->numSplits(),
         Tree.numMergePasses(), Reference->numMergePasses(),
         Tree.nextMergeAt(), Reference->nextMergeAt());
  if (Tree.mergeEventCounts() != Reference->mergeEventCounts())
    fail(Violations, "arena-reference-divergence",
         "merge timelines diverge (%zu vs %zu merge passes recorded)",
         Tree.mergeEventCounts().size(),
         Reference->mergeEventCounts().size());

  std::vector<ReferenceRapTree::NodeTriple> Arena;
  collectArena(Tree.root(), Arena);
  std::vector<ReferenceRapTree::NodeTriple> Legacy =
      Reference->collectNodes();
  if (Arena == Legacy)
    return;
  // Report the first diverging position, which is where debugging
  // starts; full dumps belong to the replaying harness.
  size_t Limit = std::min(Arena.size(), Legacy.size());
  size_t I = 0;
  while (I != Limit && Arena[I] == Legacy[I])
    ++I;
  if (I == Limit)
    fail(Violations, "arena-reference-divergence",
         "node sets sized %zu (arena) vs %zu (legacy) share a prefix",
         Arena.size(), Legacy.size());
  else
    fail(Violations, "arena-reference-divergence",
         "preorder position %zu: arena (%" PRIx64 ", %u, %" PRIu64
         ") vs legacy (%" PRIx64 ", %u, %" PRIu64 ")",
         I, std::get<0>(Arena[I]), unsigned(std::get<1>(Arena[I])),
         std::get<2>(Arena[I]), std::get<0>(Legacy[I]),
         unsigned(std::get<1>(Legacy[I])), std::get<2>(Legacy[I]));
}

void DifferentialOracle::checkNow(Rng &QueryRng) {
  // Pending combined events must land before any conservation or
  // accuracy claim is evaluated.
  flushCombiner();
  if (Reference)
    checkReference();

  uint64_t UniverseHi =
      Config.RangeBits == 0 ? 0 : lowBitMask(Config.RangeBits);

  // Whole-universe conservation across all three profilers.
  if (Tree.numEvents() != Exact.numEvents() ||
      Tree.numEvents() != Flat.numEvents())
    fail(Violations, "event-accounting",
         "tree fed %" PRIu64 " events, exact %" PRIu64 ", flat %" PRIu64,
         Tree.numEvents(), Exact.numEvents(), Flat.numEvents());
  checkRange(0, UniverseHi, /*GridAligned=*/true);
  if (Tree.estimateRange(0, UniverseHi) != Tree.numEvents())
    fail(Violations, "conservation",
         "whole-universe estimate %" PRIu64 " != n = %" PRIu64,
         Tree.estimateRange(0, UniverseHi), Tree.numEvents());

  // Exhaustive grid-aligned ranges, widest levels first; a level that
  // exceeds the remaining budget is randomly sampled instead.
  uint64_t Budget = Options.AlignedQueryBudget;
  unsigned BitsPerLevel = Config.bitsPerLevel();
  unsigned Width = Config.RangeBits;
  while (Width > 0 && Budget > 0) {
    Width = Width > BitsPerLevel ? Width - BitsPerLevel : 0;
    unsigned LevelBits = Config.RangeBits - Width;
    if (LevelBits < 40 && (uint64_t(1) << LevelBits) <= Budget) {
      uint64_t NumRanges = uint64_t(1) << LevelBits;
      for (uint64_t I = 0; I != NumRanges; ++I) {
        uint64_t Lo = I << Width;
        uint64_t Hi = Lo + lowBitMask(Width);
        checkRange(Lo, Hi, /*GridAligned=*/true);
      }
      Budget -= NumRanges;
    } else {
      // Sample this level (and implicitly all finer ones next round).
      uint64_t Samples = std::min<uint64_t>(Budget, 128);
      for (uint64_t I = 0; I != Samples; ++I) {
        uint64_t Lo = (QueryRng.next() & UniverseHi) &
                      ~lowBitMask(Width);
        uint64_t Hi = Lo + lowBitMask(Width);
        checkRange(Lo, Hi, /*GridAligned=*/true);
      }
      Budget -= std::min(Budget, Samples);
    }
  }

  // Arbitrary (unaligned) ranges: lower-bound + bracket containment.
  for (unsigned I = 0; I != Options.RandomQueries; ++I) {
    uint64_t A = QueryRng.next() & UniverseHi;
    uint64_t B = QueryRng.next() & UniverseHi;
    if (A > B)
      std::swap(A, B);
    checkRange(A, B, /*GridAligned=*/false);
  }

  for (double Phi : Options.HotPhis)
    if (Tree.numEvents() > 0)
      checkHotRanges(Phi);

  if (Tree.numEvents() > 0)
    checkTopK();
}

std::vector<InvariantViolation> DifferentialOracle::violations() const {
  std::vector<InvariantViolation> All = Auditor.violations();
  All.insert(All.end(), Violations.begin(), Violations.end());
  return All;
}
