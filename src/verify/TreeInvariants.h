//===- verify/TreeInvariants.h - Structural + online auditors -*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-checkable statements of every invariant the paper implies
/// for a RAP tree (see docs/VERIFICATION.md for the invariant-to-paper
/// mapping). Two auditors cooperate:
///
///  - TreeInvariants walks a tree (or a raw node set, e.g. the hardware
///    engine's TCAM snapshot) and checks the *structural* invariants:
///    range geometry, conservation of stream weight, node accounting,
///    and the worst-case node-count bound of Sec 3.1.
///
///  - OnlineAuditor wraps a live tree and checks the *transition*
///    invariants on every update: the split decision against the
///    eps*n/log(R) threshold of Sec 2.2 and the batched-merge schedule
///    (interval ratio q) of Sec 3.1.
///
/// Checks never assert: they return violation lists, so they work in
/// NDEBUG builds and the fuzz driver can minimize and report failures.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_VERIFY_TREEINVARIANTS_H
#define RAP_VERIFY_TREEINVARIANTS_H

#include "core/RapTree.h"

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

namespace rap {

/// One violated invariant: a stable identifier plus human-readable
/// context for the failure report.
struct InvariantViolation {
  std::string Invariant; ///< Stable id, e.g. "child-geometry".
  std::string Detail;    ///< What was observed vs expected.
};

/// Structural invariant auditor.
class TreeInvariants {
public:
  /// Audits \p Tree against every structural invariant. An empty
  /// result means all invariants hold.
  static std::vector<InvariantViolation> audit(const RapTree &Tree);

  /// Audits a raw (lo, widthBits, count) node set — in any order —
  /// against \p Config and \p NumEvents. This is the tree-free entry
  /// point used for ProfileSnapshot node lists and for the hardware
  /// engine's TCAM snapshot (which shares no code with RapTree).
  static std::vector<InvariantViolation>
  auditNodeSet(const RapConfig &Config,
               std::vector<std::tuple<uint64_t, uint8_t, uint64_t>> Nodes,
               uint64_t NumEvents);

  /// Formats violations one per line for logs and test messages.
  static std::string render(const std::vector<InvariantViolation> &Vs);
};

/// Online transition auditor: owns the update path of a tree and
/// validates every split/merge decision as it happens. Feed events
/// through addPoint (never mutate the tree directly while auditing).
class OnlineAuditor {
public:
  explicit OnlineAuditor(RapTree &T) : Tree(T) {}

  /// Forwards to RapTree::addPoint and checks the transition: event
  /// accounting, the split decision against the current threshold, and
  /// the batched-merge schedule.
  void addPoint(uint64_t X, uint64_t Weight = 1);

  /// All transition violations observed so far.
  const std::vector<InvariantViolation> &violations() const {
    return Violations;
  }

  /// The audited tree.
  const RapTree &tree() const { return Tree; }

private:
  RapTree &Tree;
  std::vector<InvariantViolation> Violations;
};

} // namespace rap

#endif // RAP_VERIFY_TREEINVARIANTS_H
