//===- trace/MemoryModel.cpp - Synthetic data address streams ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/MemoryModel.h"

#include <cassert>

using namespace rap;

MemoryModel::MemoryModel(const BenchmarkSpec &Spec, uint64_t Seed)
    : Segments(Spec.Segments) {
  assert(!Segments.empty() && "memory model needs segments");
  std::vector<double> NormalWeights;
  std::vector<double> StreamingWeights;
  for (const MemorySegmentSpec &Segment : Segments) {
    NormalWeights.push_back(Segment.Weight);
    StreamingWeights.push_back(Segment.StreamingWeight);
    if (Segment.SegmentKind == MemorySegmentSpec::Kind::Reuse)
      SlotDist.push_back(std::make_unique<ZipfDistribution>(
          Segment.NumSlots, Segment.ZipfExponent));
    else
      SlotDist.push_back(nullptr);
    // Start streaming scans at a segment-specific stride-aligned offset
    // so separate segments do not move in lockstep.
    StreamCursor.push_back(((Seed * 0x2545f4914f6cdd1dULL) % Segment.Size) &
                           ~(Segment.StrideBytes - 1));
  }
  NormalDist = std::make_unique<DiscreteDistribution>(NormalWeights);
  StreamingDist = std::make_unique<DiscreteDistribution>(StreamingWeights);
}

MemoryModel::Access MemoryModel::sample(Rng &R, bool StreamingHint) {
  const DiscreteDistribution &Dist =
      StreamingHint ? *StreamingDist : *NormalDist;
  unsigned Index = static_cast<unsigned>(Dist.sample(R));
  const MemorySegmentSpec &Segment = Segments[Index];

  Access Result;
  Result.ZeroValueProb = Segment.ZeroValueProb;
  switch (Segment.SegmentKind) {
  case MemorySegmentSpec::Kind::Reuse: {
    uint64_t Slot = SlotDist[Index]->sample(R);
    Result.Address = Segment.Base + Slot * 8;
    Result.Streaming = false;
    break;
  }
  case MemorySegmentSpec::Kind::Streaming: {
    uint64_t &Cursor = StreamCursor[Index];
    Result.Address = Segment.Base + Cursor;
    Cursor += Segment.StrideBytes;
    if (Cursor >= Segment.Size)
      Cursor = 0;
    Result.Streaming = true;
    break;
  }
  }
  return Result;
}
