//===- trace/TraceIO.h - Trace file reading and writing --------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary trace files of TraceRecords. The paper's software RAP "can
/// either be called from online analysis or to post process trace
/// files" (Sec 3.2); this module provides the trace-file half:
/// capture a synthetic (or externally produced) stream once, then
/// profile it repeatedly with different parameters.
///
/// Format (version 1, little-endian):
///   magic "RAPT", u32 version, u64 record count,
///   records: { u64 blockPc, u32 blockLength, u8 flags,
///              [u64 loadAddress, u64 loadValue] if flags & HasLoad }
///   flags: bit 0 = HasLoad, bit 1 = NarrowOperand.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_TRACEIO_H
#define RAP_TRACE_TRACEIO_H

#include "trace/TraceRecord.h"

#include <cstdint>
#include <iosfwd>
#include <string>

namespace rap {

/// Streams TraceRecords to a binary file.
class TraceWriter {
public:
  /// Starts a trace on \p OS (must remain valid for the writer's
  /// lifetime). The header is finalized by finish().
  explicit TraceWriter(std::ostream &Out);

  /// Appends one record.
  void append(const TraceRecord &Record);

  /// Records written so far.
  uint64_t numRecords() const { return NumRecords; }

  /// Rewrites the header with the final record count and flushes.
  /// Must be called exactly once, after the last append; requires a
  /// seekable stream. Returns false if the stream failed at any point
  /// — the trace on disk is then truncated or has a wrong record
  /// count, and the caller must not report success.
  bool finish();

private:
  std::ostream &OS;
  uint64_t NumRecords = 0;
  bool Finished = false;
};

/// Streams TraceRecords from a binary file.
class TraceReader {
public:
  /// Opens a trace on \p IS. Check valid() before reading; on failure
  /// error() describes the problem.
  explicit TraceReader(std::istream &In);

  /// True if the header parsed and reading can proceed.
  bool valid() const { return Valid; }

  /// Diagnostic for an invalid or truncated trace.
  const std::string &error() const { return Error; }

  /// Total records promised by the header.
  uint64_t numRecords() const { return NumRecords; }

  /// Records consumed so far.
  uint64_t position() const { return Position; }

  /// Reads the next record into \p Record. Returns false at the end of
  /// the trace or on corruption (valid() turns false and error() is
  /// set in the latter case).
  bool next(TraceRecord &Record);

private:
  std::istream &IS;
  uint64_t NumRecords = 0;
  uint64_t Position = 0;
  bool Valid = false;
  std::string Error;
};

} // namespace rap

#endif // RAP_TRACE_TRACEIO_H
