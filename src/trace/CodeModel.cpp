//===- trace/CodeModel.cpp - Synthetic basic-block walk ------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/CodeModel.h"

#include <algorithm>
#include <cassert>

using namespace rap;

/// Cheap per-block attribute hash (stable across runs for a fixed
/// seed): SplitMix64 finalizer over index ^ salt.
static uint64_t attributeHash(uint64_t Index, uint64_t Salt) {
  uint64_t Z = Index ^ Salt;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

CodeModel::CodeModel(const BenchmarkSpec &Spec, uint64_t Seed)
    : NumBlocks(Spec.NumBlocks), CodeBase(Spec.CodeBase),
      BlockStride(Spec.BlockStride), AttributeSalt(Seed * 0x9e3779b9u + 1),
      Regions(Spec.Regions), RunLength(Spec.MeanRunLength),
      LoopIterations(Spec.MeanLoopIterations) {
  assert(NumBlocks >= 1 && "need at least one block");

  // Lay out hot regions across the block index space with background
  // gaps between them: [gap0][region0][gap1][region1]...[gapR].
  double TotalHotFraction = 0.0;
  for (const CodeRegionSpec &Region : Regions)
    TotalHotFraction += Region.SizeFraction;
  assert(TotalHotFraction < 1.0 && "hot regions must leave a background");

  unsigned NumRegions = static_cast<unsigned>(Regions.size());
  double GapFraction =
      (1.0 - TotalHotFraction) / static_cast<double>(NumRegions + 1);
  uint64_t Cursor = 0;
  for (unsigned R = 0; R != NumRegions; ++R) {
    double Blocks = static_cast<double>(NumBlocks);
    Cursor += static_cast<uint64_t>(GapFraction * Blocks);
    uint64_t Size = std::max<uint64_t>(
        1, static_cast<uint64_t>(Regions[R].SizeFraction * Blocks));
    RegionStart.push_back(Cursor);
    RegionEnd.push_back(std::min(Cursor + Size, NumBlocks));
    Cursor = RegionEnd.back();
  }

  // Background blocks = everything not inside a region.
  for (uint64_t I = 0; I != NumBlocks; ++I)
    if (regionOf(I) == NumRegions)
      BackgroundBlocks.push_back(static_cast<uint32_t>(I));
  if (BackgroundBlocks.empty())
    BackgroundBlocks.push_back(0); // Degenerate specs still need a fallback.

  NumPhases = std::max(1u, Spec.NumPhases);
  PhaseModulation = Spec.PhaseModulation;
  BackgroundWeight = 1.0;
  for (const CodeRegionSpec &Region : Regions)
    BackgroundWeight -= Region.Weight;
  assert(BackgroundWeight > 0.0 && "region weights exceed 1");

  // Popularity of run start offsets: early blocks of a region are the
  // hottest (the loop headers), giving intra-region locality.
  for (unsigned R = 0; R != NumRegions; ++R) {
    uint64_t Size = RegionEnd[R] - RegionStart[R];
    RegionOffsetDist.push_back(std::make_unique<ZipfDistribution>(Size, 0.8));
  }
  BackgroundDist = std::make_unique<ZipfDistribution>(
      BackgroundBlocks.size(), Spec.BackgroundZipfExponent);
}

unsigned CodeModel::regionOf(uint64_t Index) const {
  for (unsigned R = 0; R != RegionStart.size(); ++R)
    if (Index >= RegionStart[R] && Index < RegionEnd[R])
      return R;
  return static_cast<unsigned>(RegionStart.size());
}

uint32_t CodeModel::lengthOf(uint64_t Index) const {
  return 3 + static_cast<uint32_t>(attributeHash(Index, AttributeSalt) % 14);
}

bool CodeModel::isNarrowOperandBlock(uint64_t Index) const {
  unsigned Region = regionOf(Index);
  double Prob = Region < Regions.size() ? Regions[Region].NarrowOperandProb
                                        : 0.05;
  // Static per-block decision from the attribute hash.
  uint64_t H = attributeHash(Index, AttributeSalt ^ 0x5bd1e995u);
  return static_cast<double>(H >> 11) * 0x1.0p-53 < Prob;
}

double CodeModel::streamingLoadProb(unsigned RegionOrBackground) const {
  if (RegionOrBackground < Regions.size())
    return Regions[RegionOrBackground].StreamingLoadProb;
  return 0.1;
}

uint64_t CodeModel::sampleBackgroundBlock(Rng &R) {
  uint64_t Rank = BackgroundDist->sample(R);
  // Scatter ranks over the background so hot tail blocks are not all
  // adjacent: hash the rank into a position.
  uint64_t Pos = attributeHash(Rank, AttributeSalt ^ 0xabcdefULL) %
                 BackgroundBlocks.size();
  return BackgroundBlocks[Pos];
}

const DiscreteDistribution &CodeModel::phaseDistribution(unsigned Phase) {
  // Phase-modulated region weights, built lazily per *raw* phase
  // index: in each phase roughly half the regions are "active"
  // (boosted by 1 + modulation) and the rest are "dormant" (scaled by
  // 1 - modulation), with the active set rotating cyclically; regions
  // with a later OnsetPhase contribute nothing before it. Real
  // programs behave this way — gcc's later passes execute code that
  // was stone cold during parsing — and it is what exercises RAP's
  // merges (cold subtrees fold) and late deep splits (one threshold of
  // parked counts per level, the Sec 4.3 error source). Weights are
  // renormalized so hot regions keep their whole-run shares.
  while (PhaseRegionDist.size() <= Phase) {
    unsigned P = static_cast<unsigned>(PhaseRegionDist.size());
    unsigned NumRegions = static_cast<unsigned>(Regions.size());
    unsigned ActiveCount = (NumRegions + 1) / 2;
    double TotalBase = 1.0 - BackgroundWeight;
    std::vector<double> Weights;
    double Sum = 0.0;
    for (unsigned R = 0; R != NumRegions; ++R) {
      bool Started = P >= Regions[R].OnsetPhase;
      bool Active = ((R + P) % std::max(1u, NumRegions)) < ActiveCount;
      double Factor = !Started ? 0.0
                      : Active ? 1.0 + PhaseModulation
                               : 1.0 - PhaseModulation;
      Weights.push_back(Regions[R].Weight * Factor);
      Sum += Weights.back();
    }
    if (Sum > 0.0)
      for (double &W : Weights)
        W *= TotalBase / Sum;
    Weights.push_back(BackgroundWeight);
    PhaseRegionDist.emplace_back(std::make_unique<DiscreteDistribution>(
        Weights));
    (void)P;
  }
  return *PhaseRegionDist[Phase];
}

uint64_t CodeModel::nextBlockIndex(Rng &R, unsigned Phase) {
  // Continue the current loop body...
  if (CurBlock + 1 < RunEnd) {
    ++CurBlock;
    return CurBlock;
  }
  // ...or take the back edge for the next trip...
  if (TripsRemaining > 0) {
    --TripsRemaining;
    CurBlock = LoopStart;
    return CurBlock;
  }

  // ...or start a new loop nest elsewhere.
  const DiscreteDistribution &RegionDist = phaseDistribution(Phase);
  unsigned Choice = static_cast<unsigned>(RegionDist.sample(R));
  uint64_t BodyLimit;
  if (Choice < RegionStart.size()) {
    uint64_t Offset = RegionOffsetDist[Choice]->sample(R);
    LoopStart = RegionStart[Choice] + Offset;
    BodyLimit = RegionEnd[Choice];
  } else {
    LoopStart = sampleBackgroundBlock(R);
    // Background code runs are short and must not walk off the end of
    // the block array.
    BodyLimit = std::min(LoopStart + 4, NumBlocks);
  }
  RunEnd = std::min(LoopStart + RunLength.sample(R), BodyLimit);
  TripsRemaining = LoopIterations.sample(R) - 1;
  CurBlock = LoopStart;
  return CurBlock;
}
