//===- trace/ProgramModel.cpp - Whole synthetic benchmark ----------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/ProgramModel.h"

using namespace rap;

ProgramModel::ProgramModel(const BenchmarkSpec &ModelSpec, uint64_t RunSeed)
    : Spec(ModelSpec),
      Generator(ModelSpec.Seed ^ (RunSeed * 0x9e3779b97f4a7c15ULL)),
      Code(ModelSpec, ModelSpec.Seed ^ RunSeed),
      Values(ModelSpec, ModelSpec.Seed ^ RunSeed),
      Memory(ModelSpec, ModelSpec.Seed ^ RunSeed) {}

TraceRecord ProgramModel::next() {
  // Raw (non-wrapping) phase index: region rotation is cyclic in it,
  // onset gating is not.
  unsigned Phase =
      Spec.PhaseLength == 0
          ? 0
          : static_cast<unsigned>(Emitted / Spec.PhaseLength);
  uint64_t BlockIndex = Code.nextBlockIndex(Generator, Phase);

  TraceRecord Record;
  Record.BlockPc = Code.pcOf(BlockIndex);
  Record.BlockLength = Code.lengthOf(BlockIndex);
  Record.NarrowOperand = Code.isNarrowOperandBlock(BlockIndex);
  Record.HasLoad = Generator.nextBernoulli(Spec.LoadProb);
  if (Record.HasLoad) {
    unsigned Region = Code.regionOf(BlockIndex);
    bool StreamingHint =
        Generator.nextBernoulli(Code.streamingLoadProb(Region));
    MemoryModel::Access Access = Memory.sample(Generator, StreamingHint);
    Record.LoadAddress = Access.Address;
    if (Access.ZeroValueProb > 0.0 &&
        Generator.nextBernoulli(Access.ZeroValueProb))
      Record.LoadValue = 0;
    else
      Record.LoadValue = Values.sample(Generator, Access.Streaming, Phase);
  }
  ++Emitted;
  return Record;
}
