//===- trace/TraceIO.cpp - Trace file reading and writing ----------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/FailPoint.h"

#include <cassert>
#include <cstring>
#include <istream>
#include <ostream>

using namespace rap;

namespace {

constexpr char Magic[4] = {'R', 'A', 'P', 'T'};
constexpr uint32_t FormatVersion = 1;
constexpr uint8_t FlagHasLoad = 1;
constexpr uint8_t FlagNarrowOperand = 2;

void writeU32(std::ostream &OS, uint32_t Value) {
  unsigned char Bytes[4];
  for (int I = 0; I != 4; ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  OS.write(reinterpret_cast<const char *>(Bytes), 4);
}

void writeU64(std::ostream &OS, uint64_t Value) {
  unsigned char Bytes[8];
  for (int I = 0; I != 8; ++I)
    Bytes[I] = static_cast<unsigned char>(Value >> (8 * I));
  OS.write(reinterpret_cast<const char *>(Bytes), 8);
}

bool readU32(std::istream &IS, uint32_t &Value) {
  unsigned char Bytes[4];
  if (!IS.read(reinterpret_cast<char *>(Bytes), 4))
    return false;
  Value = 0;
  for (int I = 3; I >= 0; --I)
    Value = (Value << 8) | Bytes[I];
  return true;
}

bool readU64(std::istream &IS, uint64_t &Value) {
  unsigned char Bytes[8];
  if (!IS.read(reinterpret_cast<char *>(Bytes), 8))
    return false;
  Value = 0;
  for (int I = 7; I >= 0; --I)
    Value = (Value << 8) | Bytes[I];
  return true;
}

} // namespace

TraceWriter::TraceWriter(std::ostream &Out) : OS(Out) {
  OS.write(Magic, 4);
  writeU32(OS, FormatVersion);
  writeU64(OS, 0); // Record count placeholder, patched by finish().
}

void TraceWriter::append(const TraceRecord &Record) {
  assert(!Finished && "append after finish");
  // Injected write failure (rap_fuzz --faults): latches failbit like a
  // full disk would, which finish() then reports.
  if (RAP_FAILPOINT_HIT(failpoints::Fp::TraceWrite))
    OS.setstate(std::ios::failbit);
  writeU64(OS, Record.BlockPc);
  writeU32(OS, Record.BlockLength);
  uint8_t Flags = (Record.HasLoad ? FlagHasLoad : 0) |
                  (Record.NarrowOperand ? FlagNarrowOperand : 0);
  OS.put(static_cast<char>(Flags));
  if (Record.HasLoad) {
    writeU64(OS, Record.LoadAddress);
    writeU64(OS, Record.LoadValue);
  }
  ++NumRecords;
}

bool TraceWriter::finish() {
  assert(!Finished && "finish called twice");
  Finished = true;
  std::ostream::pos_type End = OS.tellp();
  OS.seekp(8); // past magic + version
  writeU64(OS, NumRecords);
  OS.seekp(End);
  OS.flush();
  // good() covers the whole stream history: a failed append (disk
  // full) latches failbit/badbit, so one check here is authoritative.
  return OS.good();
}

TraceReader::TraceReader(std::istream &In) : IS(In) {
  char MagicBuffer[4];
  if (!IS.read(MagicBuffer, 4) ||
      std::memcmp(MagicBuffer, Magic, 4) != 0) {
    Error = "not a RAP trace (bad magic)";
    return;
  }
  uint32_t Version;
  if (!readU32(IS, Version) || Version != FormatVersion) {
    Error = "unsupported trace format version";
    return;
  }
  if (!readU64(IS, NumRecords)) {
    Error = "truncated trace header";
    return;
  }
  Valid = true;
}

bool TraceReader::next(TraceRecord &Record) {
  if (!Valid || Position == NumRecords)
    return false;
  uint32_t BlockLength;
  int FlagsChar;
  if (!readU64(IS, Record.BlockPc) || !readU32(IS, BlockLength) ||
      (FlagsChar = IS.get()) < 0) {
    Valid = false;
    Error = "truncated trace record";
    return false;
  }
  Record.BlockLength = BlockLength;
  uint8_t Flags = static_cast<uint8_t>(FlagsChar);
  Record.HasLoad = (Flags & FlagHasLoad) != 0;
  Record.NarrowOperand = (Flags & FlagNarrowOperand) != 0;
  if (Record.HasLoad) {
    if (!readU64(IS, Record.LoadAddress) ||
        !readU64(IS, Record.LoadValue)) {
      Valid = false;
      Error = "truncated trace record";
      return false;
    }
  } else {
    Record.LoadAddress = 0;
    Record.LoadValue = 0;
  }
  ++Position;
  return true;
}
