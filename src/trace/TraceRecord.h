//===- trace/TraceRecord.h - One dynamic basic-block record ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of synthetic execution: one dynamic basic-block instance,
/// carrying everything the paper's profile types consume. The paper
/// assumes a ProfileMe-style event source delivering retired
/// instruction attributes (Sec 3); a TraceRecord is our equivalent of
/// one such delivery.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_TRACERECORD_H
#define RAP_TRACE_TRACERECORD_H

#include <cstdint>

namespace rap {

/// One executed basic block with its (optional) load.
struct TraceRecord {
  /// PC of the basic block: the event for code profiles.
  uint64_t BlockPc = 0;

  /// Static instruction count of the block; code profiles weight the
  /// block PC by this, matching the paper's "instructions executed per
  /// region" metric (Sec 4.1).
  uint32_t BlockLength = 0;

  /// True if this block instance performed a load.
  bool HasLoad = false;

  /// Load effective address (valid when HasLoad).
  uint64_t LoadAddress = 0;

  /// Value returned by the load (valid when HasLoad): the event for
  /// value profiles and, filtered to zero, for zero-load profiles.
  uint64_t LoadValue = 0;

  /// True if the block's dominant operation has a narrow (< 16 bit)
  /// operand — the Sec 4.4 narrow-operand profile feeds BlockPc when
  /// this is set.
  bool NarrowOperand = false;
};

} // namespace rap

#endif // RAP_TRACE_TRACERECORD_H
