//===- trace/ProgramModel.h - Whole synthetic benchmark --------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramModel ties the code, value and memory models together into a
/// single deterministic trace source: the stand-in for a SPEC
/// benchmark run under binary instrumentation. Two ProgramModels built
/// from the same spec and run seed emit identical streams, which is how
/// the evaluation harnesses obtain the paper's "perfect offline
/// profiler" ground truth (Sec 4.3): one pass feeds RAP online, a
/// replayed pass feeds the ExactProfiler.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_PROGRAMMODEL_H
#define RAP_TRACE_PROGRAMMODEL_H

#include "trace/BenchmarkSpec.h"
#include "trace/CodeModel.h"
#include "trace/MemoryModel.h"
#include "trace/TraceRecord.h"
#include "trace/ValueModel.h"

#include <cstdint>

namespace rap {

/// Deterministic generator of TraceRecords for one benchmark.
class ProgramModel {
public:
  /// log2 universe sizes for the three profile types fed from records.
  static constexpr unsigned PcRangeBits = 32;
  static constexpr unsigned ValueRangeBits = 64;
  static constexpr unsigned AddressRangeBits = 44;

  /// Builds the model. The stream is a pure function of
  /// (Spec, RunSeed).
  explicit ProgramModel(const BenchmarkSpec &ModelSpec, uint64_t RunSeed = 0);

  /// Emits the next dynamic basic-block record.
  TraceRecord next();

  /// Records emitted so far.
  uint64_t eventsEmitted() const { return Emitted; }

  /// The spec this model was built from.
  const BenchmarkSpec &spec() const { return Spec; }

  /// The static code layout (for tests and region tables).
  const CodeModel &code() const { return Code; }

private:
  BenchmarkSpec Spec;
  Rng Generator;
  CodeModel Code;
  ValueModel Values;
  MemoryModel Memory;
  uint64_t Emitted = 0;
};

} // namespace rap

#endif // RAP_TRACE_PROGRAMMODEL_H
