//===- trace/NetworkModel.cpp - Synthetic packet streams ------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/NetworkModel.h"

#include <cassert>

using namespace rap;

static uint64_t mixHash(uint64_t X, uint64_t Salt) {
  uint64_t Z = X ^ Salt;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

NetworkSpec NetworkSpec::makeDefault() {
  NetworkSpec Spec;
  Spec.Seed = 0x6e6574; // "net"

  auto Subnet = [](uint32_t Base, unsigned PrefixLen, double Weight,
                   uint64_t Hosts, double Zipf) {
    NetworkSpec::Subnet S;
    S.Base = Base;
    S.PrefixLen = PrefixLen;
    S.Weight = Weight;
    S.NumHosts = Hosts;
    S.ZipfExponent = Zipf;
    return S;
  };

  // Destinations: a dominant server /24 (the paper's "hot region"),
  // a campus client /16, a CDN /20 and a DNS /28.
  Spec.DstSubnets.push_back(
      Subnet(0xC0A80100 /*192.168.1.0/24*/, 24, 0.35, 32, 1.2));
  Spec.DstSubnets.push_back(
      Subnet(0x0A000000 /*10.0.0.0/16*/, 16, 0.30, 20000, 0.8));
  Spec.DstSubnets.push_back(
      Subnet(0x17600000 /*23.96.0.0/20*/, 20, 0.20, 1024, 1.0));
  Spec.DstSubnets.push_back(
      Subnet(0x08080800 /*8.8.8.0/28*/, 28, 0.10, 4, 1.0));

  // Sources: the campus /16 plus a remote mix.
  Spec.SrcSubnets.push_back(Subnet(0x0A000000, 16, 0.55, 20000, 0.8));
  Spec.SrcSubnets.push_back(Subnet(0x62000000, 8, 0.45, 500000, 0.7));

  Spec.ScanWeight = 0.05;
  return Spec;
}

NetworkModel::NetworkModel(const NetworkSpec &ModelSpec, uint64_t RunSeed)
    : Spec(ModelSpec),
      Generator(ModelSpec.Seed ^ (RunSeed * 0x9e3779b97f4a7c15ULL)),
      DstDist([&ModelSpec] {
        std::vector<double> Weights;
        for (const NetworkSpec::Subnet &S : ModelSpec.DstSubnets)
          Weights.push_back(S.Weight);
        Weights.push_back(ModelSpec.ScanWeight);
        return Weights;
      }()),
      SrcDist([&ModelSpec] {
        std::vector<double> Weights;
        for (const NetworkSpec::Subnet &S : ModelSpec.SrcSubnets)
          Weights.push_back(S.Weight);
        Weights.push_back(ModelSpec.ScanWeight * 0.5);
        return Weights;
      }()) {
  assert(!Spec.DstSubnets.empty() && !Spec.SrcSubnets.empty() &&
         "traffic needs subnets");
  for (const NetworkSpec::Subnet &S : Spec.DstSubnets)
    DstHosts.push_back(
        std::make_unique<ZipfDistribution>(S.NumHosts, S.ZipfExponent));
  for (const NetworkSpec::Subnet &S : Spec.SrcSubnets)
    SrcHosts.push_back(
        std::make_unique<ZipfDistribution>(S.NumHosts, S.ZipfExponent));
}

uint32_t NetworkModel::sampleAddr(
    const std::vector<NetworkSpec::Subnet> &Subnets,
    const DiscreteDistribution &Dist,
    const std::vector<std::unique_ptr<ZipfDistribution>> &HostDists,
    bool AllowScan) {
  unsigned Index = static_cast<unsigned>(Dist.sample(Generator));
  if (Index >= Subnets.size()) {
    // Scan traffic: uniform over the whole space (or retry when the
    // caller disallows it; the retry is deterministic).
    if (AllowScan)
      return static_cast<uint32_t>(Generator.next());
    Index = 0;
  }
  const NetworkSpec::Subnet &S = Subnets[Index];
  uint64_t Rank = HostDists[Index]->sample(Generator);
  // Scatter host ranks through the subnet's host space.
  uint32_t Host = static_cast<uint32_t>(
      mixHash(Rank, Spec.Seed ^ S.Base) & S.hostMask());
  return S.Base | Host;
}

PacketRecord NetworkModel::next() {
  PacketRecord Packet;
  Packet.DstAddr = sampleAddr(Spec.DstSubnets, DstDist, DstHosts,
                              /*AllowScan=*/true);
  Packet.SrcAddr = sampleAddr(Spec.SrcSubnets, SrcDist, SrcHosts,
                              /*AllowScan=*/true);
  // A handful of well-known destination ports plus ephemeral noise.
  double U = Generator.nextDouble();
  if (U < 0.45)
    Packet.DstPort = 443;
  else if (U < 0.65)
    Packet.DstPort = 80;
  else if (U < 0.75)
    Packet.DstPort = 53;
  else
    Packet.DstPort = static_cast<uint16_t>(
        1024 + Generator.nextBelow(64512));
  // Bimodal sizes: ACK-sized vs MTU-sized.
  Packet.Bytes = Generator.nextBernoulli(Spec.SmallPacketProb)
                     ? 40 + static_cast<uint32_t>(Generator.nextBelow(80))
                     : 1000 + static_cast<uint32_t>(Generator.nextBelow(500));
  ++Emitted;
  return Packet;
}
