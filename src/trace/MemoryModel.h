//===- trace/MemoryModel.h - Synthetic data address streams ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates load effective addresses from a segmented address space:
/// Reuse segments (stack / hot heap) draw Zipf-popular slots and hit in
/// cache; Streaming segments scan large arrays sequentially and miss.
/// Segments can force a zero load value with a configured probability,
/// reproducing the zero-load memory regions of the paper's Fig 10.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_MEMORYMODEL_H
#define RAP_TRACE_MEMORYMODEL_H

#include "support/Distributions.h"
#include "support/Rng.h"
#include "trace/BenchmarkSpec.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rap {

/// Stateful generator of load addresses.
class MemoryModel {
public:
  /// One generated load address with its segment attributes.
  struct Access {
    uint64_t Address = 0;
    /// Probability the value loaded from here is zero (0 to defer to
    /// the value mixture).
    double ZeroValueProb = 0.0;
    /// True if the address came from a streaming segment.
    bool Streaming = false;
  };

  MemoryModel(const BenchmarkSpec &Spec, uint64_t Seed);

  /// Draws the next load address. \p StreamingHint biases the segment
  /// choice toward streaming segments (set from the code region's
  /// streaming-load probability).
  Access sample(Rng &R, bool StreamingHint);

  /// Number of segments.
  unsigned numSegments() const {
    return static_cast<unsigned>(Segments.size());
  }

  /// Segment descriptor \p Index (for tests and table printing).
  const MemorySegmentSpec &segment(unsigned Index) const {
    return Segments[Index];
  }

private:
  std::vector<MemorySegmentSpec> Segments;
  std::vector<std::unique_ptr<ZipfDistribution>> SlotDist;
  std::vector<uint64_t> StreamCursor; ///< per-segment scan position
  std::unique_ptr<DiscreteDistribution> NormalDist;
  std::unique_ptr<DiscreteDistribution> StreamingDist;
};

} // namespace rap

#endif // RAP_TRACE_MEMORYMODEL_H
