//===- trace/ValueModel.h - Synthetic load-value mixtures ------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates 64-bit load values from a mixture of point masses, uniform
/// ranges and hashed Zipf tails. The mixtures are parameterized per
/// benchmark to match the value-profile shape facts of the paper: a
/// single value (often 0) can carry 20–40% of loads, small integers
/// form a nested hierarchy of hot ranges (Fig 5), pointers cluster in
/// narrow high ranges, and a wide heavy tail stresses the range
/// adaptation (Sec 4.1). Components can have a late onset phase —
/// values that first appear mid-run force RAP to split deep paths
/// late, the paper's dominant source of hot-range error (Sec 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_VALUEMODEL_H
#define RAP_TRACE_VALUEMODEL_H

#include "support/Distributions.h"
#include "support/Rng.h"
#include "trace/BenchmarkSpec.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rap {

/// Samples load values; streaming accesses use a different component
/// weighting (large scanned arrays carry mostly zeros/small values).
class ValueModel {
public:
  ValueModel(const BenchmarkSpec &Spec, uint64_t Seed);

  /// Draws a load value. \p Streaming selects the streaming-access
  /// component weights; \p Phase is the raw (non-wrapping) phase index
  /// and gates components whose OnsetPhase has not been reached.
  uint64_t sample(Rng &R, bool Streaming, unsigned Phase = ~0u) const;

  /// Number of mixture components.
  unsigned numComponents() const {
    return static_cast<unsigned>(Components.size());
  }

private:
  uint64_t sampleComponent(Rng &R, const ValueComponentSpec &Component,
                           const ZipfDistribution *Zipf) const;

  std::vector<ValueComponentSpec> Components;
  std::vector<std::unique_ptr<ZipfDistribution>> ComponentZipf;
  /// Distributions per distinct onset step: index i covers phases in
  /// [OnsetSteps[i], OnsetSteps[i+1]); the last entry has everything
  /// active. Two parallel sets for normal and streaming weights.
  std::vector<unsigned> OnsetSteps;
  std::vector<std::unique_ptr<DiscreteDistribution>> NormalDist;
  std::vector<std::unique_ptr<DiscreteDistribution>> StreamingDist;
  uint64_t HashSalt;
};

} // namespace rap

#endif // RAP_TRACE_VALUEMODEL_H
