//===- trace/CodeModel.h - Synthetic basic-block walk ----------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a dynamic basic-block stream with the structure code
/// profiles exhibit (Sec 4.1–4.2 of the paper): a handful of hot
/// contiguous code regions holding most of the execution, a Zipf
/// background tail over the remaining blocks, bursty sequential runs
/// inside regions (loops), and slow phase changes that shift weight
/// between regions over time (which is what makes the batched merges
/// of Fig 6 do real work).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_CODEMODEL_H
#define RAP_TRACE_CODEMODEL_H

#include "support/Distributions.h"
#include "support/Rng.h"
#include "trace/BenchmarkSpec.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rap {

/// Stateful generator of basic-block indices.
class CodeModel {
public:
  /// Builds the static code layout from \p Spec. \p Seed controls the
  /// per-block attribute hashes (lengths, narrow-operand flags).
  CodeModel(const BenchmarkSpec &Spec, uint64_t Seed);

  /// Emits the next executed block index, advancing the walk state.
  /// \p Phase is the *raw* (non-wrapping) phase index: the rotation of
  /// active regions is cyclic in it, but region onsets are not.
  uint64_t nextBlockIndex(Rng &R, unsigned Phase);

  /// PC of block \p Index.
  uint64_t pcOf(uint64_t Index) const {
    return CodeBase + Index * BlockStride;
  }

  /// Static instruction count of block \p Index (3..16).
  uint32_t lengthOf(uint64_t Index) const;

  /// True if block \p Index statically has a narrow (<16 bit) operand.
  bool isNarrowOperandBlock(uint64_t Index) const;

  /// Region index of block \p Index, or regionCount() for background.
  unsigned regionOf(uint64_t Index) const;

  /// Number of hot regions.
  unsigned regionCount() const {
    return static_cast<unsigned>(RegionStart.size());
  }

  /// Block index range [first, last] of hot region \p Region.
  std::pair<uint64_t, uint64_t> regionBlocks(unsigned Region) const {
    return {RegionStart[Region], RegionEnd[Region] - 1};
  }

  /// Probability that a load from region \p RegionOrBackground (use
  /// regionCount() for background) is a streaming access.
  double streamingLoadProb(unsigned RegionOrBackground) const;

  /// Total number of blocks.
  uint64_t numBlocks() const { return NumBlocks; }

private:
  uint64_t sampleRegionStart(Rng &R, unsigned Region);
  uint64_t sampleBackgroundBlock(Rng &R);
  const DiscreteDistribution &phaseDistribution(unsigned Phase);

  uint64_t NumBlocks;
  uint64_t CodeBase;
  uint64_t BlockStride;
  uint64_t AttributeSalt;
  std::vector<CodeRegionSpec> Regions;
  std::vector<uint64_t> RegionStart; ///< first block index per region
  std::vector<uint64_t> RegionEnd;   ///< one-past-last block index
  std::vector<uint32_t> BackgroundBlocks; ///< indices outside all regions

  unsigned NumPhases = 1;
  double PhaseModulation = 0.0;
  double BackgroundWeight = 1.0;
  /// Sampler over regionCount()+1 choices (last = background), built
  /// lazily per raw phase index.
  std::vector<std::unique_ptr<DiscreteDistribution>> PhaseRegionDist;
  /// Popularity of start offsets within each region.
  std::vector<std::unique_ptr<ZipfDistribution>> RegionOffsetDist;
  std::unique_ptr<ZipfDistribution> BackgroundDist;
  GeometricLength RunLength;
  GeometricLength LoopIterations;

  // Walk state: the current loop (a block run repeated some trips).
  uint64_t CurBlock = 0;
  uint64_t LoopStart = 0;
  uint64_t RunEnd = 0; ///< one-past-last block index of the loop body
  uint64_t TripsRemaining = 0;
};

} // namespace rap

#endif // RAP_TRACE_CODEMODEL_H
