//===- trace/NetworkModel.h - Synthetic packet streams ---------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic network traffic for the paper's networking claim (Sec 5):
/// "RAP has been designed to be adaptable to a variety of different
/// data streams that need to be processed at very high speed, and may
/// even be applied in analyzing network traffic" — the hierarchical
/// heavy-hitter use case of Estan/Varghese [15].
///
/// The model emits packets whose source/destination IPv4 addresses are
/// drawn from weighted subnets (Zipf-popular hosts inside each), plus
/// a configurable fraction of uniform scan traffic. Hot subnets of any
/// prefix length then fall out of a RAP tree over the address space.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_NETWORKMODEL_H
#define RAP_TRACE_NETWORKMODEL_H

#include "support/Distributions.h"
#include "support/Rng.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rap {

/// One packet.
struct PacketRecord {
  uint32_t SrcAddr = 0;
  uint32_t DstAddr = 0;
  uint16_t DstPort = 0;
  uint32_t Bytes = 0;
};

/// Traffic description.
struct NetworkSpec {
  /// One address aggregate (a /PrefixLen subnet).
  struct Subnet {
    uint32_t Base = 0;       ///< network address (low bits zero)
    unsigned PrefixLen = 24; ///< bits of network prefix
    double Weight = 0.0;     ///< share of destination traffic
    uint64_t NumHosts = 256; ///< active hosts inside
    double ZipfExponent = 1.0;
    uint32_t hostMask() const { return ~uint32_t(0) >> PrefixLen; }
  };

  uint64_t Seed = 1;
  std::vector<Subnet> DstSubnets;
  std::vector<Subnet> SrcSubnets;
  /// Fraction of destination traffic that is uniform scans over the
  /// whole address space (worms/scanners: the stress tail).
  double ScanWeight = 0.05;
  /// Mean packet size in bytes; sizes are bimodal (ACKs vs full MTU).
  double SmallPacketProb = 0.6;

  /// A campus-gateway-like default: one dominant server /24, a busy
  /// client /16, CDN and DNS aggregates, plus scan noise.
  static NetworkSpec makeDefault();
};

/// Deterministic packet generator.
class NetworkModel {
public:
  explicit NetworkModel(const NetworkSpec &ModelSpec, uint64_t RunSeed = 0);

  /// Emits the next packet.
  PacketRecord next();

  /// Packets emitted so far.
  uint64_t packetsEmitted() const { return Emitted; }

  const NetworkSpec &spec() const { return Spec; }

private:
  uint32_t sampleAddr(const std::vector<NetworkSpec::Subnet> &Subnets,
                      const DiscreteDistribution &Dist,
                      const std::vector<std::unique_ptr<ZipfDistribution>>
                          &HostDists,
                      bool AllowScan);

  NetworkSpec Spec;
  Rng Generator;
  DiscreteDistribution DstDist;
  DiscreteDistribution SrcDist;
  std::vector<std::unique_ptr<ZipfDistribution>> DstHosts;
  std::vector<std::unique_ptr<ZipfDistribution>> SrcHosts;
  uint64_t Emitted = 0;
};

} // namespace rap

#endif // RAP_TRACE_NETWORKMODEL_H
