//===- trace/BenchmarkSpec.h - Synthetic benchmark parameters --*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter sets describing the synthetic stand-ins for the SPEC
/// benchmarks of the paper's evaluation (gcc, gzip, mcf, parser,
/// vortex, vpr, bzip2). Each spec fixes the *shape* facts the paper
/// states about a benchmark: how many distinct basic blocks it has,
/// how many >10% hot code regions, how its load values are distributed
/// (hot value 0, small-integer hierarchy, pointer clusters, tail
/// width), and where its zero-loads live in memory. See DESIGN.md for
/// the substitution argument.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_TRACE_BENCHMARKSPEC_H
#define RAP_TRACE_BENCHMARKSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace rap {

/// A contiguous group of basic blocks with a hotness weight.
struct CodeRegionSpec {
  /// Fraction of all blocks belonging to this region.
  double SizeFraction = 0.0;
  /// Fraction of dynamic block executions drawn from this region.
  double Weight = 0.0;
  /// Probability that a load issued from this region is a streaming
  /// (low temporal locality) access.
  double StreamingLoadProb = 0.1;
  /// Probability that a block in this region has a narrow operand.
  double NarrowOperandProb = 0.05;
  /// First phase in which this region executes at all (0 = from the
  /// start). Late-onset regions model code like gcc's backend passes:
  /// they force RAP to split deep paths late in the run, which is the
  /// paper's main source of hot-range percent error (Sec 4.3).
  unsigned OnsetPhase = 0;
};

/// One component of a load-value mixture.
struct ValueComponentSpec {
  enum class Kind {
    Point,      ///< A single hot value (Lo).
    Uniform,    ///< Uniform over [Lo, Hi].
    ZipfHashed, ///< Zipf over NumDistinct hashed values in [Lo, Hi].
  };
  Kind ComponentKind = Kind::Uniform;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  /// Weight for loads from normal (non-streaming) accesses.
  double Weight = 0.0;
  /// Weight for loads from streaming accesses. Streaming data (large
  /// scanned arrays) tends to carry zeros/small values, which is what
  /// makes cache-miss value locality exceed all-load locality (Fig 9).
  double StreamingWeight = 0.0;
  /// For ZipfHashed: number of distinct values and skew.
  uint64_t NumDistinct = 1;
  double ZipfExponent = 1.0;
  /// First phase in which this component produces values (0 = from
  /// the start). A hot value that only appears mid-run (e.g. vortex's
  /// zero-heavy database phase) drills its RAP path when thresholds
  /// are already large — the ~20% max error case of Sec 4.3.
  unsigned OnsetPhase = 0;
};

/// A memory segment of the synthetic address space.
struct MemorySegmentSpec {
  enum class Kind {
    Reuse,     ///< Zipf-distributed slots: high cache hit rate.
    Streaming, ///< Sequential strided scan: low hit rate.
  };
  Kind SegmentKind = Kind::Reuse;
  uint64_t Base = 0;
  uint64_t Size = 0;
  /// Weight among normal loads.
  double Weight = 0.0;
  /// Weight among streaming loads.
  double StreamingWeight = 0.0;
  /// For Reuse segments: skew of slot popularity.
  double ZipfExponent = 1.2;
  /// Number of addressable slots (Reuse) — each slot is 8 bytes.
  uint64_t NumSlots = 1;
  /// Streaming scan stride in bytes (power of two). The default of one
  /// cache line models strided record walks: every streamed load is a
  /// fresh line, i.e. a miss, which is what couples streamed (zero- and
  /// small-value-heavy) data to the cache-miss stream (Fig 9).
  uint64_t StrideBytes = 64;
  /// Probability that a load from this segment returns value zero,
  /// overriding the value mixture (models the paper's Fig 10 region
  /// where "any load ... has about 38% chance of being a zero").
  double ZeroValueProb = 0.0;
};

/// Complete description of one synthetic benchmark.
struct BenchmarkSpec {
  std::string Name;
  /// Base seed; callers may xor in their own run seed.
  uint64_t Seed = 1;

  // --- code side -------------------------------------------------------
  uint64_t NumBlocks = 10000;
  uint64_t CodeBase = 0x400000;
  /// Bytes between consecutive block start PCs.
  uint64_t BlockStride = 16;
  std::vector<CodeRegionSpec> Regions; ///< Hot regions; remainder is tail.
  /// Zipf skew of the background (non-region) block popularity.
  double BackgroundZipfExponent = 1.1;
  /// Mean length of a sequential intra-region block run (a loop body).
  double MeanRunLength = 8.0;
  /// Mean number of times a run repeats before control moves on (loop
  /// trip count). Tight loops re-execute the same blocks many times in
  /// a row, which is what the paper's stage-0 combining buffer exploits
  /// (Sec 3.3: a 1k buffer cuts code-profile throughput ~10x).
  double MeanLoopIterations = 8.0;
  /// Number of program phases; region weights are modulated per phase.
  unsigned NumPhases = 4;
  /// Events per phase (0 = single phase).
  uint64_t PhaseLength = 500000;
  /// Strength of phase modulation in [0, 1]: 0 = static weights.
  double PhaseModulation = 0.35;
  /// Probability a block execution issues a load.
  double LoadProb = 0.35;
  /// Index of the region that concentrates narrow operands (Sec 4.4's
  /// flow.c stand-in), or -1 for none.
  int NarrowRegion = -1;

  // --- value side ------------------------------------------------------
  std::vector<ValueComponentSpec> ValueComponents;

  // --- memory side -----------------------------------------------------
  std::vector<MemorySegmentSpec> Segments;
};

/// Returns the spec for benchmark \p Name (gcc, gzip, mcf, parser,
/// vortex, vpr, bzip2). Aborts on an unknown name; use
/// benchmarkNames() to enumerate.
BenchmarkSpec getBenchmarkSpec(const std::string &Name);

/// All registered benchmark names, in the paper's figure order.
const std::vector<std::string> &benchmarkNames();

} // namespace rap

#endif // RAP_TRACE_BENCHMARKSPEC_H
