//===- trace/BenchmarkRegistry.cpp - The seven SPEC stand-ins -------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameter sets for the synthetic stand-ins of the SPEC benchmarks in
/// the paper's evaluation. Each spec encodes the shape facts the paper
/// states (see DESIGN.md "Substitutions"):
///
///  - gcc:    the most distinct basic blocks; seven distinct >10% code
///            regions (Sec 4.1); zero loads concentrated in a few heap
///            ranges, one with a ~38% zero chance (Fig 10); narrow
///            operands concentrated in one file-sized region at ~38.7%
///            of all narrow ops (Sec 4.4).
///  - gzip:   load values in a nested small-integer hierarchy plus two
///            pointer clusters near 0x120000000 (Fig 5).
///  - mcf:    tiny hot loop nest, memory bound, heavy streaming.
///  - parser: the largest number of distinct load values (Sec 4.2).
///  - vortex: hottest single value is 0 (Sec 4.3's 20% error case).
///  - vpr:    floating-point bit-pattern clusters.
///  - bzip2:  byte-granularity data, values mostly in [0, 255].
///
//===----------------------------------------------------------------------===//

#include "trace/BenchmarkSpec.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace rap;

using VK = ValueComponentSpec::Kind;
using SK = MemorySegmentSpec::Kind;

static ValueComponentSpec point(uint64_t Value, double W, double SW) {
  ValueComponentSpec C;
  C.ComponentKind = VK::Point;
  C.Lo = C.Hi = Value;
  C.Weight = W;
  C.StreamingWeight = SW;
  return C;
}

static ValueComponentSpec uniform(uint64_t Lo, uint64_t Hi, double W,
                                  double SW) {
  ValueComponentSpec C;
  C.ComponentKind = VK::Uniform;
  C.Lo = Lo;
  C.Hi = Hi;
  C.Weight = W;
  C.StreamingWeight = SW;
  return C;
}

static ValueComponentSpec zipf(uint64_t Lo, uint64_t Hi, uint64_t Distinct,
                               double Exponent, double W, double SW) {
  ValueComponentSpec C;
  C.ComponentKind = VK::ZipfHashed;
  C.Lo = Lo;
  C.Hi = Hi;
  C.NumDistinct = Distinct;
  C.ZipfExponent = Exponent;
  C.Weight = W;
  C.StreamingWeight = SW;
  return C;
}

static MemorySegmentSpec reuse(uint64_t Base, uint64_t Slots, double ZipfExp,
                               double W, double SW, double ZeroProb = 0.0) {
  MemorySegmentSpec S;
  S.SegmentKind = SK::Reuse;
  S.Base = Base;
  S.NumSlots = Slots;
  S.Size = Slots * 8;
  S.ZipfExponent = ZipfExp;
  S.Weight = W;
  S.StreamingWeight = SW;
  S.ZeroValueProb = ZeroProb;
  return S;
}

static MemorySegmentSpec streaming(uint64_t Base, uint64_t Size, double W,
                                   double SW, double ZeroProb = 0.0) {
  MemorySegmentSpec S;
  S.SegmentKind = SK::Streaming;
  S.Base = Base;
  S.Size = Size;
  S.Weight = W;
  S.StreamingWeight = SW;
  S.ZeroValueProb = ZeroProb;
  return S;
}

static CodeRegionSpec region(double SizeFraction, double Weight,
                             double StreamingProb, double NarrowProb) {
  CodeRegionSpec R;
  R.SizeFraction = SizeFraction;
  R.Weight = Weight;
  R.StreamingLoadProb = StreamingProb;
  R.NarrowOperandProb = NarrowProb;
  return R;
}

/// Marks a value component or code region as starting at \p Phase.
template <typename SpecType>
static SpecType onset(SpecType Spec, unsigned Phase) {
  Spec.OnsetPhase = Phase;
  return Spec;
}

/// Common memory layout: a small stack and hot heap that stay DL1
/// resident, a mid-size heap that misses DL1 but fits DL2 (diverse
/// values), and a large scanned array that misses both levels and —
/// like real streamed data — carries mostly zeros and small values.
/// This is what gives cache misses *higher* value locality than the
/// load stream at large (the paper's Fig 9 conclusion). All addresses
/// stay below 2^44.
static void addDefaultSegments(BenchmarkSpec &Spec) {
  Spec.Segments.push_back(
      reuse(/*Base=*/0x7ff00000000ULL, /*Slots=*/1024, 1.1, 0.40, 0.04));
  Spec.Segments.push_back(
      reuse(/*Base=*/0x120000000ULL, /*Slots=*/2048, 1.0, 0.30, 0.06));
  Spec.Segments.push_back(
      reuse(/*Base=*/0x140000000ULL, /*Slots=*/256 * 1024, 0.8, 0.10, 0.10));
  Spec.Segments.push_back(streaming(/*Base=*/0x200000000ULL,
                                    /*Size=*/48ULL << 20, 0.20, 0.80,
                                    /*ZeroProb=*/0.30));
}

static BenchmarkSpec makeGcc() {
  BenchmarkSpec Spec;
  Spec.Name = "gcc";
  Spec.Seed = 0x67636300; // "gcc"
  Spec.NumBlocks = 45000;
  Spec.NumPhases = 6;
  Spec.PhaseLength = 400000;
  Spec.PhaseModulation = 0.85;
  Spec.MeanLoopIterations = 10.0;
  Spec.LoadProb = 0.36;
  Spec.BackgroundZipfExponent = 1.02;
  // Seven >10% regions (Sec 4.1). Region 2 is the flow.c stand-in.
  Spec.Regions.push_back(region(0.010, 0.13, 0.15, 0.11));
  Spec.Regions.push_back(region(0.012, 0.12, 0.20, 0.11));
  Spec.Regions.push_back(region(0.008, 0.12, 0.10, 0.50));
  Spec.Regions.push_back(region(0.015, 0.11, 0.55, 0.11));
  Spec.Regions.push_back(region(0.010, 0.11, 0.25, 0.11));
  Spec.Regions.push_back(onset(region(0.006, 0.10, 0.15, 0.11), 2));
  Spec.Regions.push_back(onset(region(0.009, 0.10, 0.35, 0.11), 3));
  Spec.NarrowRegion = 2;

  Spec.ValueComponents.push_back(point(0, 0.10, 0.30));
  Spec.ValueComponents.push_back(uniform(0x1, 0xff, 0.12, 0.25));
  Spec.ValueComponents.push_back(uniform(0x100, 0xffff, 0.10, 0.15));
  Spec.ValueComponents.push_back(
      uniform(0x11f000000ULL, 0x12fffffffULL, 0.12, 0.10));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 44) - 1, 400000, 0.85, 0.09, 0.10));
  // A narrow value cluster that only appears in gcc's late passes and
  // lives in otherwise untouched space: its whole RAP path must be
  // split at large n, the deep-and-narrow error case of Sec 4.3.
  Spec.ValueComponents.push_back(
      onset(uniform(0x7f0000000000ULL, 0x7f0000ffffffULL, 0.42, 0.10), 3));
  Spec.ValueComponents.push_back(
      uniform(0, (uint64_t(1) << 62) - 1, 0.05, 0.02));

  // Fig 10 zero-load geography: most zeros come from three heap
  // ranges; loads from [11fd00000, 11ff7ffff] are ~38% zeros.
  Spec.Segments.push_back(
      reuse(0x7ff00000000ULL, 1024, 1.1, 0.29, 0.04));
  Spec.Segments.push_back(reuse(0x120000000ULL, 2048, 1.0, 0.18, 0.06,
                                /*ZeroProb=*/0.12));
  Spec.Segments.push_back(reuse(0x11f000000ULL, /*Slots=*/0xD00000 / 8, 0.9,
                                0.07, 0.10, /*ZeroProb=*/0.22));
  Spec.Segments.push_back(reuse(0x11fd00000ULL, /*Slots=*/0x280000 / 8, 0.9,
                                0.30, 0.38, /*ZeroProb=*/0.38));
  Spec.Segments.push_back(reuse(0x11fec0000ULL, /*Slots=*/0x40000 / 8, 1.0,
                                0.06, 0.08, /*ZeroProb=*/0.45));
  Spec.Segments.push_back(streaming(0x200000000ULL, 48ULL << 20, 0.10, 0.36,
                                    /*ZeroProb=*/0.10));
  return Spec;
}

static BenchmarkSpec makeGzip() {
  BenchmarkSpec Spec;
  Spec.Name = "gzip";
  Spec.Seed = 0x677a6970; // "gzip"
  Spec.NumBlocks = 4000;
  Spec.NumPhases = 3;
  Spec.PhaseLength = 700000;
  Spec.PhaseModulation = 0.75;
  Spec.MeanLoopIterations = 24.0;
  Spec.LoadProb = 0.33;
  Spec.Regions.push_back(region(0.040, 0.32, 0.45, 0.20));
  Spec.Regions.push_back(region(0.030, 0.22, 0.30, 0.10));
  Spec.Regions.push_back(region(0.020, 0.16, 0.20, 0.06));

  // The nested small-integer hierarchy plus pointer clusters of Fig 5.
  Spec.ValueComponents.push_back(point(0, 0.03, 0.06));
  Spec.ValueComponents.push_back(uniform(0x0, 0xe, 0.13, 0.35));
  Spec.ValueComponents.push_back(uniform(0xf, 0xfe, 0.16, 0.28));
  Spec.ValueComponents.push_back(uniform(0xff, 0x3ffe, 0.11, 0.08));
  Spec.ValueComponents.push_back(uniform(0x3fff, 0x3fffe, 0.21, 0.07));
  Spec.ValueComponents.push_back(
      uniform(0x11ffffffdULL, 0x12000fffbULL, 0.10, 0.05));
  Spec.ValueComponents.push_back(
      uniform(0x12000fffcULL, 0x12001fffaULL, 0.12, 0.05));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 62) - 2, 100000, 0.9, 0.13, 0.05));
  Spec.ValueComponents.push_back(uniform(0, ~uint64_t(0) >> 1, 0.01, 0.00));

  // Like the default layout but with a mild zero override on the
  // streamed array: gzip's window data is bytes, not zero-filled
  // structs, so Fig 5's nested small-integer ranges dominate.
  Spec.Segments.push_back(reuse(0x7ff00000000ULL, 1024, 1.1, 0.40, 0.04));
  Spec.Segments.push_back(reuse(0x120000000ULL, 2048, 1.0, 0.30, 0.06));
  Spec.Segments.push_back(
      reuse(0x140000000ULL, 256 * 1024, 0.8, 0.10, 0.10));
  Spec.Segments.push_back(streaming(0x200000000ULL, 48ULL << 20, 0.20, 0.80,
                                    /*ZeroProb=*/0.08));
  return Spec;
}

static BenchmarkSpec makeMcf() {
  BenchmarkSpec Spec;
  Spec.Name = "mcf";
  Spec.Seed = 0x6d6366; // "mcf"
  Spec.NumBlocks = 1200;
  Spec.NumPhases = 2;
  Spec.PhaseLength = 900000;
  Spec.PhaseModulation = 0.60;
  Spec.MeanLoopIterations = 12.0;
  Spec.LoadProb = 0.55; // memory bound
  Spec.Regions.push_back(region(0.080, 0.48, 0.75, 0.08));
  Spec.Regions.push_back(region(0.050, 0.28, 0.60, 0.05));

  Spec.ValueComponents.push_back(onset(point(0, 0.14, 0.35), 1));
  Spec.ValueComponents.push_back(uniform(0x1, 0xffff, 0.20, 0.25));
  Spec.ValueComponents.push_back(
      uniform(0x120000000ULL, 0x123ffffffULL, 0.40, 0.25));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 40) - 1, 60000, 1.0, 0.18, 0.15));
  Spec.ValueComponents.push_back(
      uniform(0, (uint64_t(1) << 62) - 1, 0.10, 0.05));

  // mcf's network simplex chases pointers across a huge arena.
  Spec.Segments.push_back(reuse(0x7ff00000000ULL, 4096, 1.1, 0.20, 0.03));
  Spec.Segments.push_back(
      reuse(0x120000000ULL, 2 * 1024 * 1024, 0.55, 0.45, 0.37));
  Spec.Segments.push_back(
      streaming(0x200000000ULL, 96ULL << 20, 0.35, 0.60, /*ZeroProb=*/0.20));
  return Spec;
}

static BenchmarkSpec makeParser() {
  BenchmarkSpec Spec;
  Spec.Name = "parser";
  Spec.Seed = 0x706172; // "par"
  Spec.NumBlocks = 16000;
  Spec.NumPhases = 5;
  Spec.PhaseLength = 450000;
  Spec.PhaseModulation = 0.90;
  Spec.MeanLoopIterations = 8.0;
  Spec.LoadProb = 0.40;
  Spec.Regions.push_back(region(0.010, 0.14, 0.20, 0.10));
  Spec.Regions.push_back(region(0.012, 0.12, 0.25, 0.08));
  Spec.Regions.push_back(region(0.010, 0.11, 0.15, 0.06));
  Spec.Regions.push_back(region(0.008, 0.10, 0.30, 0.05));
  Spec.Regions.push_back(region(0.010, 0.09, 0.20, 0.05));

  // The widest value universe of the suite (Sec 4.2: parser needs the
  // most value-profile nodes): a weakly skewed tail over ~1.2M
  // distinct values.
  Spec.ValueComponents.push_back(point(0, 0.08, 0.25));
  Spec.ValueComponents.push_back(uniform(0x1, 0xffff, 0.15, 0.20));
  Spec.ValueComponents.push_back(
      onset(uniform(0x110000000ULL, 0x11fffffffULL, 0.16, 0.10), 1));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 52) - 1, 1500000, 0.62, 0.51, 0.40));
  Spec.ValueComponents.push_back(
      uniform(0, (uint64_t(1) << 62) - 1, 0.10, 0.05));

  addDefaultSegments(Spec);
  return Spec;
}

static BenchmarkSpec makeVortex() {
  BenchmarkSpec Spec;
  Spec.Name = "vortex";
  Spec.Seed = 0x766f7274; // "vort"
  Spec.NumBlocks = 24000;
  Spec.NumPhases = 4;
  Spec.PhaseLength = 500000;
  Spec.PhaseModulation = 0.80;
  Spec.MeanLoopIterations = 6.0;
  Spec.LoadProb = 0.38;
  Spec.Regions.push_back(region(0.012, 0.16, 0.20, 0.10));
  Spec.Regions.push_back(region(0.010, 0.14, 0.15, 0.08));
  Spec.Regions.push_back(region(0.008, 0.12, 0.25, 0.06));
  Spec.Regions.push_back(region(0.012, 0.11, 0.20, 0.06));
  Spec.Regions.push_back(region(0.008, 0.10, 0.30, 0.05));

  // Hottest value is 0, and it only becomes hot once the database
  // lookup phase starts mid-run — that late onset makes RAP drill the
  // path to [0, 0] when thresholds are already large, reproducing the
  // ~20% max error case of Sec 4.3.
  Spec.ValueComponents.push_back(onset(point(0, 0.42, 0.75), 2));
  Spec.ValueComponents.push_back(uniform(0x1, 0xffff, 0.18, 0.15));
  Spec.ValueComponents.push_back(
      uniform(0x130000000ULL, 0x133ffffffULL, 0.15, 0.08));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 40) - 1, 30000, 1.3, 0.35, 0.25));
  Spec.ValueComponents.push_back(
      uniform(0, (uint64_t(1) << 62) - 1, 0.10, 0.07));

  // Custom segments: no segment-forced zeros, so value 0 is genuinely
  // absent until the mixture's onset phase — the precondition for the
  // paper's 20% error anecdote (a late hot value pays one threshold of
  // parked counts per level of its freshly split path).
  Spec.Segments.push_back(reuse(0x7ff00000000ULL, 1024, 1.1, 0.40, 0.04));
  Spec.Segments.push_back(reuse(0x120000000ULL, 2048, 1.0, 0.30, 0.06));
  Spec.Segments.push_back(
      reuse(0x140000000ULL, 256 * 1024, 0.8, 0.10, 0.10));
  Spec.Segments.push_back(
      streaming(0x200000000ULL, 48ULL << 20, 0.20, 0.80));
  return Spec;
}

static BenchmarkSpec makeVpr() {
  BenchmarkSpec Spec;
  Spec.Name = "vpr";
  Spec.Seed = 0x767072; // "vpr"
  Spec.NumBlocks = 7000;
  Spec.NumPhases = 4;
  Spec.PhaseLength = 550000;
  Spec.PhaseModulation = 0.80;
  Spec.MeanLoopIterations = 16.0;
  Spec.LoadProb = 0.34;
  Spec.Regions.push_back(region(0.030, 0.35, 0.25, 0.12));
  Spec.Regions.push_back(region(0.025, 0.25, 0.20, 0.08));
  Spec.Regions.push_back(region(0.015, 0.12, 0.35, 0.06));

  // Placement/routing works on doubles: bit patterns cluster around
  // the IEEE-754 exponents for [0.5, 1) and [2, 4), with the mantissa
  // high bits dominating (coarse-grained cost values).
  Spec.ValueComponents.push_back(point(0, 0.10, 0.30));
  Spec.ValueComponents.push_back(
      uniform(0x3fe0000000000000ULL, 0x3fe00fffffffffffULL, 0.27, 0.15));
  Spec.ValueComponents.push_back(
      onset(uniform(0x4000000000000000ULL, 0x4000ffffffffffffULL, 0.31, 0.15),
            2));
  Spec.ValueComponents.push_back(uniform(0x1, 0xffff, 0.20, 0.25));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 62) - 1, 150000, 0.9, 0.12, 0.15));

  addDefaultSegments(Spec);
  return Spec;
}

static BenchmarkSpec makeBzip2() {
  BenchmarkSpec Spec;
  Spec.Name = "bzip2";
  Spec.Seed = 0x627a6970; // "bzip"
  Spec.NumBlocks = 2600;
  Spec.NumPhases = 3;
  Spec.PhaseLength = 650000;
  Spec.PhaseModulation = 0.70;
  Spec.MeanLoopIterations = 32.0;
  Spec.LoadProb = 0.37;
  Spec.Regions.push_back(region(0.060, 0.45, 0.40, 0.30));
  Spec.Regions.push_back(region(0.040, 0.30, 0.30, 0.15));

  // Byte-oriented compressor: values are overwhelmingly small.
  Spec.ValueComponents.push_back(point(0, 0.10, 0.25));
  Spec.ValueComponents.push_back(uniform(0x1, 0xff, 0.45, 0.40));
  Spec.ValueComponents.push_back(onset(uniform(0x100, 0xffff, 0.20, 0.15), 1));
  Spec.ValueComponents.push_back(
      zipf(0, (uint64_t(1) << 32) - 1, 80000, 1.0, 0.20, 0.15));
  Spec.ValueComponents.push_back(
      uniform(0, (uint64_t(1) << 62) - 1, 0.05, 0.05));

  addDefaultSegments(Spec);
  return Spec;
}

const std::vector<std::string> &rap::benchmarkNames() {
  static const std::vector<std::string> Names = {
      "gcc", "gzip", "mcf", "parser", "vortex", "vpr", "bzip2"};
  return Names;
}

BenchmarkSpec rap::getBenchmarkSpec(const std::string &Name) {
  if (Name == "gcc")
    return makeGcc();
  if (Name == "gzip")
    return makeGzip();
  if (Name == "mcf")
    return makeMcf();
  if (Name == "parser")
    return makeParser();
  if (Name == "vortex")
    return makeVortex();
  if (Name == "vpr")
    return makeVpr();
  if (Name == "bzip2")
    return makeBzip2();
  std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name.c_str());
  std::abort();
}
