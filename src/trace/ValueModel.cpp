//===- trace/ValueModel.cpp - Synthetic load-value mixtures --------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "trace/ValueModel.h"

#include <algorithm>
#include <cassert>

using namespace rap;

static uint64_t mixHash(uint64_t X, uint64_t Salt) {
  uint64_t Z = X ^ Salt;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

ValueModel::ValueModel(const BenchmarkSpec &Spec, uint64_t Seed)
    : Components(Spec.ValueComponents), HashSalt(Seed ^ 0x76616c7565ULL) {
  assert(!Components.empty() && "value mixture needs components");
  for (const ValueComponentSpec &Component : Components) {
    if (Component.ComponentKind == ValueComponentSpec::Kind::ZipfHashed)
      ComponentZipf.push_back(std::make_unique<ZipfDistribution>(
          Component.NumDistinct, Component.ZipfExponent));
    else
      ComponentZipf.push_back(nullptr);
  }

  // Distinct onset phases define the steps at which the mixture
  // changes; build one (normal, streaming) distribution pair per step.
  OnsetSteps.push_back(0);
  for (const ValueComponentSpec &Component : Components)
    OnsetSteps.push_back(Component.OnsetPhase);
  std::sort(OnsetSteps.begin(), OnsetSteps.end());
  OnsetSteps.erase(std::unique(OnsetSteps.begin(), OnsetSteps.end()),
                   OnsetSteps.end());
  for (unsigned Step : OnsetSteps) {
    std::vector<double> Normal;
    std::vector<double> Streaming;
    double Any = 0.0;
    for (const ValueComponentSpec &Component : Components) {
      bool Started = Step >= Component.OnsetPhase;
      Normal.push_back(Started ? Component.Weight : 0.0);
      Streaming.push_back(Started ? Component.StreamingWeight : 0.0);
      Any += Normal.back() + Streaming.back();
    }
    assert(Any > 0.0 && "no component active in some phase");
    (void)Any;
    NormalDist.push_back(std::make_unique<DiscreteDistribution>(Normal));
    StreamingDist.push_back(
        std::make_unique<DiscreteDistribution>(Streaming));
  }
}

uint64_t ValueModel::sampleComponent(Rng &R,
                                     const ValueComponentSpec &Component,
                                     const ZipfDistribution *Zipf) const {
  switch (Component.ComponentKind) {
  case ValueComponentSpec::Kind::Point:
    return Component.Lo;
  case ValueComponentSpec::Kind::Uniform:
    return R.nextInRange(Component.Lo, Component.Hi);
  case ValueComponentSpec::Kind::ZipfHashed: {
    assert(Zipf && "Zipf component without sampler");
    uint64_t Rank = Zipf->sample(R);
    // Scatter ranks pseudo-randomly over [Lo, Hi] so the component's
    // distinct values are spread through its range.
    uint64_t Span = Component.Hi - Component.Lo;
    uint64_t H = mixHash(Rank, HashSalt);
    return Component.Lo + (Span == ~uint64_t(0) ? H : H % (Span + 1));
  }
  }
  assert(false && "unknown component kind");
  return 0;
}

uint64_t ValueModel::sample(Rng &R, bool Streaming, unsigned Phase) const {
  // Find the last onset step not beyond Phase.
  size_t Step = 0;
  while (Step + 1 < OnsetSteps.size() && OnsetSteps[Step + 1] <= Phase)
    ++Step;
  const DiscreteDistribution &Dist =
      Streaming ? *StreamingDist[Step] : *NormalDist[Step];
  uint64_t Index = Dist.sample(R);
  return sampleComponent(R, Components[Index], ComponentZipf[Index].get());
}
