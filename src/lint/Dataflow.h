//===- lint/Dataflow.h - Forward dataflow over lint CFGs ------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward worklist solver over lint::Cfg. Rules pick the
/// lattice by choosing the join:
///
///   * may-analyses (use-after-move, counter taint) join by union —
///     a fact holds if it holds on ANY path into the block;
///   * must-analyses (lock-discipline) join by intersection — a fact
///     holds only if it holds on EVERY path into the block. Blocks
///     not yet visited contribute nothing (top), so intersection
///     starts from the first reached predecessor.
///
/// The transfer function maps a block's entry state to its exit state
/// by walking its Actions; findings are emitted on a separate final
/// pass once states converge.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_DATAFLOW_H
#define RAP_LINT_DATAFLOW_H

#include "lint/Cfg.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace rap {
namespace lint {

/// Dataflow facts are sets of variable (or mutex) names.
using FactSet = std::set<std::string>;

/// The converged per-block entry states plus reachability.
struct DataflowResult {
  std::vector<FactSet> EntryState; ///< Index-aligned with Cfg blocks.
  std::vector<bool> Reached;       ///< From the entry block.
};

enum class JoinKind {
  Union,       ///< May-analysis.
  Intersection ///< Must-analysis; unreached preds are top.
};

/// Runs a forward worklist analysis to a fixed point. \p Transfer
/// maps (block, entry-state) to the block's exit state; it must be
/// monotone in the lattice implied by \p Join or iteration may not
/// terminate (with name-set facts over one function this is easy to
/// satisfy and cheap to iterate).
inline DataflowResult
solveForward(const Cfg &G, JoinKind Join, const FactSet &EntryFacts,
             const std::function<FactSet(const BasicBlock &, FactSet)>
                 &Transfer) {
  DataflowResult R;
  R.EntryState.assign(G.Blocks.size(), {});
  R.Reached.assign(G.Blocks.size(), false);
  R.Reached[Cfg::Entry] = true;
  R.EntryState[Cfg::Entry] = EntryFacts;

  std::deque<size_t> Worklist{Cfg::Entry};
  std::vector<bool> Queued(G.Blocks.size(), false);
  Queued[Cfg::Entry] = true;

  while (!Worklist.empty()) {
    size_t Id = Worklist.front();
    Worklist.pop_front();
    Queued[Id] = false;

    FactSet Out = Transfer(G.Blocks[Id], R.EntryState[Id]);
    for (size_t Succ : G.Blocks[Id].Succs) {
      FactSet Merged;
      if (!R.Reached[Succ]) {
        Merged = Out;
      } else if (Join == JoinKind::Union) {
        Merged = R.EntryState[Succ];
        Merged.insert(Out.begin(), Out.end());
      } else {
        std::set_intersection(
            R.EntryState[Succ].begin(), R.EntryState[Succ].end(),
            Out.begin(), Out.end(),
            std::inserter(Merged, Merged.begin()));
      }
      if (R.Reached[Succ] && Merged == R.EntryState[Succ])
        continue;
      R.Reached[Succ] = true;
      R.EntryState[Succ] = std::move(Merged);
      if (!Queued[Succ]) {
        Queued[Succ] = true;
        Worklist.push_back(Succ);
      }
    }
  }
  return R;
}

} // namespace lint
} // namespace rap

#endif // RAP_LINT_DATAFLOW_H
