//===- lint/Lexer.h - Token stream for the RAP source linter --*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight C++ lexer for rap_lint. It is not a compiler front
/// end: it only needs to be exact about the things source-level rules
/// trip over — comments, string/char literals (including raw strings),
/// preprocessor logical lines, and multi-character operators — so that
/// rule matching runs on real tokens instead of raw text. Comment text
/// is dropped except for `rap-lint: allow(<rule>, ...)` markers, which
/// are collected per line for the suppression pass.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_LEXER_H
#define RAP_LINT_LEXER_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rap {
namespace lint {

/// One lexed token.
struct Token {
  enum class Kind {
    Identifier, ///< Identifiers and keywords, Text is the spelling.
    Number,     ///< Numeric literal (pp-number, approximately).
    String,     ///< String literal; Text is the uninterpreted contents.
    CharLit,    ///< Character literal; contents dropped.
    Punct,      ///< Operator / punctuator, longest-match spelling.
    Directive,  ///< Whole preprocessor logical line, e.g. "#include <x>".
  };

  Kind TokenKind;
  std::string Text;
  unsigned Line; ///< 1-based line of the token's first character.
};

/// The result of lexing one file.
struct LexedSource {
  std::vector<Token> Tokens;

  /// Rules suppressed per 1-based line via `rap-lint: allow(...)`
  /// comments. A marker shares the line it suppresses; a marker on a
  /// line of its own also suppresses the following line.
  std::map<unsigned, std::set<std::string>> AllowedRules;

  /// One entry per rule name per marker comment, at the line the
  /// marker was written. Used to reject unknown rule names exactly
  /// once however many lines the marker covers.
  std::vector<std::pair<unsigned, std::string>> AllowMarkers;
};

/// Lexes \p Content. Never fails: malformed input degrades to
/// best-effort tokens, which at worst costs a rule a match.
LexedSource lex(const std::string &Content);

} // namespace lint
} // namespace rap

#endif // RAP_LINT_LEXER_H
