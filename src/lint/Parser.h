//===- lint/Parser.h - Statement parser for the RAP linter ----*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight C++ statement parser on top of lint::Lexer. It
/// recovers just enough structure for flow-aware rules: function
/// definitions (including lambdas and class methods), the statement
/// tree inside each body (compounds, branches, loops, switch labels,
/// goto/label, try/catch), per-file function signatures, and the
/// RAP_GUARDED_BY / RAP_REQUIRES annotations from
/// support/Annotations.h.
///
/// Like the lexer it is not a compiler front end: declarations it
/// cannot classify degrade to opaque expression statements, and a
/// construct it misparses costs a rule a match, never a false finding
/// fabricated from thin air. Statements reference tokens by index
/// into the LexedSource they were parsed from, which must outlive the
/// ParsedFile.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_PARSER_H
#define RAP_LINT_PARSER_H

#include "lint/Lexer.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rap {
namespace lint {

/// Statement kinds the parser distinguishes.
enum class StmtKind {
  Compound,  ///< { ... }; Children are the statements in order.
  If,        ///< Expr = condition; Children[0] then, Children[1] else?
  While,     ///< Expr = condition; Children[0] body.
  DoWhile,   ///< Children[0] body; Expr = condition.
  For,       ///< Init/Expr(cond)/Inc header ranges; Children[0] body.
  Switch,    ///< Expr = condition; Children[0] body compound.
  CaseLabel, ///< `case X:` / `default:` marker; Name is the spelling.
  Return,    ///< Expr = returned expression (may be empty).
  Break,     ///< No payload.
  Continue,  ///< No payload.
  Goto,      ///< Name = target label.
  Label,     ///< `name:` marker; Name = label.
  Try,       ///< Children[0] body, Children[1..] Catch handlers.
  Catch,     ///< Expr = exception declaration; Children[0] body.
  Expr,      ///< Expression statement; Expr = full token range.
  Decl,      ///< Declaration statement; Expr = full token range.
};

/// One parsed statement. Token positions are half-open index ranges
/// into the LexedSource's token vector.
struct Stmt {
  StmtKind Kind;
  unsigned Line = 0; ///< Line of the statement's first token.
  size_t ExprBegin = 0, ExprEnd = 0; ///< Condition / full expression.
  size_t InitBegin = 0, InitEnd = 0; ///< `for` init (or range decl).
  size_t IncBegin = 0, IncEnd = 0;   ///< `for` increment.
  /// Range-based for: Init is the loop declaration, which re-binds on
  /// EVERY iteration (the CFG emits it inside the loop body).
  bool RangeFor = false;
  std::string Name; ///< Label / goto target / case spelling.
  std::vector<std::unique_ptr<Stmt>> Children;
};

/// One function definition with a parsed body.
struct Function {
  std::string Name; ///< Unqualified; lambdas get "<lambda@LINE>".
  unsigned Line = 0;
  size_t ParamBegin = 0, ParamEnd = 0; ///< Tokens inside the parens.
  std::vector<std::string> RequiredLocks; ///< From RAP_REQUIRES(...).
  bool IsLambda = false;
  std::unique_ptr<Stmt> Body; ///< Always a Compound.
};

/// A function signature (declaration or definition) seen at namespace
/// or class scope, for per-file return-type lookups.
struct Signature {
  std::string Name;
  std::string ReturnType; ///< Leading type tokens joined by spaces.
  unsigned Line = 0;
  bool IsDefinition = false;
  bool AtClassScope = false; ///< Defined/declared inside a class body.
  bool MarkedInline = false; ///< inline/constexpr/static/template/...
};

/// Everything the parser recovers from one file.
struct ParsedFile {
  std::vector<std::unique_ptr<Function>> Functions; ///< Incl. lambdas.
  std::vector<Signature> Signatures;
  /// (variable, mutex) pairs from `var RAP_GUARDED_BY(mutex)` uses.
  std::vector<std::pair<std::string, std::string>> GuardedVars;
  /// Token ranges of lambda bodies, so expression scans over an
  /// enclosing statement can mask out nested-function tokens.
  std::vector<std::pair<size_t, size_t>> LambdaBodies;
};

/// Parses \p Src. Never fails; unparseable regions produce no
/// functions rather than bogus ones.
ParsedFile parseFile(const LexedSource &Src);

} // namespace lint
} // namespace rap

#endif // RAP_LINT_PARSER_H
