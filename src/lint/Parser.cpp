//===- lint/Parser.cpp - Statement parser for the RAP linter -------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/Parser.h"

#include <set>

using namespace rap;
using namespace rap::lint;

namespace {

bool isPunct(const Token &T, const char *Spelling) {
  return T.TokenKind == Token::Kind::Punct && T.Text == Spelling;
}

bool isIdent(const Token &T, const char *Name) {
  return T.TokenKind == Token::Kind::Identifier && T.Text == Name;
}

bool isKeyword(const std::string &Name) {
  static const std::set<std::string> Keywords = {
      "if",       "else",     "while",   "do",        "for",
      "switch",   "case",     "default", "return",    "break",
      "continue", "goto",     "try",     "catch",     "throw",
      "new",      "delete",   "sizeof",  "alignof",   "typeid",
      "class",    "struct",   "union",   "enum",      "namespace",
      "template", "typename", "using",   "typedef",   "operator",
      "public",   "private",  "protected", "friend",  "static_assert",
      "int",      "unsigned", "signed",  "long",      "short",
      "char",     "bool",     "float",   "double",    "void",
      "auto",     "const",    "volatile", "constexpr", "consteval",
      "constinit", "static",  "inline",  "extern",    "mutable",
      "virtual",  "explicit", "noexcept", "decltype", "requires",
      "co_return", "co_await", "co_yield", "this",    "nullptr",
      "true",     "false",    "and",     "or",        "not"};
  return Keywords.count(Name) != 0;
}

/// Specifier keywords that may precede a declaration without being
/// part of the return type proper.
bool isDeclSpecifier(const std::string &Name) {
  static const std::set<std::string> Specifiers = {
      "static",   "inline",   "constexpr", "consteval", "constinit",
      "virtual",  "explicit", "extern",    "friend",    "typedef",
      "mutable",  "RAP_NOEXCEPT"};
  return Specifiers.count(Name) != 0;
}

/// Type keywords that make a statement-position token sequence a
/// declaration head.
bool isTypeKeyword(const std::string &Name) {
  static const std::set<std::string> Types = {
      "int",    "unsigned", "signed", "long",  "short",   "char",
      "bool",   "float",    "double", "void",  "auto",    "const",
      "volatile"};
  return Types.count(Name) != 0;
}

class ParserImpl {
public:
  explicit ParserImpl(const LexedSource &Source)
      : Src(Source), T(Source.Tokens) {}

  ParsedFile run() {
    collectGuardedVars();
    scanDeclScope(0, T.size(), /*AtClassScope=*/false);
    return std::move(Out);
  }

private:
  const LexedSource &Src;
  const std::vector<Token> &T;
  ParsedFile Out;

  //===--------------------------------------------------------------===//
  // Token utilities
  //===--------------------------------------------------------------===//

  /// Index of the token past the close matching the opener at \p I
  /// (which must be the opener), or \p End if unbalanced.
  size_t skipMatched(size_t I, size_t End, const char *Open,
                     const char *Close) const {
    unsigned Depth = 0;
    for (; I < End; ++I) {
      if (isPunct(T[I], Open))
        ++Depth;
      else if (isPunct(T[I], Close) && --Depth == 0)
        return I + 1;
    }
    return End;
  }

  /// Skips a template argument block starting at `<`. Treats `>>` as
  /// two closers; gives up (returns \p I + 1) if no closer is found
  /// within the statement, so comparison operators cannot derail us.
  size_t skipAngles(size_t I, size_t End) const {
    unsigned Depth = 0;
    for (size_t J = I; J < End; ++J) {
      if (isPunct(T[J], "<"))
        ++Depth;
      else if (isPunct(T[J], ">")) {
        if (--Depth == 0)
          return J + 1;
      } else if (isPunct(T[J], ">>")) {
        if (Depth <= 2)
          return J + 1;
        Depth -= 2;
      } else if (isPunct(T[J], ";") || isPunct(T[J], "{")) {
        break; // Not template args after all.
      }
    }
    return I + 1;
  }

  //===--------------------------------------------------------------===//
  // Annotations
  //===--------------------------------------------------------------===//

  /// `var RAP_GUARDED_BY(mutex)` anywhere in the file: the guarded
  /// variable is the identifier immediately before the macro.
  void collectGuardedVars() {
    for (size_t I = 1; I + 2 < T.size(); ++I) {
      if (!isIdent(T[I], "RAP_GUARDED_BY") || !isPunct(T[I + 1], "(") ||
          T[I + 2].TokenKind != Token::Kind::Identifier)
        continue;
      if (T[I - 1].TokenKind != Token::Kind::Identifier)
        continue;
      Out.GuardedVars.emplace_back(T[I - 1].Text, T[I + 2].Text);
    }
  }

  /// Collects `RAP_REQUIRES(m1, m2)` mutex names from the specifier
  /// region [Begin, End).
  std::vector<std::string> collectRequires(size_t Begin, size_t End) const {
    std::vector<std::string> Locks;
    for (size_t I = Begin; I < End; ++I) {
      if (!isIdent(T[I], "RAP_REQUIRES") || I + 1 >= End ||
          !isPunct(T[I + 1], "("))
        continue;
      size_t Close = skipMatched(I + 1, End, "(", ")");
      for (size_t J = I + 2; J + 1 < Close; ++J)
        if (T[J].TokenKind == Token::Kind::Identifier)
          Locks.push_back(T[J].Text);
      I = Close - 1;
    }
    return Locks;
  }

  //===--------------------------------------------------------------===//
  // Declaration-scope scanning (namespace / class bodies)
  //===--------------------------------------------------------------===//

  void scanDeclScope(size_t Begin, size_t End, bool AtClassScope) {
    size_t I = Begin;
    while (I < End) {
      const Token &Tok = T[I];
      if (Tok.TokenKind == Token::Kind::Directive) {
        ++I;
        continue;
      }
      if (isIdent(Tok, "namespace")) {
        size_t J = I + 1;
        while (J < End && !isPunct(T[J], "{") && !isPunct(T[J], ";") &&
               !isPunct(T[J], "="))
          ++J;
        if (J < End && isPunct(T[J], "{")) {
          size_t Close = skipMatched(J, End, "{", "}");
          scanDeclScope(J + 1, Close - 1, /*AtClassScope=*/false);
          I = Close;
        } else {
          I = J + 1; // Alias or malformed; skip to next construct.
        }
        continue;
      }
      if (isIdent(Tok, "extern") && I + 2 < End &&
          T[I + 1].TokenKind == Token::Kind::String &&
          isPunct(T[I + 2], "{")) {
        size_t Close = skipMatched(I + 2, End, "{", "}");
        scanDeclScope(I + 3, Close - 1, AtClassScope);
        I = Close;
        continue;
      }
      if (isIdent(Tok, "template")) {
        I = I + 1 < End && isPunct(T[I + 1], "<") ? skipAngles(I + 1, End)
                                                  : I + 1;
        // The declaration that follows is scanned normally; its
        // Signature records MarkedInline (templates are exempt from
        // ODR concerns).
        scanOneDeclaration(I, End, AtClassScope, /*AfterTemplate=*/true);
        continue;
      }
      if (isIdent(Tok, "class") || isIdent(Tok, "struct") ||
          isIdent(Tok, "union") || isIdent(Tok, "enum")) {
        size_t J = I + 1;
        // Find the body or the end of a forward declaration; base
        // clauses may contain template args but no braces/semicolons.
        while (J < End && !isPunct(T[J], "{") && !isPunct(T[J], ";"))
          ++J;
        if (J < End && isPunct(T[J], "{")) {
          size_t Close = skipMatched(J, End, "{", "}");
          if (!isIdent(Tok, "enum"))
            scanDeclScope(J + 1, Close - 1, /*AtClassScope=*/true);
          // Skip any trailing declarator list (`} x, y;`).
          I = Close;
          while (I < End && !isPunct(T[I], ";"))
            ++I;
          ++I;
        } else {
          I = J + 1;
        }
        continue;
      }
      if (isPunct(Tok, ";") || isPunct(Tok, ":")) {
        ++I; // Stray semicolon or access specifier's colon.
        continue;
      }
      scanOneDeclaration(I, End, AtClassScope, /*AfterTemplate=*/false);
    }
  }

  /// Scans one declaration starting at \p I (advanced past it on
  /// return). Emits a Function if it turns out to be a definition
  /// with a body, and a Signature when it looks like a function.
  void scanOneDeclaration(size_t &I, size_t End, bool AtClassScope,
                          bool AfterTemplate) {
    size_t DeclBegin = I;
    size_t ParamOpen = T.size(); // First plausible parameter list.
    unsigned Paren = 0;
    bool SawAssign = false;
    size_t J = I;
    for (; J < End; ++J) {
      const Token &Tok = T[J];
      if (Tok.TokenKind == Token::Kind::Directive)
        continue;
      if (isPunct(Tok, "(")) {
        if (Paren == 0 && ParamOpen == T.size() && J > DeclBegin &&
            T[J - 1].TokenKind == Token::Kind::Identifier &&
            !isKeyword(T[J - 1].Text))
          ParamOpen = J;
        ++Paren;
        continue;
      }
      if (isPunct(Tok, ")")) {
        if (Paren > 0)
          --Paren;
        continue;
      }
      if (Paren > 0)
        continue;
      if (isPunct(Tok, "="))
        SawAssign = true;
      if (isPunct(Tok, ";"))
        break;
      if (isPunct(Tok, "{")) {
        if (SawAssign) { // Brace initializer: skip it, keep scanning.
          J = skipMatched(J, End, "{", "}") - 1;
          continue;
        }
        break;
      }
    }

    if (J >= End || isPunct(T[J], ";")) {
      // Declaration only. Record a signature if it had a param list.
      if (ParamOpen != T.size())
        recordSignature(DeclBegin, ParamOpen, AtClassScope, AfterTemplate,
                        /*IsDefinition=*/false);
      I = J + 1;
      return;
    }

    // A top-level `{`. A function definition needs a parameter list;
    // anything else (weird aggregate, misparse) is skipped opaquely.
    size_t BodyOpen = J;
    size_t Close = skipMatched(BodyOpen, End, "{", "}");
    if (ParamOpen == T.size()) {
      I = Close;
      // Skip a trailing `;` if present.
      if (I < End && isPunct(T[I], ";"))
        ++I;
      return;
    }

    size_t ParamClose = skipMatched(ParamOpen, End, "(", ")") - 1;
    Signature Sig = recordSignature(DeclBegin, ParamOpen, AtClassScope,
                                    AfterTemplate, /*IsDefinition=*/true);

    auto Fn = std::make_unique<Function>();
    Fn->Name = Sig.Name;
    Fn->Line = T[ParamOpen].Line;
    Fn->ParamBegin = ParamOpen + 1;
    Fn->ParamEnd = ParamClose;
    Fn->RequiredLocks = collectRequires(ParamClose, BodyOpen);
    size_t BodyCursor = BodyOpen;
    Fn->Body = parseCompound(BodyCursor, End);
    Out.Functions.push_back(std::move(Fn));

    I = Close;
    // Function-try-blocks: consume trailing catch clauses opaquely.
    while (I < End && isIdent(T[I], "catch")) {
      size_t P = I + 1 < End && isPunct(T[I + 1], "(")
                     ? skipMatched(I + 1, End, "(", ")")
                     : I + 1;
      I = P < End && isPunct(T[P], "{") ? skipMatched(P, End, "{", "}") : P;
    }
  }

  Signature recordSignature(size_t DeclBegin, size_t ParamOpen,
                            bool AtClassScope, bool AfterTemplate,
                            bool IsDefinition) {
    Signature Sig;
    Sig.Name = T[ParamOpen - 1].Text;
    Sig.Line = T[ParamOpen - 1].Line;
    Sig.IsDefinition = IsDefinition;
    Sig.AtClassScope = AtClassScope;
    Sig.MarkedInline = AfterTemplate;
    // Return type: declaration tokens up to the declarator name,
    // minus specifiers and the qualifying `A::B::` chain.
    size_t TypeEnd = ParamOpen - 1;
    while (TypeEnd >= 2 && isPunct(T[TypeEnd - 1], "::"))
      TypeEnd -= 2; // Drop `Qualifier ::` pairs before the name.
    for (size_t K = DeclBegin; K < TypeEnd; ++K) {
      if (T[K].TokenKind == Token::Kind::Directive)
        continue;
      const std::string &Text = T[K].Text;
      if (T[K].TokenKind == Token::Kind::Identifier &&
          isDeclSpecifier(Text)) {
        if (Text == "inline" || Text == "constexpr" ||
            Text == "consteval" || Text == "static" || Text == "friend")
          Sig.MarkedInline = true;
        continue;
      }
      if (isPunct(T[K], "[") && K + 1 < TypeEnd && isPunct(T[K + 1], "[")) {
        K = skipMatched(K + 1, TypeEnd, "[", "]");
        continue; // [[attributes]]
      }
      if (!Sig.ReturnType.empty())
        Sig.ReturnType += ' ';
      Sig.ReturnType += Text;
    }
    Out.Signatures.push_back(Sig);
    return Sig;
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  std::unique_ptr<Stmt> makeStmt(StmtKind Kind, size_t At) {
    auto S = std::make_unique<Stmt>();
    S->Kind = Kind;
    S->Line = At < T.size() ? T[At].Line : 0;
    return S;
  }

  /// Parses the compound whose `{` is at \p I; advances \p I past the
  /// matching `}`.
  std::unique_ptr<Stmt> parseCompound(size_t &I, size_t End) {
    auto S = makeStmt(StmtKind::Compound, I);
    size_t Close = skipMatched(I, End, "{", "}") - 1;
    ++I;
    while (I < Close)
      S->Children.push_back(parseStmt(I, Close));
    I = Close + 1;
    return S;
  }

  /// Parses the parenthesized head at \p I (must be `(`); stores the
  /// contents as [ExprBegin, ExprEnd) and advances past `)`.
  void parseParenInto(size_t &I, size_t End, Stmt &S) {
    if (I >= End || !isPunct(T[I], "(")) {
      S.ExprBegin = S.ExprEnd = I;
      return;
    }
    size_t Close = skipMatched(I, End, "(", ")") - 1;
    S.ExprBegin = I + 1;
    S.ExprEnd = Close;
    I = Close + 1;
  }

  std::unique_ptr<Stmt> parseStmt(size_t &I, size_t End) {
    if (I >= End)
      return makeStmt(StmtKind::Expr, I);
    const Token &Tok = T[I];

    if (Tok.TokenKind == Token::Kind::Directive) {
      auto S = makeStmt(StmtKind::Expr, I);
      S->ExprBegin = S->ExprEnd = I;
      ++I;
      return S;
    }
    if (isPunct(Tok, "{"))
      return parseCompound(I, End);
    if (isPunct(Tok, ";")) {
      auto S = makeStmt(StmtKind::Expr, I);
      S->ExprBegin = S->ExprEnd = I;
      ++I;
      return S;
    }
    if (isIdent(Tok, "if")) {
      auto S = makeStmt(StmtKind::If, I);
      ++I;
      if (I < End && isIdent(T[I], "constexpr"))
        ++I;
      parseParenInto(I, End, *S);
      S->Children.push_back(parseStmt(I, End));
      if (I < End && isIdent(T[I], "else")) {
        ++I;
        S->Children.push_back(parseStmt(I, End));
      }
      return S;
    }
    if (isIdent(Tok, "while")) {
      auto S = makeStmt(StmtKind::While, I);
      ++I;
      parseParenInto(I, End, *S);
      S->Children.push_back(parseStmt(I, End));
      return S;
    }
    if (isIdent(Tok, "do")) {
      auto S = makeStmt(StmtKind::DoWhile, I);
      ++I;
      S->Children.push_back(parseStmt(I, End));
      if (I < End && isIdent(T[I], "while")) {
        ++I;
        parseParenInto(I, End, *S);
      }
      if (I < End && isPunct(T[I], ";"))
        ++I;
      return S;
    }
    if (isIdent(Tok, "for")) {
      auto S = makeStmt(StmtKind::For, I);
      ++I;
      if (I < End && isPunct(T[I], "(")) {
        size_t Close = skipMatched(I, End, "(", ")") - 1;
        splitForHeader(I + 1, Close, *S);
        I = Close + 1;
      }
      S->Children.push_back(parseStmt(I, End));
      return S;
    }
    if (isIdent(Tok, "switch")) {
      auto S = makeStmt(StmtKind::Switch, I);
      ++I;
      parseParenInto(I, End, *S);
      S->Children.push_back(parseStmt(I, End));
      return S;
    }
    if (isIdent(Tok, "case") || isIdent(Tok, "default")) {
      auto S = makeStmt(StmtKind::CaseLabel, I);
      S->Name = Tok.Text;
      ++I;
      while (I < End && !isPunct(T[I], ":")) {
        if (Tok.Text == "case" && T[I].TokenKind != Token::Kind::Directive)
          S->Name += " " + T[I].Text;
        ++I;
      }
      ++I; // ':'
      return S;
    }
    if (isIdent(Tok, "return") || isIdent(Tok, "co_return")) {
      auto S = makeStmt(StmtKind::Return, I);
      ++I;
      S->ExprBegin = I;
      I = scanExprStatement(I, End);
      S->ExprEnd = I;
      if (I < End && isPunct(T[I], ";"))
        ++I;
      return S;
    }
    if (isIdent(Tok, "break") || isIdent(Tok, "continue")) {
      auto S = makeStmt(
          Tok.Text == "break" ? StmtKind::Break : StmtKind::Continue, I);
      ++I;
      if (I < End && isPunct(T[I], ";"))
        ++I;
      return S;
    }
    if (isIdent(Tok, "goto")) {
      auto S = makeStmt(StmtKind::Goto, I);
      ++I;
      if (I < End && T[I].TokenKind == Token::Kind::Identifier)
        S->Name = T[I++].Text;
      if (I < End && isPunct(T[I], ";"))
        ++I;
      return S;
    }
    if (isIdent(Tok, "try")) {
      auto S = makeStmt(StmtKind::Try, I);
      ++I;
      if (I < End && isPunct(T[I], "{"))
        S->Children.push_back(parseCompound(I, End));
      while (I < End && isIdent(T[I], "catch")) {
        auto Handler = makeStmt(StmtKind::Catch, I);
        ++I;
        parseParenInto(I, End, *Handler);
        if (I < End && isPunct(T[I], "{"))
          Handler->Children.push_back(parseCompound(I, End));
        S->Children.push_back(std::move(Handler));
      }
      return S;
    }
    // `name:` label (never confused with `::`, which lexes as one
    // token, or with ternaries, which cannot start a statement).
    if (Tok.TokenKind == Token::Kind::Identifier && !isKeyword(Tok.Text) &&
        I + 1 < End && isPunct(T[I + 1], ":")) {
      auto S = makeStmt(StmtKind::Label, I);
      S->Name = Tok.Text;
      I += 2;
      return S;
    }

    // Expression or declaration statement.
    size_t Begin = I;
    I = scanExprStatement(I, End);
    auto S = makeStmt(classifyExprOrDecl(Begin, I), Begin);
    S->ExprBegin = Begin;
    S->ExprEnd = I;
    if (I < End && isPunct(T[I], ";"))
      ++I;
    return S;
  }

  /// Splits a `for` header [Begin, End) into init / cond / inc at
  /// top-level semicolons; a range-for (top-level `:`) stores the
  /// declaration as Init and the range expression as the condition.
  void splitForHeader(size_t Begin, size_t End, Stmt &S) {
    std::vector<size_t> Semis;
    size_t RangeColon = End;
    unsigned Depth = 0;
    for (size_t I = Begin; I < End; ++I) {
      if (isPunct(T[I], "(") || isPunct(T[I], "[") || isPunct(T[I], "{"))
        ++Depth;
      else if (isPunct(T[I], ")") || isPunct(T[I], "]") ||
               isPunct(T[I], "}")) {
        if (Depth > 0)
          --Depth;
      } else if (Depth == 0 && isPunct(T[I], ";"))
        Semis.push_back(I);
      else if (Depth == 0 && isPunct(T[I], ":") && Semis.empty() &&
               RangeColon == End)
        RangeColon = I;
    }
    if (Semis.size() >= 2) {
      S.InitBegin = Begin;
      S.InitEnd = Semis[0];
      S.ExprBegin = Semis[0] + 1;
      S.ExprEnd = Semis[1];
      S.IncBegin = Semis[1] + 1;
      S.IncEnd = End;
    } else if (RangeColon != End) {
      S.RangeFor = true;
      S.InitBegin = Begin;
      S.InitEnd = RangeColon;
      S.ExprBegin = RangeColon + 1;
      S.ExprEnd = End;
    } else {
      S.InitBegin = Begin;
      S.InitEnd = End;
      S.ExprBegin = S.ExprEnd = End;
    }
  }

  /// Advances from \p I to the terminating top-level `;` of an
  /// expression/declaration statement (returning its index), parsing
  /// and registering any lambda bodies encountered on the way.
  size_t scanExprStatement(size_t I, size_t End) {
    unsigned Depth = 0;
    while (I < End) {
      // The lambda check must run before the bracket bookkeeping:
      // parseLambda consumes the whole introducer and body, so its
      // `[` must not count toward Depth (the matching `]` is never
      // seen here).
      if (isLambdaIntro(I, End)) {
        size_t Next = parseLambda(I, End);
        if (Next != I + 1) {
          I = Next;
          continue;
        }
        // Not a lambda after all: fall through and treat the `[`
        // like any other bracket.
      }
      const Token &Tok = T[I];
      if (isPunct(Tok, ";") && Depth == 0)
        return I;
      if (isPunct(Tok, "(") || isPunct(Tok, "["))
        ++Depth;
      else if (isPunct(Tok, ")") || isPunct(Tok, "]")) {
        if (Depth == 0)
          return I; // Statement ended by an enclosing construct.
        --Depth;
      } else if (isPunct(Tok, "{")) {
        // Either a brace initializer or a misparse; skip matched.
        I = skipMatched(I, End, "{", "}");
        continue;
      } else if (isPunct(Tok, "}")) {
        return I;
      }
      ++I;
    }
    return I;
  }

  /// True if the `[` at \p I plausibly begins a lambda-introducer: it
  /// does not follow a value (subscript) and is not an attribute.
  bool isLambdaIntro(size_t I, size_t End) const {
    if (I >= End || !isPunct(T[I], "["))
      return false;
    if (I + 1 < End && isPunct(T[I + 1], "["))
      return false; // [[attribute]]
    if (I == 0)
      return true;
    const Token &Prev = T[I - 1];
    if (Prev.TokenKind == Token::Kind::Identifier)
      return isKeyword(Prev.Text) && Prev.Text != "this";
    if (Prev.TokenKind == Token::Kind::Number ||
        Prev.TokenKind == Token::Kind::String)
      return false;
    return !isPunct(Prev, ")") && !isPunct(Prev, "]");
  }

  /// Parses the lambda whose `[` is at \p I: registers its body as a
  /// nested Function and returns the index past the body's `}`. If it
  /// turns out not to be a lambda, returns \p I + 1.
  size_t parseLambda(size_t I, size_t End) {
    size_t CaptureClose = skipMatched(I, End, "[", "]");
    if (CaptureClose >= End)
      return I + 1;
    size_t J = CaptureClose;
    size_t ParamBegin = J, ParamEnd = J;
    if (J < End && isPunct(T[J], "(")) {
      size_t Close = skipMatched(J, End, "(", ")");
      ParamBegin = J + 1;
      ParamEnd = Close - 1;
      J = Close;
    }
    // Trailing specifiers up to the body: mutable/noexcept/->type/
    // attributes. Anything that ends the expression means "not a
    // lambda after all".
    while (J < End && !isPunct(T[J], "{")) {
      const Token &Tok = T[J];
      if (isPunct(Tok, ";") || isPunct(Tok, ",") || isPunct(Tok, ")") ||
          isPunct(Tok, "]") || isPunct(Tok, "}") || isPunct(Tok, "="))
        return I + 1;
      if (isPunct(Tok, "(")) {
        J = skipMatched(J, End, "(", ")");
        continue;
      }
      if (isPunct(Tok, "<")) {
        J = skipAngles(J, End);
        continue;
      }
      ++J;
    }
    if (J >= End)
      return I + 1;

    auto Fn = std::make_unique<Function>();
    Fn->Name = "<lambda@" + std::to_string(T[I].Line) + ">";
    Fn->Line = T[I].Line;
    Fn->ParamBegin = ParamBegin;
    Fn->ParamEnd = ParamEnd;
    Fn->IsLambda = true;
    size_t BodyOpen = J;
    size_t BodyCursor = BodyOpen;
    Fn->Body = parseCompound(BodyCursor, End);
    Out.Functions.push_back(std::move(Fn));
    size_t BodyClose = skipMatched(BodyOpen, End, "{", "}");
    Out.LambdaBodies.emplace_back(BodyOpen, BodyClose);
    return BodyClose;
  }

  /// Decl vs Expr: a declaration shows two adjacent "name-position"
  /// tokens (type tail then declarator) before the initializer.
  StmtKind classifyExprOrDecl(size_t Begin, size_t End) const {
    if (Begin >= End)
      return StmtKind::Expr;
    if (T[Begin].TokenKind == Token::Kind::Identifier &&
        (isTypeKeyword(T[Begin].Text) || isDeclSpecifier(T[Begin].Text) ||
         T[Begin].Text == "using"))
      return StmtKind::Decl;
    unsigned Depth = 0;
    for (size_t I = Begin; I + 1 < End; ++I) {
      if (isPunct(T[I], "(") || isPunct(T[I], "[") || isPunct(T[I], "{"))
        ++Depth;
      else if (isPunct(T[I], ")") || isPunct(T[I], "]") ||
               isPunct(T[I], "}")) {
        if (Depth > 0)
          --Depth;
      }
      if (Depth != 0)
        continue;
      bool TypeTail = (T[I].TokenKind == Token::Kind::Identifier &&
                       !isKeyword(T[I].Text)) ||
                      isPunct(T[I], ">") || isPunct(T[I], "*") ||
                      isPunct(T[I], "&");
      bool DeclName = T[I + 1].TokenKind == Token::Kind::Identifier &&
                      !isKeyword(T[I + 1].Text);
      if (!TypeTail || !DeclName)
        continue;
      // The token after the candidate declarator must close or
      // initialize the declaration.
      if (I + 2 >= End)
        return StmtKind::Decl;
      const Token &After = T[I + 2];
      if (isPunct(After, "=") || isPunct(After, ";") ||
          isPunct(After, ",") || isPunct(After, "(") ||
          isPunct(After, "{") || isPunct(After, "[") ||
          After.TokenKind == Token::Kind::Identifier)
        return StmtKind::Decl;
    }
    return StmtKind::Expr;
  }
};

} // namespace

ParsedFile rap::lint::parseFile(const LexedSource &Src) {
  return ParserImpl(Src).run();
}
