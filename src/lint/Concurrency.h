//===- lint/Concurrency.h - Interprocedural concurrency audit -*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rap_lint v3 interprocedural concurrency pass. Unlike the
/// per-function flow rules it sees every scanned file at once: it
/// builds a project-wide call graph over Parser/Cfg output, computes
/// per-function lock summaries (locks acquired transitively, locks
/// every observed caller holds at the call site), and propagates them
/// through the worklist dataflow solver. Three rules run on top:
///
///   lock-order     the global lock-acquisition graph (local edges,
///                  call-induced edges, RAP_ACQUIRED_BEFORE
///                  declarations) must stay acyclic; a cycle means two
///                  threads can each hold a lock the other wants
///   guarded-by     a RAP_GUARDED_BY field may only be touched where
///                  the mutex is held locally, required via
///                  RAP_REQUIRES, or provably held by every observed
///                  caller on every call chain — the interprocedural
///                  replacement for the per-function lock-discipline
///                  approximation
///   atomic-misuse  memory_order_relaxed on a cross-thread handoff
///                  atomic (one with store/exchange/CAS sites), and
///                  non-atomic read-modify-writes of a field that is
///                  also written under a different lock or no lock
///
/// Soundness caveat (documented in docs/STATIC_ANALYSIS.md): the
/// caller-held proof uses the OBSERVED call graph. Functions with no
/// scanned caller — and functions only reachable through call cycles
/// with no scanned entry point — are treated as externally callable
/// with no locks held. Public entry points should therefore take
/// their locks or carry RAP_REQUIRES rather than rely on callers.
///
/// Findings respect the same `rap-lint: allow(...)` markers as the
/// per-file rules.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_CONCURRENCY_H
#define RAP_LINT_CONCURRENCY_H

#include "lint/ApiAudit.h"
#include "lint/Lint.h"

#include <vector>

namespace rap {
namespace lint {

/// Runs the three interprocedural concurrency rules over \p Files
/// (already suppressed per allow() markers; sorted by path, line,
/// rule). Reuses AuditFile: repo-relative path plus contents.
std::vector<Finding> runConcurrencyAudit(const std::vector<AuditFile> &Files);

/// Registry entries for the concurrency rules, composed into
/// allRules().
const std::vector<RuleInfo> &concurrencyRuleInfos();

} // namespace lint
} // namespace rap

#endif // RAP_LINT_CONCURRENCY_H
