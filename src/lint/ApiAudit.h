//===- lint/ApiAudit.h - Cross-TU API audit for rap_lint ------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `rap_lint --api-audit` pass. Unlike the per-file rules it sees
/// every scanned file at once, so it can check properties no single
/// translation unit exposes:
///
///   api-odr            a non-inline, non-template function definition
///                      at namespace scope in a header — two TUs
///                      including it violate the one-definition rule
///   api-capi-coverage  an extern "C" definition whose name is absent
///                      from src/core/CApi.h, the single public C
///                      surface (and the ABI the soak tests pin)
///   api-include-drift  a quoted include that no scanned file
///                      satisfies, a duplicate include, or an include
///                      cycle among src/ headers — the static
///                      complement of the generated self-containment
///                      TUs, which only prove each header compiles
///                      alone, not that the include graph is sound
///
/// Findings respect the same `rap-lint: allow(...)` markers as the
/// per-file rules.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_APIAUDIT_H
#define RAP_LINT_APIAUDIT_H

#include "lint/Lint.h"

#include <string>
#include <vector>

namespace rap {
namespace lint {

/// One file handed to the audit: repo-relative path plus contents.
struct AuditFile {
  std::string Path;
  std::string Content;
};

/// Runs the three cross-TU checks over \p Files (already suppressed
/// per allow() markers; sorted by path, then line).
std::vector<Finding> runApiAudit(const std::vector<AuditFile> &Files);

/// Registry entries for the api-* rules, composed into allRules().
const std::vector<RuleInfo> &apiAuditRuleInfos();

} // namespace lint
} // namespace rap

#endif // RAP_LINT_APIAUDIT_H
