//===- lint/ApiAudit.cpp - Cross-TU API audit for rap_lint ---------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/ApiAudit.h"

#include "lint/Lexer.h"
#include "lint/Parser.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace rap;
using namespace rap::lint;

namespace {

bool hasPrefix(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool hasSuffix(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// "src/core/RapTree.h" -> "core/RapTree.h", the spelling project
/// code uses in quoted includes (include dirs point at src/).
std::string includeKey(const std::string &Path) {
  if (hasPrefix(Path, "src/"))
    return Path.substr(4);
  return Path;
}

/// Quoted include target from a Directive token's text, or "".
std::string quotedInclude(const std::string &Directive) {
  if (!hasPrefix(Directive, "#include"))
    return std::string();
  size_t Open = Directive.find('"');
  if (Open == std::string::npos)
    return std::string();
  size_t Close = Directive.find('"', Open + 1);
  if (Close == std::string::npos)
    return std::string();
  return Directive.substr(Open + 1, Close - Open - 1);
}

struct LexedFile {
  const AuditFile *File = nullptr;
  LexedSource Src;
  /// (line, target) of each quoted include, in order.
  std::vector<std::pair<unsigned, std::string>> Includes;
};

bool isPunct(const Token &T, const char *Spelling) {
  return T.TokenKind == Token::Kind::Punct && T.Text == Spelling;
}

bool isIdent(const Token &T, const char *Name) {
  return T.TokenKind == Token::Kind::Identifier && T.Text == Name;
}

size_t matchDelim(const std::vector<Token> &Toks, size_t Open,
                  const char *OpenText, const char *CloseText) {
  unsigned Depth = 0;
  for (size_t I = Open; I < Toks.size(); ++I) {
    if (isPunct(Toks[I], OpenText))
      ++Depth;
    else if (isPunct(Toks[I], CloseText) && --Depth == 0)
      return I;
  }
  return Toks.size();
}

//===----------------------------------------------------------------------===//
// api-odr
//===----------------------------------------------------------------------===//

void runOdr(const std::vector<LexedFile> &Files, std::vector<Finding> &Out) {
  // First pass: where is each risky symbol defined, to name the
  // duplicate in the message when there is one.
  struct Def {
    const LexedFile *In;
    Signature Sig;
  };
  std::map<std::string, std::vector<Def>> Defs;
  std::vector<std::pair<const LexedFile *, ParsedFile>> Parses;
  for (const LexedFile &F : Files) {
    if (!hasSuffix(F.File->Path, ".h"))
      continue;
    ParsedFile P = parseFile(F.Src);
    for (const Signature &Sig : P.Signatures) {
      if (!Sig.IsDefinition || Sig.MarkedInline || Sig.AtClassScope)
        continue;
      Defs[Sig.Name].push_back({&F, Sig});
    }
  }
  for (const auto &[Name, List] : Defs) {
    for (const Def &D : List) {
      std::string Also;
      for (const Def &Other : List)
        if (Other.In != D.In) {
          Also = "; also defined in " + Other.In->File->Path;
          break;
        }
      Out.push_back(
          {"api-odr", D.In->File->Path, D.Sig.Line,
           "non-inline function '" + Name +
               "' is defined at namespace scope in a header" + Also +
               "; two TUs including it break the one-definition rule — "
               "mark it inline or move the body to a .cpp"});
    }
  }
}

//===----------------------------------------------------------------------===//
// api-capi-coverage
//===----------------------------------------------------------------------===//

/// Collects names of extern "C" function definitions in \p F.
std::vector<std::pair<std::string, unsigned>>
externCDefinitions(const LexedFile &F) {
  std::vector<std::pair<std::string, unsigned>> Names;
  const std::vector<Token> &Toks = F.Src.Tokens;
  auto ScanOne = [&](size_t Begin, size_t End) {
    // One declaration starting at Begin; returns the index past it.
    size_t Paren = Begin;
    while (Paren < End && !isPunct(Toks[Paren], "(") &&
           !isPunct(Toks[Paren], ";") && !isPunct(Toks[Paren], "{"))
      ++Paren;
    if (Paren >= End || !isPunct(Toks[Paren], "("))
      return Paren + 1;
    std::string Name;
    unsigned Line = Toks[Paren].Line;
    if (Paren > Begin &&
        Toks[Paren - 1].TokenKind == Token::Kind::Identifier) {
      Name = Toks[Paren - 1].Text;
      Line = Toks[Paren - 1].Line;
    }
    size_t I = matchDelim(Toks, Paren, "(", ")") + 1;
    while (I < End && !isPunct(Toks[I], "{") && !isPunct(Toks[I], ";"))
      ++I;
    if (I < End && isPunct(Toks[I], "{")) {
      if (!Name.empty())
        Names.emplace_back(Name, Line);
      return matchDelim(Toks, I, "{", "}") + 1;
    }
    return I + 1;
  };
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (!isIdent(Toks[I], "extern") ||
        Toks[I + 1].TokenKind != Token::Kind::String ||
        Toks[I + 1].Text != "C")
      continue;
    if (I + 2 < Toks.size() && isPunct(Toks[I + 2], "{")) {
      size_t End = matchDelim(Toks, I + 2, "{", "}");
      size_t J = I + 3;
      while (J < End)
        J = ScanOne(J, End);
      I = End;
    } else {
      ScanOne(I + 2, Toks.size());
    }
  }
  return Names;
}

void runCApiCoverage(const std::vector<LexedFile> &Files,
                     std::vector<Finding> &Out) {
  const LexedFile *CApi = nullptr;
  for (const LexedFile &F : Files)
    if (hasSuffix(F.File->Path, "core/CApi.h"))
      CApi = &F;
  if (!CApi)
    return; // Nothing to audit against (partial scan).
  std::set<std::string> Exported;
  for (const Token &T : CApi->Src.Tokens)
    if (T.TokenKind == Token::Kind::Identifier)
      Exported.insert(T.Text);
  for (const LexedFile &F : Files) {
    if (&F == CApi)
      continue;
    for (const auto &[Name, Line] : externCDefinitions(F))
      if (!Exported.count(Name))
        Out.push_back(
            {"api-capi-coverage", F.File->Path, Line,
             "extern \"C\" definition '" + Name +
                 "' is not declared in src/core/CApi.h; every public C "
                 "symbol must appear on the single audited surface the "
                 "ABI tests pin"});
  }
}

//===----------------------------------------------------------------------===//
// api-include-drift
//===----------------------------------------------------------------------===//

void runIncludeDrift(const std::vector<LexedFile> &Files,
                     std::vector<Finding> &Out) {
  std::set<std::string> Known;
  for (const LexedFile &F : Files)
    Known.insert(includeKey(F.File->Path));

  // Per-file: unresolved and duplicate quoted includes.
  for (const LexedFile &F : Files) {
    std::set<std::string> SeenHere;
    for (const auto &[Line, Target] : F.Includes) {
      if (!SeenHere.insert(Target).second)
        Out.push_back({"api-include-drift", F.File->Path, Line,
                       "duplicate include of \"" + Target + "\""});
      if (!Known.count(Target))
        Out.push_back(
            {"api-include-drift", F.File->Path, Line,
             "include \"" + Target +
                 "\" does not resolve against the scanned tree; project "
                 "headers are included as \"<dir>/<file>.h\" relative to "
                 "src/ — drift here breaks the self-containment TUs"});
    }
  }

  // Cycles among src/ headers (quoted edges only).
  std::map<std::string, const LexedFile *> HeaderOf;
  for (const LexedFile &F : Files)
    if (hasSuffix(F.File->Path, ".h") && hasPrefix(F.File->Path, "src/"))
      HeaderOf[includeKey(F.File->Path)] = &F;

  enum Color { White, Grey, Black };
  std::map<std::string, Color> Colors;
  // Recursive coloring via explicit stack; Key under Grey means "on
  // the current path", so an edge into Grey is a cycle.
  std::set<std::pair<std::string, std::string>> Reported;
  std::function<void(const std::string &)> Visit =
      [&](const std::string &Key) {
        Colors[Key] = Grey;
        const LexedFile *F = HeaderOf.at(Key);
        for (const auto &[Line, Target] : F->Includes) {
          auto It = HeaderOf.find(Target);
          if (It == HeaderOf.end())
            continue;
          Color C = Colors.count(Target) ? Colors[Target] : White;
          if (C == Grey) {
            if (Reported.emplace(Key, Target).second)
              Out.push_back(
                  {"api-include-drift", F->File->Path, Line,
                   "include cycle: \"" + Key + "\" -> \"" + Target +
                       "\" closes a loop in the src/ header graph"});
            continue;
          }
          if (C == White)
            Visit(Target);
        }
        Colors[Key] = Black;
      };
  for (const auto &[Key, F] : HeaderOf)
    if (!Colors.count(Key) || Colors[Key] == White)
      Visit(Key);
}

} // namespace

std::vector<Finding>
rap::lint::runApiAudit(const std::vector<AuditFile> &Files) {
  std::vector<LexedFile> Lexed;
  Lexed.reserve(Files.size());
  for (const AuditFile &F : Files) {
    LexedFile L;
    L.File = &F;
    L.Src = lex(F.Content);
    for (const Token &T : L.Src.Tokens) {
      if (T.TokenKind != Token::Kind::Directive)
        continue;
      std::string Target = quotedInclude(T.Text);
      if (!Target.empty())
        L.Includes.emplace_back(T.Line, Target);
    }
    Lexed.push_back(std::move(L));
  }

  std::vector<Finding> Raw;
  runOdr(Lexed, Raw);
  runCApiCoverage(Lexed, Raw);
  runIncludeDrift(Lexed, Raw);

  // Apply allow() suppressions per file.
  std::map<std::string, const LexedFile *> ByPath;
  for (const LexedFile &L : Lexed)
    ByPath[L.File->Path] = &L;
  std::vector<Finding> Output;
  for (Finding &F : Raw) {
    auto It = ByPath.find(F.Path);
    if (It != ByPath.end()) {
      auto At = It->second->Src.AllowedRules.find(F.Line);
      if (At != It->second->Src.AllowedRules.end() &&
          At->second.count(F.RuleId))
        continue;
    }
    Output.push_back(std::move(F));
  }
  std::sort(Output.begin(), Output.end(),
            [](const Finding &A, const Finding &B) {
              if (A.Path != B.Path)
                return A.Path < B.Path;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.RuleId < B.RuleId;
            });
  return Output;
}

/// Registry entries for the cross-TU API audit, composed into
/// allRules() so --explain and allow()-marker validation see them.
const std::vector<RuleInfo> &rap::lint::apiAuditRuleInfos() {
  static const std::vector<RuleInfo> Rules = {
      {"api-odr",
       "no non-inline function definitions at namespace scope in "
       "headers (--api-audit)",
       "Cross-TU pass. A header-defined function that is not inline/ "
       "constexpr/template is an ODR violation the moment two TUs "
       "include it: at best a duplicate-symbol link error, at worst "
       "silently divergent copies. Fix: mark it inline or move the "
       "body to a .cpp."},
      {"api-capi-coverage",
       "every extern \"C\" definition appears in src/core/CApi.h "
       "(--api-audit)",
       "Cross-TU pass. CApi.h is the single audited C surface: the ABI "
       "lock tests, the capi-exception-tight rule, and external "
       "bindings all key on it. An extern \"C\" symbol defined "
       "elsewhere but not declared there is an unreviewed ABI leak. "
       "Fix: declare it in CApi.h or give it internal linkage."},
      {"api-include-drift",
       "quoted includes resolve in-tree, no duplicates, no header "
       "cycles (--api-audit)",
       "Cross-TU pass, the static complement of the generated "
       "self-containment TUs (which prove each header compiles alone "
       "but not that the include graph is sound). Flags quoted "
       "includes that no scanned file satisfies (renamed/moved "
       "headers), duplicate includes in one file, and include cycles "
       "among src/ headers. Fix: update the include to the real "
       "src/-relative path, or break the cycle with a forward "
       "declaration."},
  };
  return Rules;
}
