//===- lint/Lint.h - RAP-specific static-analysis rules --------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rap_lint rule engine. Each rule guards one invariant the paper
/// or DESIGN.md relies on but the compiler cannot check:
///
///   counter-arithmetic    event-weight counters in core/ must use the
///                         saturating helpers (BitUtils.h), never raw
///                         += / ++, so counts clamp instead of wrapping
///   capi-exception-tight  extern "C" functions must be noexcept or
///                         wrap their whole body in try/catch; a C
///                         caller cannot unwind a C++ exception
///   nondeterminism        core/, hw/ and verify/ may draw randomness
///                         and time only through support/Rng.h so every
///                         run replays bit-identically from its seed
///   hot-path-io           the per-event files (RapTree, PipelinedEngine,
///                         Tcam) must not touch stdio/iostream
///   include-guard         public headers carry the canonical
///                         RAP_<DIR>_<STEM>_H guard
///
/// Findings are suppressed per line with `// rap-lint: allow(<rule>)`.
/// See docs/STATIC_ANALYSIS.md for the full catalog and rationale.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_LINT_H
#define RAP_LINT_LINT_H

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rap {
namespace lint {

/// One diagnostic produced by a rule.
struct Finding {
  std::string RuleId;
  std::string Path;  ///< Repo-relative path with forward slashes.
  unsigned Line = 0; ///< 1-based.
  std::string Message;
};

/// Static description of a rule, used for --list-rules and --explain,
/// for rejecting unknown names in allow() markers, and for SARIF rule
/// metadata.
struct RuleInfo {
  const char *Id;
  const char *Summary;
  /// Long-form rationale for `rap_lint --explain=<rule>`: what the
  /// rule guards, why the invariant matters for the paper's
  /// guarantees, and how to fix or suppress a finding.
  const char *Explanation;
};

/// All real rules (the reserved `unknown-rule` diagnostic is not
/// listed; it cannot be suppressed).
const std::vector<RuleInfo> &allRules();

/// An inclusive integer range proven for one function parameter by
/// the interprocedural value-range prescan (ValueRange.h). Plain data
/// here so LintContext does not depend on the interval lattice type.
struct ParamInterval {
  long long Lo = 0;
  long long Hi = 0;
};

/// Cross-file facts the driver gathers before linting individual
/// files, so flow rules see more than one translation unit.
struct LintContext {
  /// Names of functions declared in src/ headers whose return value
  /// is a status the caller must check (see isStatusReturn).
  std::set<std::string> StatusFunctions;

  /// Proven ranges for literal-fed parameters, keyed by unqualified
  /// function name then zero-based parameter index. Filled by
  /// collectParamIntervals (ValueRange.h); a missing entry means the
  /// parameter is unconstrained. The v4 rules seed each function's
  /// abstract environment from this map, so e.g. a serialization
  /// read length that every observed caller passes as a literal is
  /// provably bounded inside the callee.
  std::map<std::string, std::map<unsigned, ParamInterval>> ParamIntervals;
};

/// Lints one in-memory source file. \p Path must be repo-relative
/// (e.g. "src/core/RapTree.cpp"); it selects which rules apply.
/// Suppressed findings are removed; allow() markers naming a rule that
/// does not exist surface as `unknown-rule` findings.
std::vector<Finding> lintSource(const std::string &Path,
                                const std::string &Content);

/// Same, with cross-file context (status-function names collected
/// from headers by the driver).
std::vector<Finding> lintSource(const std::string &Path,
                                const std::string &Content,
                                const LintContext &Ctx);

/// Findings split against a baseline file (--baseline): Fresh ones
/// fail the run, Grandfathered ones only warn. Stale holds baseline
/// entries that matched no current finding — dead weight that would
/// otherwise silently grandfather a future regression — rendered as
/// "path: [rule] message" lines; the driver fails the run on them so
/// the baseline shrinks monotonically as findings are fixed.
struct BaselineSplit {
  std::vector<Finding> Fresh;
  std::vector<Finding> Grandfathered;
  std::vector<std::string> Stale;
};

/// Splits \p Findings against \p BaselineText, the saved renderText
/// output of an earlier run. Matching ignores line numbers — a
/// grandfathered finding keyed on (path, rule, message) survives
/// unrelated edits above it — and is multiset-aware, so adding a
/// second identical violation in the same file still fails, and N
/// baselined copies with fewer than N matches leave the excess in
/// Stale.
BaselineSplit applyBaseline(std::vector<Finding> Findings,
                            const std::string &BaselineText);

/// Renders findings as "path:line: [rule] message" lines.
std::string renderText(const std::vector<Finding> &Findings);

/// Renders findings as a JSON array.
std::string renderJson(const std::vector<Finding> &Findings);

/// Renders findings as a SARIF 2.1.0 log.
std::string renderSarif(const std::vector<Finding> &Findings);

} // namespace lint
} // namespace rap

#endif // RAP_LINT_LINT_H
