//===- lint/Concurrency.cpp - Interprocedural concurrency audit ----------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pipeline:
//
//   1. Lex + parse every file; collect the global RAP_GUARDED_BY map,
//      the std::atomic<...> field names, and every
//      RAP_ACQUIRED_BEFORE(a, b) declaration.
//   2. Per function: run the must-held lock dataflow (the same
//      transferLocks the local lock-discipline rule uses, entry facts
//      from RAP_REQUIRES), and record with the held set at each point
//      the call sites, guarded-field accesses, lock-acquisition edges
//      (held -> newly acquired), atomic operations, and plain writes.
//   3. Interprocedural summaries over the call graph (by callee name):
//      AcquiredTrans — locks a call may take transitively (bottom-up
//      union fixpoint) — and CallerHeld — locks every observed caller
//      holds at every call site (top-down intersection fixpoint;
//      functions with no scanned caller, or reachable only through
//      call cycles with no scanned entry, are pinned to the empty set).
//   4. Rules: lock-order over the edge graph (self edges, declared-
//      order contradictions, observed cycles, declared cycles),
//      guarded-by (access needs the mutex held locally or in
//      CallerHeld), atomic-misuse (relaxed orders on handoff atomics,
//      non-atomic RMW racing a differently-locked write).
//
//===----------------------------------------------------------------------===//

#include "lint/Concurrency.h"

#include "lint/Cfg.h"
#include "lint/Dataflow.h"
#include "lint/FlowRules.h"
#include "lint/Lexer.h"
#include "lint/Parser.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

using namespace rap;
using namespace rap::lint;

namespace {

bool isIdent(const Token &T, const char *Name) {
  return T.TokenKind == Token::Kind::Identifier && T.Text == Name;
}

bool isPunct(const Token &T, const char *Spelling) {
  return T.TokenKind == Token::Kind::Punct && T.Text == Spelling;
}

size_t matchParen(const std::vector<Token> &T, size_t Open, size_t End) {
  unsigned Depth = 0;
  for (size_t I = Open; I < End; ++I) {
    if (isPunct(T[I], "("))
      ++Depth;
    else if (isPunct(T[I], ")") && --Depth == 0)
      return I;
  }
  return End;
}

/// Mirror of FlowRules' mask: tokens of a nested lambda body belong
/// to the lambda's own CFG, not the enclosing statement.
class LambdaMask {
public:
  explicit LambdaMask(const ParsedFile &Parsed)
      : Bodies(Parsed.LambdaBodies) {}

  bool skip(size_t I, size_t ActionBegin) const {
    for (const auto &[B, E] : Bodies)
      if (I > B && I < E && !(ActionBegin > B && ActionBegin < E))
        return true;
    return false;
  }

private:
  const std::vector<std::pair<size_t, size_t>> &Bodies;
};

/// Fresh name use, not the tail of `o.x` / `o->x` / `N::x`
/// (`this->x` still counts — same object as the guard).
bool isDirectUse(const std::vector<Token> &T, size_t I, size_t Begin) {
  if (I == Begin)
    return true;
  const Token &Prev = T[I - 1];
  if (isPunct(Prev, ".") || isPunct(Prev, "::"))
    return false;
  if (isPunct(Prev, "->"))
    return I >= 2 && isIdent(T[I - 2], "this");
  return true;
}

/// `this->x` — an explicit member access; shadowing cannot apply.
bool isThisMember(const std::vector<Token> &T, size_t I) {
  return I >= 2 && isPunct(T[I - 1], "->") && isIdent(T[I - 2], "this");
}

struct ObservedEdge {
  std::string First, Second; ///< Second acquired while First held.
  std::string Path;
  unsigned Line = 0;
  std::string Via; ///< Callee name when call-induced, else "".
};

struct DeclaredEdge {
  std::string First, Second;
  std::string Path;
  unsigned Line = 0;
};

struct GuardedAccess {
  std::string Var, Mutex;
  FactSet Held;
  unsigned Line = 0;
};

struct Call {
  std::string Callee;
  FactSet Held;
  unsigned Line = 0;
};

struct AtomicOp {
  enum Kind { Store, Load, Rmw };
  std::string Var;
  Kind OpKind = Store;
  bool Relaxed = false;
  std::string Path;
  unsigned Line = 0;
};

struct WriteSite {
  FactSet Held;
  bool IsRmw = false;
  std::string Path;
  unsigned Line = 0;
};

struct FuncInfo {
  std::string Path;
  std::string Name;
  unsigned Line = 0;
  FactSet AcquiredLocal;
  std::vector<Call> Calls;
  std::vector<GuardedAccess> Accesses;
  std::vector<ObservedEdge> LocalEdges;
  // Interprocedural summaries.
  FactSet AcquiredTrans;
  /// nullopt is top ("every lock") while the intersection fixpoint
  /// runs; it cannot survive for any function the rules consult.
  std::optional<FactSet> CallerHeld;
  bool HasCallers = false;
  bool Pinned = false;
};

struct Unit {
  std::string Path;
  LexedSource Src;
  ParsedFile Parsed;
};

std::string heldDesc(const FactSet &Held) {
  if (Held.empty())
    return "no lock held";
  std::string S = "holding ";
  bool First = true;
  for (const std::string &M : Held) {
    if (!First)
      S += ", ";
    S += "'" + M + "'";
    First = false;
  }
  return S;
}

std::string viaSuffix(const ObservedEdge &E) {
  return E.Via.empty() ? std::string() : " via call to '" + E.Via + "'";
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string S;
  for (const std::string &N : Names)
    S += (S.empty() ? "" : ", ") + N;
  return S;
}

//===----------------------------------------------------------------------===//
// Collection
//===----------------------------------------------------------------------===//

/// Names declared as std::atomic<...> anywhere in the scanned set.
std::set<std::string> collectAtomicVars(
    const std::vector<std::unique_ptr<Unit>> &Units) {
  std::set<std::string> Vars;
  for (const auto &U : Units) {
    const std::vector<Token> &T = U->Src.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "atomic") || !isPunct(T[I + 1], "<"))
        continue;
      int Depth = 0;
      size_t J = I + 1;
      for (; J < T.size(); ++J) {
        if (isPunct(T[J], "<"))
          ++Depth;
        else if (isPunct(T[J], ">")) {
          if (--Depth == 0)
            break;
        } else if (isPunct(T[J], ">>")) {
          Depth -= 2;
          if (Depth <= 0)
            break;
        }
      }
      // The declarator directly after the closing angle; pointers,
      // references and alias targets are not field declarations.
      if (J + 1 < T.size() &&
          T[J + 1].TokenKind == Token::Kind::Identifier)
        Vars.insert(T[J + 1].Text);
    }
  }
  return Vars;
}

/// RAP_ACQUIRED_BEFORE(a, b[, c...]): consecutive argument pairs form
/// declared acquisition-order edges. Qualified arguments (`S.Mu`)
/// contribute their final identifier, matching lockDeclMutex.
std::vector<DeclaredEdge> collectDeclaredEdges(
    const std::vector<std::unique_ptr<Unit>> &Units) {
  std::vector<DeclaredEdge> Edges;
  for (const auto &U : Units) {
    const std::vector<Token> &T = U->Src.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!isIdent(T[I], "RAP_ACQUIRED_BEFORE") || !isPunct(T[I + 1], "("))
        continue;
      size_t Close = matchParen(T, I + 1, T.size());
      std::vector<std::string> Args;
      std::string Last;
      for (size_t J = I + 2; J <= Close && J < T.size(); ++J) {
        if (J == Close || isPunct(T[J], ",")) {
          if (!Last.empty())
            Args.push_back(Last);
          Last.clear();
          continue;
        }
        if (T[J].TokenKind == Token::Kind::Identifier)
          Last = T[J].Text;
      }
      for (size_t K = 1; K < Args.size(); ++K)
        Edges.push_back({Args[K - 1], Args[K], U->Path, T[I].Line});
    }
  }
  return Edges;
}

/// Step 2: one function's local facts, walked with the must-held
/// lock state threaded through every action.
void analyzeFunction(const Unit &U, const Function &Fn,
                     const std::map<std::string, std::string> &GuardOf,
                     const std::set<std::string> &AtomicVars,
                     FuncInfo &Info, std::vector<AtomicOp> &AtomicOps,
                     std::map<std::string, std::vector<WriteSite>> &Writes) {
  static const std::set<std::string> CallKeywords = {
      "if",       "while",    "for",          "switch",  "return",
      "sizeof",   "catch",    "new",          "delete",  "throw",
      "decltype", "noexcept", "static_assert", "alignof", "assert"};
  static const std::set<std::string> AtomicStores = {
      "store", "exchange", "compare_exchange_weak", "compare_exchange_strong"};
  static const std::set<std::string> AtomicRmws = {
      "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor"};
  static const std::set<std::string> CompoundOps = {
      "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="};

  const std::vector<Token> &T = U.Src.Tokens;
  Info.Path = U.Path;
  Info.Name = Fn.Name;
  Info.Line = Fn.Line;

  Cfg G = buildCfg(Fn);
  LambdaMask Mask(U.Parsed);
  FactSet Shadowed = collectShadowedNames(T, Fn, G);
  FactSet Entry(Fn.RequiredLocks.begin(), Fn.RequiredLocks.end());
  auto Transfer = [&](const BasicBlock &B, FactSet State) {
    for (const Action &A : B.Actions)
      transferLocks(T, A, State);
    return State;
  };
  DataflowResult R = solveForward(G, JoinKind::Intersection, Entry, Transfer);

  for (const BasicBlock &B : G.Blocks) {
    if (!R.Reached[B.Id])
      continue;
    FactSet Held = R.EntryState[B.Id];
    for (const Action &A : B.Actions) {
      // Annotation arguments name mutexes and guarded fields without
      // touching them; skip those statements entirely.
      bool AnnotationSite = false;
      for (size_t I = A.Begin; I < A.End; ++I)
        if (T[I].TokenKind == Token::Kind::Identifier &&
            T[I].Text.rfind("RAP_", 0) == 0)
          AnnotationSite = true;
      if (!AnnotationSite) {
        for (size_t I = A.Begin; I < A.End; ++I) {
          if (Mask.skip(I, A.Begin))
            continue;
          const Token &Tok = T[I];
          if (Tok.TokenKind != Token::Kind::Identifier)
            continue;
          bool NextParen = I + 1 < A.End && isPunct(T[I + 1], "(");
          if (NextParen && !CallKeywords.count(Tok.Text))
            Info.Calls.push_back({Tok.Text, Held, Tok.Line});
          bool Direct = isDirectUse(T, I, A.Begin);
          bool Unshadowed = !Shadowed.count(Tok.Text) || isThisMember(T, I);
          // Atomic operations: V.op(...) and plain `V = ...` stores.
          if (AtomicVars.count(Tok.Text) && Direct && Unshadowed) {
            if (I + 3 < A.End &&
                (isPunct(T[I + 1], ".") || isPunct(T[I + 1], "->")) &&
                T[I + 2].TokenKind == Token::Kind::Identifier &&
                isPunct(T[I + 3], "(")) {
              const std::string &Op = T[I + 2].Text;
              AtomicOp::Kind K;
              bool Known = true;
              if (AtomicStores.count(Op))
                K = AtomicOp::Store;
              else if (Op == "load")
                K = AtomicOp::Load;
              else if (AtomicRmws.count(Op))
                K = AtomicOp::Rmw;
              else
                Known = false;
              if (Known) {
                size_t Close = matchParen(T, I + 3, A.End);
                bool Relaxed = false;
                for (size_t J = I + 4; J < Close; ++J)
                  if (isIdent(T[J], "memory_order_relaxed"))
                    Relaxed = true;
                AtomicOps.push_back(
                    {Tok.Text, K, Relaxed, U.Path, Tok.Line});
              }
            } else if (I + 1 < A.End && isPunct(T[I + 1], "=")) {
              // operator= on std::atomic is a seq_cst store.
              AtomicOps.push_back(
                  {Tok.Text, AtomicOp::Store, false, U.Path, Tok.Line});
            }
          }
          // Guarded-field accesses (reads and writes alike).
          auto GIt = GuardOf.find(Tok.Text);
          if (GIt != GuardOf.end() && Direct && Unshadowed && !NextParen)
            Info.Accesses.push_back(
                {Tok.Text, GIt->second, Held, Tok.Line});
          // Plain-variable write sites for the non-atomic-RMW rule.
          // Declarators are locals; guarded and atomic fields have
          // their own rules.
          if (A.ActionKind != Action::Kind::Decl && Direct && Unshadowed &&
              !AtomicVars.count(Tok.Text) && !GuardOf.count(Tok.Text)) {
            bool IsWrite = false, IsRmw = false;
            if (I + 1 < A.End && T[I + 1].TokenKind == Token::Kind::Punct) {
              const std::string &Op = T[I + 1].Text;
              if (Op == "=") {
                IsWrite = true;
                for (size_t J = I + 2; J < A.End && !IsRmw; ++J)
                  if (T[J].TokenKind == Token::Kind::Identifier &&
                      T[J].Text == Tok.Text)
                    IsRmw = true;
              } else if (CompoundOps.count(Op) || Op == "++" || Op == "--") {
                IsWrite = IsRmw = true;
              }
            }
            if (!IsWrite && I > A.Begin &&
                (isPunct(T[I - 1], "++") || isPunct(T[I - 1], "--")))
              IsWrite = IsRmw = true;
            if (IsWrite)
              Writes[Tok.Text].push_back({Held, IsRmw, U.Path, Tok.Line});
          }
        }
      }
      FactSet Before = Held;
      transferLocks(T, A, Held);
      for (const std::string &M : Held)
        if (!Before.count(M)) {
          Info.AcquiredLocal.insert(M);
          for (const std::string &H : Before)
            Info.LocalEdges.push_back({H, M, U.Path, A.Line, ""});
        }
      // Re-acquiring an already-held mutex never changes the set, so
      // catch it directly on the RAII declaration.
      if (A.ActionKind == Action::Kind::Decl) {
        std::string M = lockDeclMutex(T, A.Begin, A.End);
        if (!M.empty() && Before.count(M))
          Info.LocalEdges.push_back({M, M, U.Path, A.Line, ""});
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Rules
//===----------------------------------------------------------------------===//

/// Strongly connected components (Kosaraju) over string-named nodes,
/// components and members sorted for deterministic reports.
std::vector<std::vector<std::string>>
stronglyConnected(const std::set<std::string> &Nodes,
                  const std::map<std::string, std::set<std::string>> &Adj) {
  std::vector<std::string> Order;
  std::set<std::string> Visited;
  std::function<void(const std::string &)> Dfs1 =
      [&](const std::string &N) {
        Visited.insert(N);
        auto It = Adj.find(N);
        if (It != Adj.end())
          for (const std::string &M : It->second)
            if (!Visited.count(M))
              Dfs1(M);
        Order.push_back(N);
      };
  for (const std::string &N : Nodes)
    if (!Visited.count(N))
      Dfs1(N);

  std::map<std::string, std::set<std::string>> RAdj;
  for (const auto &[N, Succs] : Adj)
    for (const std::string &M : Succs)
      RAdj[M].insert(N);

  std::vector<std::vector<std::string>> Comps;
  Visited.clear();
  std::function<void(const std::string &, std::vector<std::string> &)> Dfs2 =
      [&](const std::string &N, std::vector<std::string> &Comp) {
        Visited.insert(N);
        Comp.push_back(N);
        auto It = RAdj.find(N);
        if (It != RAdj.end())
          for (const std::string &M : It->second)
            if (!Visited.count(M))
              Dfs2(M, Comp);
      };
  for (size_t I = Order.size(); I-- > 0;) {
    if (Visited.count(Order[I]))
      continue;
    std::vector<std::string> Comp;
    Dfs2(Order[I], Comp);
    std::sort(Comp.begin(), Comp.end());
    Comps.push_back(std::move(Comp));
  }
  std::sort(Comps.begin(), Comps.end());
  return Comps;
}

void emitLockOrder(const std::vector<FuncInfo> &Funcs,
                   const std::map<std::string, std::vector<size_t>> &ByName,
                   const std::vector<DeclaredEdge> &Declared,
                   std::vector<Finding> &Out) {
  // Observed edges: local ones plus call-induced ones (a lock the
  // callee may take transitively, acquired under everything held at
  // the call site). A lock already held at the site is skipped: with
  // per-object mutexes sharing a field name (one 'Mu' per shard) a
  // re-entry through a call is indistinguishable from a sibling
  // object's lock, and flagging it would ban the one-shard-at-a-time
  // combiner pattern.
  std::vector<ObservedEdge> Edges;
  for (const FuncInfo &F : Funcs)
    Edges.insert(Edges.end(), F.LocalEdges.begin(), F.LocalEdges.end());
  for (const FuncInfo &F : Funcs)
    for (const Call &C : F.Calls) {
      auto It = ByName.find(C.Callee);
      if (It == ByName.end())
        continue;
      FactSet Acquired;
      for (size_t J : It->second)
        Acquired.insert(Funcs[J].AcquiredTrans.begin(),
                        Funcs[J].AcquiredTrans.end());
      for (const std::string &M : Acquired) {
        if (C.Held.count(M))
          continue;
        for (const std::string &H : C.Held)
          Edges.push_back({H, M, F.Path, C.Line, C.Callee});
      }
    }

  std::set<std::tuple<std::string, unsigned, std::string>> SeenSelf;
  std::map<std::pair<std::string, std::string>, const ObservedEdge *> First;
  for (const ObservedEdge &E : Edges) {
    if (E.First == E.Second) {
      if (SeenSelf.emplace(E.Path, E.Line, E.First).second)
        Out.push_back(
            {"lock-order", E.Path, E.Line,
             "mutex '" + E.First + "' is acquired while already held" +
                 viaSuffix(E) +
                 "; a second lock on a non-recursive mutex deadlocks "
                 "the thread"});
      continue;
    }
    First.emplace(std::make_pair(E.First, E.Second), &E);
  }

  std::map<std::pair<std::string, std::string>, const DeclaredEdge *>
      DeclFirst;
  for (const DeclaredEdge &D : Declared)
    if (D.First != D.Second)
      DeclFirst.emplace(std::make_pair(D.First, D.Second), &D);

  // Observed edge against a declared order.
  for (const auto &[Key, E] : First) {
    auto It = DeclFirst.find({Key.second, Key.first});
    if (It == DeclFirst.end())
      continue;
    Out.push_back(
        {"lock-order", E->Path, E->Line,
         "'" + Key.second + "' is acquired while '" + Key.first +
             "' is held" + viaSuffix(*E) +
             ", contradicting RAP_ACQUIRED_BEFORE(" + Key.second + ", " +
             Key.first + ") declared at " + It->second->Path + ":" +
             std::to_string(It->second->Line)});
  }

  // Observed cycles: two threads can each hold a lock the other wants.
  {
    std::set<std::string> Nodes;
    std::map<std::string, std::set<std::string>> Adj;
    for (const auto &[Key, E] : First) {
      (void)E;
      Nodes.insert(Key.first);
      Nodes.insert(Key.second);
      Adj[Key.first].insert(Key.second);
    }
    for (const std::vector<std::string> &Comp :
         stronglyConnected(Nodes, Adj)) {
      if (Comp.size() < 2)
        continue;
      std::set<std::string> In(Comp.begin(), Comp.end());
      const ObservedEdge *Anchor = nullptr;
      std::string Witnesses;
      unsigned Listed = 0;
      for (const auto &[Key, E] : First) {
        if (!In.count(Key.first) || !In.count(Key.second))
          continue;
        if (!Anchor || E->Path < Anchor->Path ||
            (E->Path == Anchor->Path && E->Line < Anchor->Line))
          Anchor = E;
        if (Listed < 4) {
          Witnesses += (Witnesses.empty() ? "" : "; ") + ("'" + Key.second +
                       "' is acquired while '" + Key.first + "' is held (" +
                       E->Path + ":" + std::to_string(E->Line) +
                       (E->Via.empty() ? "" : ", via call to '" + E->Via +
                                                  "'") +
                       ")");
          ++Listed;
        }
      }
      Out.push_back(
          {"lock-order", Anchor->Path, Anchor->Line,
           "lock-acquisition cycle among {" + joinNames(Comp) + "}: " +
               Witnesses +
               "; two threads interleaving these chains can deadlock — "
               "pick one global order, declare it with "
               "RAP_ACQUIRED_BEFORE, and follow it"});
    }
  }

  // Declared-only cycles: the annotations themselves are inconsistent.
  {
    std::set<std::string> Nodes;
    std::map<std::string, std::set<std::string>> Adj;
    for (const auto &[Key, D] : DeclFirst) {
      (void)D;
      Nodes.insert(Key.first);
      Nodes.insert(Key.second);
      Adj[Key.first].insert(Key.second);
    }
    for (const std::vector<std::string> &Comp :
         stronglyConnected(Nodes, Adj)) {
      if (Comp.size() < 2)
        continue;
      std::set<std::string> In(Comp.begin(), Comp.end());
      const DeclaredEdge *Anchor = nullptr;
      for (const auto &[Key, D] : DeclFirst) {
        if (!In.count(Key.first) || !In.count(Key.second))
          continue;
        if (!Anchor || D->Path < Anchor->Path ||
            (D->Path == Anchor->Path && D->Line < Anchor->Line))
          Anchor = D;
      }
      Out.push_back(
          {"lock-order", Anchor->Path, Anchor->Line,
           "RAP_ACQUIRED_BEFORE declarations form a cycle among {" +
               joinNames(Comp) +
               "}; no acquisition order can satisfy them"});
    }
  }
}

void emitGuardedBy(const std::vector<FuncInfo> &Funcs,
                   const std::vector<std::vector<
                       std::tuple<size_t, FactSet, unsigned>>> &CallersOf,
                   std::vector<Finding> &Out) {
  std::set<std::tuple<std::string, unsigned, std::string>> Seen;
  for (size_t I = 0; I < Funcs.size(); ++I) {
    const FuncInfo &F = Funcs[I];
    for (const GuardedAccess &A : F.Accesses) {
      if (A.Held.count(A.Mutex))
        continue;
      if (F.CallerHeld && F.CallerHeld->count(A.Mutex))
        continue;
      if (!Seen.emplace(F.Path, A.Line, A.Var).second)
        continue;
      // Witness: name a concrete unsatisfying entry into F.
      std::string Witness;
      if (!F.HasCallers) {
        Witness = "'" + F.Name + "' is externally callable (no scanned "
                  "call sites)";
      } else {
        for (const auto &[CallerIdx, SiteHeld, SiteLine] : CallersOf[I]) {
          const FuncInfo &C = Funcs[CallerIdx];
          FactSet Avail = SiteHeld;
          if (C.CallerHeld)
            Avail.insert(C.CallerHeld->begin(), C.CallerHeld->end());
          if (!Avail.count(A.Mutex)) {
            Witness = "e.g. the call chain through '" + C.Name + "' (" +
                      C.Path + ":" + std::to_string(SiteLine) +
                      ") does not hold " + A.Mutex;
            break;
          }
        }
        if (Witness.empty())
          Witness = "'" + F.Name + "' is only reached through call "
                    "cycles with no scanned entry point";
      }
      Out.push_back(
          {"guarded-by", F.Path, A.Line,
           "'" + A.Var + "' is RAP_GUARDED_BY(" + A.Mutex + ") but " +
               A.Mutex + " is not held on every path here nor provably "
               "held by every observed caller; " +
               Witness + " — take a lock_guard/unique_lock, or annotate "
               "'" + F.Name + "' RAP_REQUIRES(" + A.Mutex + ")"});
    }
  }
}

void emitAtomicMisuse(
    const std::vector<AtomicOp> &Ops,
    const std::map<std::string, std::vector<WriteSite>> &Writes,
    std::vector<Finding> &Out) {
  // A handoff atomic has at least one store/exchange/CAS site; a
  // pure counter (fetch_add/fetch_sub/load only) may stay relaxed.
  std::set<std::string> Handoff;
  for (const AtomicOp &Op : Ops)
    if (Op.OpKind == AtomicOp::Store)
      Handoff.insert(Op.Var);

  std::set<std::tuple<std::string, unsigned, std::string>> Seen;
  for (const AtomicOp &Op : Ops) {
    if (!Op.Relaxed || !Handoff.count(Op.Var))
      continue;
    const char *Word = Op.OpKind == AtomicOp::Store  ? "store"
                       : Op.OpKind == AtomicOp::Load ? "load"
                                                     : "read-modify-write";
    if (Seen.emplace(Op.Path, Op.Line, Op.Var).second)
      Out.push_back(
          {"atomic-misuse", Op.Path, Op.Line,
           "'" + Op.Var + "' is a cross-thread handoff (it is published "
           "with store/exchange) but this " + Word +
               " uses memory_order_relaxed, which does not order the "
               "data it hands off; use release/acquire or the seq_cst "
               "default"});
  }

  // Non-atomic RMW racing a write under a different (or no) lock.
  // Variables only ever touched with no lock held anywhere never
  // flag: without locks in play this pass has no evidence of sharing.
  for (const auto &[Var, Sites] : Writes) {
    if (Sites.size() < 2)
      continue;
    bool Reported = false;
    // Anchor on a lock-free RMW site when one exists — that is the
    // side a reader expects to be wrong — falling back to any RMW
    // whose locks are disjoint from another writer's.
    for (int Pass = 0; Pass < 2 && !Reported; ++Pass)
    for (const WriteSite &A : Sites) {
      if (!A.IsRmw || Reported || (Pass == 0 && !A.Held.empty()))
        continue;
      for (const WriteSite &B : Sites) {
        if (&B == &A)
          continue;
        bool Disjoint = true;
        for (const std::string &M : A.Held)
          if (B.Held.count(M))
            Disjoint = false;
        if (!Disjoint || (A.Held.empty() && B.Held.empty()))
          continue;
        Out.push_back(
            {"atomic-misuse", A.Path, A.Line,
             "non-atomic read-modify-write of '" + Var + "' (" +
                 heldDesc(A.Held) + "); '" + Var + "' is also written at " +
                 B.Path + ":" + std::to_string(B.Line) + " (" +
                 heldDesc(B.Held) +
                 ") with no lock in common, so concurrent threads can "
                 "interleave the read and the write — make '" +
                 Var + "' std::atomic or guard every access with one "
                 "mutex"});
        Reported = true;
        break;
      }
    }
  }
}

} // namespace

std::vector<Finding>
rap::lint::runConcurrencyAudit(const std::vector<AuditFile> &Files) {
  std::vector<std::unique_ptr<Unit>> Units;
  Units.reserve(Files.size());
  for (const AuditFile &F : Files) {
    auto U = std::make_unique<Unit>();
    U->Path = F.Path;
    U->Src = lex(F.Content);
    U->Parsed = parseFile(U->Src);
    Units.push_back(std::move(U));
  }

  // Step 1: global annotation maps.
  std::map<std::string, std::string> GuardOf;
  for (const auto &U : Units)
    for (const auto &[Var, Mutex] : U->Parsed.GuardedVars)
      GuardOf.emplace(Var, Mutex);
  std::set<std::string> AtomicVars = collectAtomicVars(Units);
  std::vector<DeclaredEdge> Declared = collectDeclaredEdges(Units);

  // Step 2: per-function local analysis.
  std::vector<FuncInfo> Funcs;
  std::vector<AtomicOp> AtomicOps;
  std::map<std::string, std::vector<WriteSite>> Writes;
  for (const auto &U : Units)
    for (const auto &Fn : U->Parsed.Functions) {
      FuncInfo Info;
      analyzeFunction(*U, *Fn, GuardOf, AtomicVars, Info, AtomicOps, Writes);
      Funcs.push_back(std::move(Info));
    }

  // Step 3: call graph by callee name (overloads and same-name
  // methods merge; both summaries degrade conservatively).
  std::map<std::string, std::vector<size_t>> ByName;
  for (size_t I = 0; I < Funcs.size(); ++I)
    ByName[Funcs[I].Name].push_back(I);

  std::vector<std::vector<std::tuple<size_t, FactSet, unsigned>>> CallersOf(
      Funcs.size());
  for (size_t I = 0; I < Funcs.size(); ++I)
    for (const Call &C : Funcs[I].Calls) {
      auto It = ByName.find(C.Callee);
      if (It == ByName.end())
        continue;
      for (size_t J : It->second) {
        Funcs[J].HasCallers = true;
        CallersOf[J].emplace_back(I, C.Held, C.Line);
      }
    }

  // AcquiredTrans: bottom-up union fixpoint.
  for (FuncInfo &F : Funcs)
    F.AcquiredTrans = F.AcquiredLocal;
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (FuncInfo &F : Funcs)
      for (const Call &C : F.Calls) {
        auto It = ByName.find(C.Callee);
        if (It == ByName.end())
          continue;
        for (size_t J : It->second)
          for (const std::string &M : Funcs[J].AcquiredTrans)
            if (F.AcquiredTrans.insert(M).second)
              Changed = true;
      }
  }

  // CallerHeld: which functions a scanned entry point can reach.
  // Roots (no scanned caller) and cycle-only functions are pinned to
  // the empty set — they may be entered from outside the scanned
  // tree with nothing held.
  std::vector<char> RootReach(Funcs.size(), 0);
  {
    std::vector<size_t> Work;
    for (size_t I = 0; I < Funcs.size(); ++I)
      if (!Funcs[I].HasCallers) {
        RootReach[I] = 1;
        Work.push_back(I);
      }
    while (!Work.empty()) {
      size_t I = Work.back();
      Work.pop_back();
      for (const Call &C : Funcs[I].Calls) {
        auto It = ByName.find(C.Callee);
        if (It == ByName.end())
          continue;
        for (size_t J : It->second)
          if (!RootReach[J]) {
            RootReach[J] = 1;
            Work.push_back(J);
          }
      }
    }
  }
  for (size_t I = 0; I < Funcs.size(); ++I)
    if (!Funcs[I].HasCallers || !RootReach[I]) {
      Funcs[I].CallerHeld = FactSet();
      Funcs[I].Pinned = true;
    }
  // Greatest fixpoint: intersection over all observed call sites of
  // (locks held at the site ∪ locks the caller's own callers hold).
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t I = 0; I < Funcs.size(); ++I) {
      if (Funcs[I].Pinned)
        continue;
      std::optional<FactSet> New;
      for (const auto &[CallerIdx, SiteHeld, SiteLine] : CallersOf[I]) {
        (void)SiteLine;
        if (!Funcs[CallerIdx].CallerHeld)
          continue; // Top contribution: identity under intersection.
        FactSet Contrib = SiteHeld;
        Contrib.insert(Funcs[CallerIdx].CallerHeld->begin(),
                       Funcs[CallerIdx].CallerHeld->end());
        if (!New) {
          New = std::move(Contrib);
          continue;
        }
        FactSet Inter;
        for (const std::string &M : *New)
          if (Contrib.count(M))
            Inter.insert(M);
        New = std::move(Inter);
      }
      if (New != Funcs[I].CallerHeld) {
        Funcs[I].CallerHeld = std::move(New);
        Changed = true;
      }
    }
  }

  // Step 4: the three rules.
  std::vector<Finding> Raw;
  emitLockOrder(Funcs, ByName, Declared, Raw);
  emitGuardedBy(Funcs, CallersOf, Raw);
  emitAtomicMisuse(AtomicOps, Writes, Raw);

  // Per-line allow() suppression, then the audit-standard sort.
  std::map<std::string, const LexedSource *> ByPath;
  for (const auto &U : Units)
    ByPath.emplace(U->Path, &U->Src);
  std::vector<Finding> Result;
  for (Finding &F : Raw) {
    auto It = ByPath.find(F.Path);
    if (It != ByPath.end()) {
      auto Ln = It->second->AllowedRules.find(F.Line);
      if (Ln != It->second->AllowedRules.end() && Ln->second.count(F.RuleId))
        continue;
    }
    Result.push_back(std::move(F));
  }
  std::sort(Result.begin(), Result.end(),
            [](const Finding &A, const Finding &B) {
              if (A.Path != B.Path)
                return A.Path < B.Path;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.RuleId < B.RuleId;
            });
  return Result;
}

/// Registry entries for the interprocedural concurrency pass,
/// composed into allRules() so --explain and allow()-marker
/// validation see them.
const std::vector<RuleInfo> &rap::lint::concurrencyRuleInfos() {
  static const std::vector<RuleInfo> Rules = {
      {"lock-order",
       "the global lock-acquisition graph (observed edges + "
       "RAP_ACQUIRED_BEFORE declarations) must stay acyclic",
       "Interprocedural pass (rap_lint v3). Records every 'mutex B "
       "acquired while A is held' edge — inside one function, or "
       "through any call chain whose callee may transitively acquire B "
       "— plus the orders declared with RAP_ACQUIRED_BEFORE(A, B). "
       "Flags re-acquiring a held non-recursive mutex, an observed "
       "edge that contradicts a declared order, and any cycle: two "
       "threads interleaving the chains of a cycle can each hold a "
       "lock the other wants, and the sharded ingest path deadlocks "
       "instead of combining. Fix: pick one global order (for RAP, "
       "GlobalMu before any shard Mu), declare it, and follow it."},
      {"guarded-by",
       "RAP_GUARDED_BY fields are only touched where the mutex is held "
       "locally, required via RAP_REQUIRES, or held by every observed "
       "caller",
       "Interprocedural pass (rap_lint v3), replacing the per-function "
       "lock-discipline approximation in whole-tree runs. An access is "
       "clean when the mutex is must-held locally, or when EVERY "
       "observed call chain into the function holds it at the call "
       "site (computed as an intersection fixpoint over the project "
       "call graph). Functions with no scanned caller — or reachable "
       "only through call cycles with no scanned entry — are treated "
       "as externally callable with nothing held, so public entry "
       "points should lock or carry RAP_REQUIRES rather than rely on "
       "callers. The finding names a concrete unsatisfying chain."},
      {"atomic-misuse",
       "no relaxed ordering on cross-thread handoff atomics; no "
       "non-atomic RMW of a field also written under a different lock",
       "Interprocedural pass (rap_lint v3). A std::atomic with "
       "store/exchange/CAS sites is a handoff: its consumers "
       "synchronize with the data written before the store, so "
       "memory_order_relaxed on any of its accesses silently removes "
       "the ordering the handoff exists to provide (pure counters — "
       "fetch_add/fetch_sub/load only — may stay relaxed; the "
       "failpoint arm counter is the house example). Separately flags "
       "a non-atomic ++/+= of a variable that other code writes under "
       "a different lock or no lock: the read-modify-write can "
       "interleave with that write and lose updates. Fix: use "
       "release/acquire (or the seq_cst default), make the field "
       "std::atomic, or guard every access with one mutex."},
  };
  return Rules;
}
