//===- lint/Cfg.h - Per-function control-flow graphs ----------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs over lint::Parser statement trees. Each
/// Function becomes one Cfg: basic blocks hold a sequence of Actions
/// (token ranges that execute straight-line) and edges follow the
/// statement structure — branches, loops, switch fallthrough, goto,
/// and a conservative try/catch approximation (an edge from the try
/// entry to every handler, since any action inside may throw).
///
/// Compound scope exits surface as ScopeEnd actions so RAII effects
/// (releasing a lock_guard) are visible to dataflow rules. The dump()
/// format is stable and terse on purpose: golden files under
/// tests/lint/fixtures/ diff it directly.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_CFG_H
#define RAP_LINT_CFG_H

#include "lint/Parser.h"

#include <cstddef>
#include <string>
#include <vector>

namespace rap {
namespace lint {

/// One straight-line step inside a basic block.
struct Action {
  enum class Kind {
    Expr,     ///< Expression statement tokens.
    Decl,     ///< Declaration statement tokens.
    Cond,     ///< Branch/loop/switch condition tokens.
    Return,   ///< `return` expression tokens (possibly empty).
    ScopeEnd, ///< A compound ended; S is the compound statement.
  };

  Kind ActionKind;
  const Stmt *S = nullptr;          ///< Owning statement.
  size_t Begin = 0, End = 0;        ///< Token index range (half-open).
  unsigned Line = 0;
};

/// One basic block.
struct BasicBlock {
  size_t Id = 0;
  std::string Note; ///< "entry", "exit", "then", "loop", "case 3", ...
  std::vector<Action> Actions;
  std::vector<size_t> Succs;
};

/// A per-function CFG. Block 0 is the entry, block 1 the exit; both
/// are always present. Unreachable statement blocks are kept (they
/// simply have no predecessors) so dumps show dead code honestly.
struct Cfg {
  std::string FunctionName;
  std::vector<BasicBlock> Blocks;
  static constexpr size_t Entry = 0;
  static constexpr size_t Exit = 1;

  /// Predecessor lists, index-aligned with Blocks.
  std::vector<std::vector<size_t>> predecessors() const;

  /// Stable text rendering for golden tests:
  ///   fn name
  ///     B0 entry: -> B2
  ///     B2 then: expr@4 decl@5 -> B1
  ///     B1 exit:
  std::string dump() const;
};

/// Builds the CFG for one parsed function.
Cfg buildCfg(const Function &Fn);

} // namespace lint
} // namespace rap

#endif // RAP_LINT_CFG_H
