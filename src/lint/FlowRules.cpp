//===- lint/FlowRules.cpp - Flow-aware rap_lint rules --------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/FlowRules.h"

#include "lint/Cfg.h"
#include "lint/Dataflow.h"

#include <cctype>
#include <map>

using namespace rap;
using namespace rap::lint;

namespace {

bool isIdent(const Token &T, const char *Name) {
  return T.TokenKind == Token::Kind::Identifier && T.Text == Name;
}

bool isPunct(const Token &T, const char *Spelling) {
  return T.TokenKind == Token::Kind::Punct && T.Text == Spelling;
}

/// Mirrors the counter-arithmetic field list (Lint.cpp): event-weight
/// accumulators where a wrap breaks the monotone lower-bound argument.
const std::set<std::string> &counterFields() {
  static const std::set<std::string> Fields = {
      "Count",     "TotalCount", "Weight",            "SubtreeWeight",
      "ExclusiveWeight", "NumEvents",  "NumOffered", "NodeCountIntegral"};
  return Fields;
}

/// Accessors whose return value is a live counter.
const std::set<std::string> &counterGetters() {
  static const std::set<std::string> Getters = {
      "count", "numEvents", "subtreeWeight", "totalCount",
      "exclusiveWeight", "weight"};
  return Getters;
}

/// Functions whose result stays in the saturating-counter domain.
const std::set<std::string> &counterDomainFns() {
  static const std::set<std::string> Fns = {"saturatingAdd", "saturatingMul",
                                            "estimateRange"};
  return Fns;
}

size_t matchDelim(const std::vector<Token> &T, size_t Open, size_t End,
                  const char *OpenText, const char *CloseText) {
  unsigned Depth = 0;
  for (size_t I = Open; I < End; ++I) {
    if (isPunct(T[I], OpenText))
      ++Depth;
    else if (isPunct(T[I], CloseText) && --Depth == 0)
      return I;
  }
  return End;
}

/// Backward matcher: index of the `(` matching the `)` at \p Close,
/// or SIZE_MAX.
size_t matchDelimBack(const std::vector<Token> &T, size_t Close,
                      const char *OpenText, const char *CloseText) {
  unsigned Depth = 0;
  for (size_t I = Close + 1; I-- > 0;) {
    if (isPunct(T[I], CloseText))
      ++Depth;
    else if (isPunct(T[I], OpenText) && --Depth == 0)
      return I;
  }
  return SIZE_MAX;
}

/// Masks tokens that belong to a nested lambda body out of scans over
/// an enclosing statement (the lambda runs later, as its own CFG).
class LambdaMask {
public:
  explicit LambdaMask(const ParsedFile &Parsed)
      : Bodies(Parsed.LambdaBodies) {}

  /// True if token \p I should be skipped for an action whose tokens
  /// start at \p ActionBegin.
  bool skip(size_t I, size_t ActionBegin) const {
    for (const auto &[B, E] : Bodies)
      if (I > B && I < E && !(ActionBegin > B && ActionBegin < E))
        return true;
    return false;
  }

private:
  const std::vector<std::pair<size_t, size_t>> &Bodies;
};

/// Whether the identifier at \p I is a fresh name use rather than the
/// tail of a member/qualifier chain (`o.x`, `o->x`, `N::x`). `this->x`
/// still counts: it is the same object the guard covers.
bool isDirectUse(const std::vector<Token> &T, size_t I, size_t Begin) {
  if (I == Begin)
    return true;
  const Token &Prev = T[I - 1];
  if (isPunct(Prev, ".") || isPunct(Prev, "::"))
    return false;
  if (isPunct(Prev, "->"))
    return I >= 2 && isIdent(T[I - 2], "this");
  return true;
}

//===----------------------------------------------------------------------===//
// unchecked-status
//===----------------------------------------------------------------------===//

/// Searches forward from action \p StartAction of block \p StartBlock
/// for a read of \p Var. A plain reassignment (`Var =`) kills the
/// path. Returns true if any path reads the value.
bool anyPathReads(const Cfg &G, const std::vector<Token> &T,
                  size_t StartBlock, size_t StartAction,
                  const std::string &Var) {
  // Scans one action; returns true on read, sets Killed on overwrite.
  auto ScanAction = [&](const Action &A, bool &Killed) {
    bool Read = false;
    for (size_t I = A.Begin; I < A.End; ++I) {
      if (T[I].TokenKind != Token::Kind::Identifier || T[I].Text != Var)
        continue;
      if (!isDirectUse(T, I, A.Begin))
        continue;
      if (I + 1 < A.End && isPunct(T[I + 1], "=")) {
        Killed = true; // Overwritten; the RHS was scanned separately.
        continue;
      }
      Read = true;
    }
    return Read;
  };

  std::vector<bool> Visited(G.Blocks.size(), false);
  std::vector<std::pair<size_t, size_t>> Work{{StartBlock, StartAction + 1}};
  while (!Work.empty()) {
    auto [B, From] = Work.back();
    Work.pop_back();
    bool Killed = false;
    const BasicBlock &Block = G.Blocks[B];
    for (size_t A = From; A < Block.Actions.size() && !Killed; ++A)
      if (ScanAction(Block.Actions[A], Killed))
        return true;
    if (Killed)
      continue;
    for (size_t Succ : Block.Succs)
      if (!Visited[Succ]) {
        Visited[Succ] = true;
        Work.emplace_back(Succ, 0);
      }
  }
  return false;
}

void runUncheckedStatus(const std::string &Path, const LexedSource &Src,
                        const ParsedFile &Parsed,
                        const std::set<std::string> &StatusFns,
                        const Cfg &G, std::vector<Finding> &Out) {
  const std::vector<Token> &T = Src.Tokens;
  LambdaMask Mask(Parsed);
  for (const BasicBlock &B : G.Blocks) {
    for (size_t AI = 0; AI < B.Actions.size(); ++AI) {
      const Action &A = B.Actions[AI];
      if (A.ActionKind == Action::Kind::Expr) {
        // Bare call statement: `f(...)` / `obj.f(...)` with nothing
        // else. `(void)f(...)` and static_cast<void>(...) are the
        // sanctioned explicit discards.
        size_t I = A.Begin;
        if (I < A.End && isPunct(T[I], "(") && I + 2 < A.End &&
            isIdent(T[I + 1], "void") && isPunct(T[I + 2], ")"))
          continue;
        if (I < A.End && isIdent(T[I], "static_cast"))
          continue;
        size_t Paren = A.End;
        std::string Callee = calleeAt(T, I, A.End, Paren);
        if (Callee.empty() || !StatusFns.count(Callee))
          continue;
        size_t Close = matchDelim(T, Paren, A.End, "(", ")");
        if (Close + 1 != A.End)
          continue; // Part of a larger expression; the result is used.
        Out.push_back(
            {"unchecked-status", Path, A.Line,
             "result of status function '" + Callee +
                 "' is dropped; check it (or cast to (void) with a reason) "
                 "— a silently ignored failure here voids the eps*n "
                 "accuracy contract downstream"});
        continue;
      }
      if (A.ActionKind != Action::Kind::Decl)
        continue;
      // `auto Ok = f(...)` where no path reads Ok afterwards. Tokens
      // inside a nested lambda body are the lambda CFG's business.
      for (size_t I = A.Begin; I + 1 < A.End; ++I) {
        if (Mask.skip(I, A.Begin))
          continue;
        if (!isPunct(T[I + 1], "=") ||
            T[I].TokenKind != Token::Kind::Identifier)
          continue;
        size_t Paren = A.End;
        std::string Callee = calleeAt(T, I + 2, A.End, Paren);
        if (Callee.empty() || !StatusFns.count(Callee))
          continue;
        const std::string &Var = T[I].Text;
        if (!anyPathReads(G, T, B.Id, AI, Var))
          Out.push_back(
              {"unchecked-status", Path, A.Line,
               "status of '" + Callee + "' is stored in '" + Var +
                   "' but no path ever reads it; check the result or "
                   "discard it explicitly with (void)"});
        break; // One initializer per declaration statement.
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// use-after-move
//===----------------------------------------------------------------------===//

/// Matches `std::move(x)` / `move(x)` with a single-identifier
/// operand at token \p I (pointing at `move`).
bool isMoveCallAt(const std::vector<Token> &T, size_t I, size_t End,
                  std::string &Var) {
  if (!isIdent(T[I], "move") || I + 3 >= End + 1)
    return false;
  if (I + 3 >= T.size() || I + 3 >= End)
    return false;
  if (!isPunct(T[I + 1], "(") ||
      T[I + 2].TokenKind != Token::Kind::Identifier ||
      !isPunct(T[I + 3], ")"))
    return false;
  // Reject member calls `obj.move(...)`; `std::move` and bare `move`
  // (via using-declaration) are accepted.
  if (I > 0 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")))
    return false;
  Var = T[I + 2].Text;
  return true;
}

/// Walks one action, updating the moved-from set; emits findings when
/// \p Path is non-null (final pass).
void transferMove(const std::vector<Token> &T, const Action &A,
                  const LambdaMask &Mask, FactSet &Moved,
                  const std::string *Path, std::vector<Finding> *Out) {
  static const std::set<std::string> ReviveCalls = {"clear", "reset",
                                                    "assign", "emplace"};
  for (size_t I = A.Begin; I < A.End; ++I) {
    if (Mask.skip(I, A.Begin))
      continue;
    std::string MovedVar;
    if (isMoveCallAt(T, I, A.End, MovedVar)) {
      if (Moved.count(MovedVar) && Path && Out)
        Out->push_back({"use-after-move", *Path, T[I].Line,
                        "'" + MovedVar +
                            "' is moved from again after an earlier "
                            "std::move; the first move left it "
                            "valid-but-unspecified"});
      Moved.insert(MovedVar);
      I += 3;
      continue;
    }
    const Token &Tok = T[I];
    if (Tok.TokenKind != Token::Kind::Identifier || !Moved.count(Tok.Text))
      continue;
    if (!isDirectUse(T, I, A.Begin))
      continue;
    const Token *Next = I + 1 < A.End ? &T[I + 1] : nullptr;
    if (Next && isPunct(*Next, "=")) {
      Moved.erase(Tok.Text); // Reassigned; the name is fresh again.
      continue;
    }
    if (Next && (isPunct(*Next, ".") || isPunct(*Next, "->")) &&
        I + 3 < A.End && T[I + 2].TokenKind == Token::Kind::Identifier &&
        ReviveCalls.count(T[I + 2].Text) && isPunct(T[I + 3], "(")) {
      Moved.erase(Tok.Text); // x.clear() etc. re-establishes a state.
      I += 2;
      continue;
    }
    // A declaration re-introducing the name: `T x(...)` / `T x;` —
    // the previous token is the type tail, and we are in a Decl.
    if (A.ActionKind == Action::Kind::Decl && I > A.Begin) {
      const Token &Prev = T[I - 1];
      bool TypeTail = Prev.TokenKind == Token::Kind::Identifier ||
                      isPunct(Prev, ">") || isPunct(Prev, "*") ||
                      isPunct(Prev, "&") || isPunct(Prev, "&&");
      if (TypeTail) {
        Moved.erase(Tok.Text);
        continue;
      }
    }
    if (Path && Out)
      Out->push_back({"use-after-move", *Path, Tok.Line,
                      "'" + Tok.Text +
                          "' is used after being moved from; reassign or "
                          "re-initialize it before reading"});
    Moved.erase(Tok.Text); // Report each lost value once.
  }
}

void runUseAfterMove(const std::string &Path, const LexedSource &Src,
                     const ParsedFile &Parsed, const Cfg &G,
                     std::vector<Finding> &Out) {
  const std::vector<Token> &T = Src.Tokens;
  LambdaMask Mask(Parsed);
  auto Transfer = [&](const BasicBlock &B, FactSet State) {
    for (const Action &A : B.Actions)
      transferMove(T, A, Mask, State, nullptr, nullptr);
    return State;
  };
  DataflowResult R = solveForward(G, JoinKind::Union, {}, Transfer);

  std::set<std::pair<unsigned, std::string>> Seen;
  std::vector<Finding> Raw;
  for (const BasicBlock &B : G.Blocks) {
    if (!R.Reached[B.Id])
      continue;
    FactSet State = R.EntryState[B.Id];
    for (const Action &A : B.Actions)
      transferMove(T, A, Mask, State, &Path, &Raw);
  }
  for (Finding &F : Raw)
    if (Seen.emplace(F.Line, F.Message).second)
      Out.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// counter-escape
//===----------------------------------------------------------------------===//

/// True if the identifier at \p I loads a counter: a counter field
/// (member access or bare member use) or a counter getter call.
/// True if the identifier at \p I reads a counter field. A bare use
/// counts only when the name is not shadowed by a parameter or local
/// of the enclosing function (a parameter named `Weight` is the
/// caller's plain integer, not the node field); explicit member
/// accesses (`.` / `->`) are always counter loads.
bool isCounterFieldAt(const std::vector<Token> &T, size_t I,
                      const FactSet &Shadowed) {
  if (!counterFields().count(T[I].Text))
    return false;
  if (I > 0 && (isPunct(T[I - 1], ".") || isPunct(T[I - 1], "->")))
    return true;
  return !Shadowed.count(T[I].Text);
}

bool isCounterLoadAt(const std::vector<Token> &T, size_t I, size_t End,
                     const FactSet &Shadowed) {
  if (T[I].TokenKind != Token::Kind::Identifier)
    return false;
  if (isCounterFieldAt(T, I, Shadowed))
    return true;
  return counterGetters().count(T[I].Text) && I + 1 < End &&
         isPunct(T[I + 1], "(");
}

/// True if any token in [Begin, End) loads a counter or names a
/// tainted local / counter-domain call.
bool rangeTainted(const std::vector<Token> &T, size_t Begin, size_t End,
                  const FactSet &Tainted, const FactSet &Shadowed) {
  for (size_t I = Begin; I < End; ++I) {
    if (isCounterLoadAt(T, I, End, Shadowed))
      return true;
    if (T[I].TokenKind == Token::Kind::Identifier &&
        (Tainted.count(T[I].Text) ||
         (counterDomainFns().count(T[I].Text) && I + 1 < End &&
          isPunct(T[I + 1], "("))))
      return true;
  }
  return false;
}

/// Collects the operand chain to the LEFT of the operator at \p Op
/// and reports whether it is counter-tainted.
bool leftOperandTainted(const std::vector<Token> &T, size_t Op, size_t Begin,
                        const FactSet &Tainted, const FactSet &Shadowed) {
  size_t I = Op;
  while (I > Begin) {
    const Token &Prev = T[I - 1];
    if (isPunct(Prev, ")")) {
      size_t OpenP = matchDelimBack(T, I - 1, "(", ")");
      if (OpenP == SIZE_MAX || OpenP < Begin)
        return false;
      // A call result: counter-domain callee or counter getter.
      if (OpenP > Begin && T[OpenP - 1].TokenKind == Token::Kind::Identifier &&
          (counterDomainFns().count(T[OpenP - 1].Text) ||
           counterGetters().count(T[OpenP - 1].Text)))
        return true;
      I = OpenP;
      continue;
    }
    if (Prev.TokenKind == Token::Kind::Identifier) {
      if (isCounterFieldAt(T, I - 1, Shadowed) || Tainted.count(Prev.Text))
        return true;
      --I;
      continue;
    }
    if (isPunct(Prev, ".") || isPunct(Prev, "->") || isPunct(Prev, "::") ||
        isPunct(Prev, "]") || Prev.TokenKind == Token::Kind::Number) {
      --I;
      continue;
    }
    return false;
  }
  return false;
}

/// Same for the operand chain to the RIGHT of the operator.
bool rightOperandTainted(const std::vector<Token> &T, size_t Op, size_t End,
                         const FactSet &Tainted, const FactSet &Shadowed) {
  size_t I = Op + 1;
  while (I < End) {
    const Token &Tok = T[I];
    if (Tok.TokenKind == Token::Kind::Identifier) {
      if (isCounterFieldAt(T, I, Shadowed) || Tainted.count(Tok.Text))
        return true;
      if (I + 1 < End && isPunct(T[I + 1], "(")) {
        // A call: taint only flows out of the counter domain/getters.
        return counterDomainFns().count(Tok.Text) ||
               counterGetters().count(Tok.Text);
      }
      ++I;
      continue;
    }
    if (isPunct(Tok, ".") || isPunct(Tok, "->") || isPunct(Tok, "::")) {
      ++I;
      continue;
    }
    if (isPunct(Tok, "[")) {
      I = matchDelim(T, I, End, "[", "]") + 1;
      continue;
    }
    return false;
  }
  return false;
}

/// Index of the first top-level `=` in [Begin, End), or End. `==` and
/// friends lex as single tokens, so a bare `=` is an assignment.
size_t topLevelAssign(const std::vector<Token> &T, size_t Begin, size_t End) {
  unsigned Depth = 0;
  for (size_t I = Begin; I < End; ++I) {
    if (isPunct(T[I], "(") || isPunct(T[I], "[") || isPunct(T[I], "{"))
      ++Depth;
    else if (isPunct(T[I], ")") || isPunct(T[I], "]") || isPunct(T[I], "}")) {
      if (Depth > 0)
        --Depth;
    } else if (Depth == 0 && isPunct(T[I], "="))
      return I;
  }
  return End;
}

/// Whether the operator token at \p I is a binary use (has a value on
/// its left), as opposed to unary plus / pointer-declarator star.
bool isBinaryUse(const std::vector<Token> &T, size_t I, size_t Begin) {
  if (I == Begin)
    return false;
  const Token &Prev = T[I - 1];
  return Prev.TokenKind == Token::Kind::Identifier ||
         Prev.TokenKind == Token::Kind::Number || isPunct(Prev, ")") ||
         isPunct(Prev, "]");
}

void transferCounter(const std::vector<Token> &T, const Action &A,
                     const LambdaMask &Mask, const FactSet &Shadowed,
                     FactSet &Tainted, const std::string *Path,
                     std::vector<Finding> *Out) {
  // Findings: raw + / * / += / *= with a counter-tainted operand. In
  // Decl actions only the initializer (after the top-level `=`) is an
  // expression; everything before it is type/declarator syntax.
  size_t ExprFrom = A.Begin;
  size_t Assign = topLevelAssign(T, A.Begin, A.End);
  if (A.ActionKind == Action::Kind::Decl)
    ExprFrom = Assign == A.End ? A.End : Assign + 1;
  if (Path && Out) {
    for (size_t I = ExprFrom; I < A.End; ++I) {
      if (Mask.skip(I, A.Begin) || T[I].TokenKind != Token::Kind::Punct)
        continue;
      const std::string &Op = T[I].Text;
      bool Compound = Op == "*=";
      bool Plain = Op == "+" || Op == "*";
      if (!Compound && !Plain)
        continue;
      if (Plain && !isBinaryUse(T, I, A.Begin))
        continue;
      // `field += x` is counter-arithmetic's finding; this rule owns
      // the escaped-value cases.
      bool L = leftOperandTainted(T, I, A.Begin, Tainted, Shadowed);
      bool R = rightOperandTainted(T, I, A.End, Tainted, Shadowed);
      if (L || R)
        Out->push_back(
            {"counter-escape", *Path, T[I].Line,
             "counter-derived value reaches raw '" + Op +
                 "'; route it through saturatingAdd/saturatingMul "
                 "(support/BitUtils.h) so event weights clamp at 2^64-1 "
                 "instead of wrapping"});
    }
    // `local += <counter>`: += on non-fields escapes the domain too.
    for (size_t I = ExprFrom; I < A.End; ++I) {
      if (Mask.skip(I, A.Begin) || !isPunct(T[I], "+="))
        continue;
      bool FieldTarget = I > A.Begin &&
                         T[I - 1].TokenKind == Token::Kind::Identifier &&
                         counterFields().count(T[I - 1].Text);
      if (FieldTarget)
        continue; // counter-arithmetic already flags this exactly.
      if (leftOperandTainted(T, I, A.Begin, Tainted, Shadowed) ||
          rightOperandTainted(T, I, A.End, Tainted, Shadowed))
        Out->push_back(
            {"counter-escape", *Path, T[I].Line,
             "counter-derived value reaches raw '+='; use "
             "X = saturatingAdd(X, ...) (support/BitUtils.h) so the "
             "accumulator clamps instead of wrapping"});
    }
  }

  // Taint update: `x = RHS` / `type x = RHS`.
  if (A.ActionKind != Action::Kind::Decl &&
      A.ActionKind != Action::Kind::Expr)
    return;
  if (Assign == A.End || Assign == A.Begin)
    return;
  const Token &Target = T[Assign - 1];
  if (Target.TokenKind != Token::Kind::Identifier)
    return;
  bool Rhs = rangeTainted(T, Assign + 1, A.End, Tainted, Shadowed);
  // Casting into the float domain leaves the saturating discipline on
  // purpose (ratios, percentages); such locals are not counters.
  bool FloatDecl = false;
  if (A.ActionKind == Action::Kind::Decl)
    for (size_t I = A.Begin; I < Assign; ++I)
      if (isIdent(T[I], "double") || isIdent(T[I], "float"))
        FloatDecl = true;
  if (Rhs && !FloatDecl)
    Tainted.insert(Target.Text);
  else
    Tainted.erase(Target.Text);
}

void runCounterEscape(const std::string &Path, const LexedSource &Src,
                      const ParsedFile &Parsed, const Function &Fn,
                      const Cfg &G, std::vector<Finding> &Out) {
  const std::vector<Token> &T = Src.Tokens;
  LambdaMask Mask(Parsed);
  FactSet Shadowed = collectShadowedNames(T, Fn, G);
  auto Transfer = [&](const BasicBlock &B, FactSet State) {
    for (const Action &A : B.Actions)
      transferCounter(T, A, Mask, Shadowed, State, nullptr, nullptr);
    return State;
  };
  DataflowResult R = solveForward(G, JoinKind::Union, {}, Transfer);

  std::set<std::pair<unsigned, std::string>> Seen;
  std::vector<Finding> Raw;
  for (const BasicBlock &B : G.Blocks) {
    if (!R.Reached[B.Id])
      continue;
    FactSet State = R.EntryState[B.Id];
    for (const Action &A : B.Actions)
      transferCounter(T, A, Mask, Shadowed, State, &Path, &Raw);
  }
  for (Finding &F : Raw)
    if (Seen.emplace(F.Line, F.Message).second)
      Out.push_back(std::move(F));
}

//===----------------------------------------------------------------------===//
// lock-discipline
//===----------------------------------------------------------------------===//

void runLockDiscipline(const std::string &Path, const LexedSource &Src,
                       const ParsedFile &Parsed, const Function &Fn,
                       const Cfg &G, std::vector<Finding> &Out) {
  if (Parsed.GuardedVars.empty())
    return;
  const std::vector<Token> &T = Src.Tokens;
  std::map<std::string, std::string> GuardOf;
  for (const auto &[Var, Mutex] : Parsed.GuardedVars)
    GuardOf[Var] = Mutex;

  FactSet Entry(Fn.RequiredLocks.begin(), Fn.RequiredLocks.end());
  auto Transfer = [&](const BasicBlock &B, FactSet State) {
    for (const Action &A : B.Actions)
      transferLocks(T, A, State);
    return State;
  };
  DataflowResult R = solveForward(G, JoinKind::Intersection, Entry, Transfer);

  std::set<std::pair<unsigned, std::string>> Seen;
  for (const BasicBlock &B : G.Blocks) {
    if (!R.Reached[B.Id])
      continue;
    FactSet Held = R.EntryState[B.Id];
    for (const Action &A : B.Actions) {
      bool IsAnnotationSite = false;
      if (A.ActionKind == Action::Kind::Decl)
        for (size_t I = A.Begin; I < A.End; ++I)
          if (isIdent(T[I], "RAP_GUARDED_BY"))
            IsAnnotationSite = true;
      if (!IsAnnotationSite) {
        for (size_t I = A.Begin; I < A.End; ++I) {
          if (T[I].TokenKind != Token::Kind::Identifier)
            continue;
          auto It = GuardOf.find(T[I].Text);
          if (It == GuardOf.end() || Held.count(It->second))
            continue;
          if (!isDirectUse(T, I, A.Begin))
            continue;
          if (Seen.emplace(T[I].Line, T[I].Text).second)
            Out.push_back(
                {"lock-discipline", Path, T[I].Line,
                 "'" + T[I].Text + "' is RAP_GUARDED_BY(" + It->second +
                     ") but " + It->second +
                     " is not held on every path here; take a "
                     "lock_guard/unique_lock or annotate the function "
                     "RAP_REQUIRES(" +
                     It->second + ")"});
        }
      }
      transferLocks(T, A, Held);
    }
  }
}

} // namespace

FactSet rap::lint::collectShadowedNames(const std::vector<Token> &T,
                                        const Function &Fn, const Cfg &G) {
  FactSet Shadowed;
  // Parameters: each declarator name is the identifier right before
  // a top-level `,`, `=`, or the closing paren.
  unsigned Depth = 0;
  for (size_t I = Fn.ParamBegin; I < Fn.ParamEnd; ++I) {
    if (isPunct(T[I], "(") || isPunct(T[I], "[") || isPunct(T[I], "{") ||
        isPunct(T[I], "<"))
      ++Depth;
    else if (isPunct(T[I], ")") || isPunct(T[I], "]") ||
             isPunct(T[I], "}") || isPunct(T[I], ">")) {
      if (Depth > 0)
        --Depth;
    }
    if (Depth != 0 || T[I].TokenKind != Token::Kind::Identifier)
      continue;
    bool AtEnd = I + 1 == Fn.ParamEnd;
    if (AtEnd || isPunct(T[I + 1], ",") || isPunct(T[I + 1], "=") ||
        isPunct(T[I + 1], "["))
      Shadowed.insert(T[I].Text);
  }
  // Locals: the declarator of every Decl action (first declarator of
  // a multi-declaration; the rest are rare enough to miss).
  for (const BasicBlock &B : G.Blocks)
    for (const Action &A : B.Actions) {
      if (A.ActionKind != Action::Kind::Decl)
        continue;
      size_t Assign = topLevelAssign(T, A.Begin, A.End);
      size_t NameAt = Assign;
      if (Assign == A.End) {
        // No initializer: the declarator is the last identifier
        // (type tokens all precede it).
        for (size_t I = A.Begin; I < A.End; ++I)
          if (T[I].TokenKind == Token::Kind::Identifier)
            NameAt = I + 1;
      }
      if (NameAt > A.Begin && NameAt <= A.End &&
          T[NameAt - 1].TokenKind == Token::Kind::Identifier)
        Shadowed.insert(T[NameAt - 1].Text);
    }
  return Shadowed;
}

std::string rap::lint::calleeAt(const std::vector<Token> &T, size_t I,
                                size_t End, size_t &Next) {
  std::string Callee;
  size_t J = I;
  while (J < End) {
    if (T[J].TokenKind == Token::Kind::Identifier) {
      Callee = T[J].Text;
      ++J;
      if (J < End && isPunct(T[J], "(")) {
        Next = J;
        return Callee;
      }
      continue;
    }
    if (isPunct(T[J], "::") || isPunct(T[J], ".") || isPunct(T[J], "->")) {
      ++J;
      continue;
    }
    break;
  }
  return std::string();
}

const std::set<std::string> &rap::lint::lockClasses() {
  static const std::set<std::string> Classes = {"lock_guard", "unique_lock",
                                                "scoped_lock"};
  return Classes;
}

std::string rap::lint::lockDeclMutex(const std::vector<Token> &T, size_t Begin,
                                     size_t End) {
  size_t Class = End;
  for (size_t I = Begin; I < End; ++I)
    if (T[I].TokenKind == Token::Kind::Identifier &&
        lockClasses().count(T[I].Text)) {
      Class = I;
      break;
    }
  if (Class == End)
    return std::string();
  size_t Paren = End;
  for (size_t I = Class; I < End; ++I)
    if (isPunct(T[I], "(") || isPunct(T[I], "{")) {
      Paren = I;
      break;
    }
  if (Paren == End)
    return std::string();
  const char *Open = isPunct(T[Paren], "(") ? "(" : "{";
  const char *Close = isPunct(T[Paren], "(") ? ")" : "}";
  size_t CloseAt = matchDelim(T, Paren, End, Open, Close);
  // First argument: the mutex expression up to `,`; its final
  // identifier names the mutex (`Mu`, `this->Mu`, `Shard.Mu`).
  std::string Mutex;
  for (size_t I = Paren + 1; I < CloseAt; ++I) {
    if (isPunct(T[I], ","))
      break;
    if (T[I].TokenKind == Token::Kind::Identifier)
      Mutex = T[I].Text;
  }
  for (size_t I = Paren + 1; I < CloseAt; ++I)
    if (isIdent(T[I], "defer_lock"))
      return std::string();
  return Mutex;
}

void rap::lint::transferLocks(const std::vector<Token> &T, const Action &A,
                              FactSet &Held) {
  if (A.ActionKind == Action::Kind::Decl) {
    std::string Mutex = lockDeclMutex(T, A.Begin, A.End);
    if (!Mutex.empty())
      Held.insert(Mutex);
    return;
  }
  if (A.ActionKind == Action::Kind::ScopeEnd) {
    // RAII: locks declared directly in the ending compound release.
    if (!A.S)
      return;
    for (const auto &Child : A.S->Children) {
      if (Child->Kind != StmtKind::Decl)
        continue;
      std::string Mutex =
          lockDeclMutex(T, Child->ExprBegin, Child->ExprEnd);
      if (!Mutex.empty())
        Held.erase(Mutex);
    }
    return;
  }
  // Manual m.lock() / m.unlock().
  for (size_t I = A.Begin; I + 3 < A.End + 1 && I + 3 < T.size(); ++I) {
    if (I + 3 >= A.End)
      break;
    if (T[I].TokenKind != Token::Kind::Identifier ||
        !(isPunct(T[I + 1], ".") || isPunct(T[I + 1], "->")))
      continue;
    if (!isPunct(T[I + 3], "("))
      continue;
    if (isIdent(T[I + 2], "lock"))
      Held.insert(T[I].Text);
    else if (isIdent(T[I + 2], "unlock"))
      Held.erase(T[I].Text);
  }
}

bool rap::lint::looksLikeStatusName(const std::string &Name) {
  static const std::vector<std::string> Prefixes = {
      "try",      "init",    "open",     "close",    "flush",
      "finish",   "write",   "read",     "load",     "save",
      "verify",   "check",   "parse",    "apply",    "commit",
      "validate", "serialize", "deserialize", "start", "stop",
      "finalize", "run",     "snapshot", "restore",  "recover",
      "configure"};
  std::string Lower;
  for (char C : Name)
    Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  for (const std::string &P : Prefixes)
    if (Lower.rfind(P, 0) == 0)
      return true;
  return false;
}

bool rap::lint::isStatusReturn(const Signature &Sig) {
  if (Sig.Name.rfind("operator", 0) == 0)
    return false;
  const std::string &RT = Sig.ReturnType;
  if (RT.find('*') != std::string::npos)
    return false;
  auto hasWord = [&](const char *W) {
    size_t Pos = 0;
    std::string Word(W);
    while ((Pos = RT.find(Word, Pos)) != std::string::npos) {
      bool LeftOk = Pos == 0 || RT[Pos - 1] == ' ';
      size_t After = Pos + Word.size();
      bool RightOk = After == RT.size() || RT[After] == ' ';
      if (LeftOk && RightOk)
        return true;
      Pos = After;
    }
    return false;
  };
  if (hasWord("rap_status"))
    return true;
  return hasWord("bool") && looksLikeStatusName(Sig.Name);
}

void rap::lint::runFlowRules(const std::string &Path, const LexedSource &Src,
                             const ParsedFile &Parsed, const LintContext &Ctx,
                             bool InCore, std::vector<Finding> &Out) {
  std::set<std::string> StatusFns = Ctx.StatusFunctions;
  for (const Signature &Sig : Parsed.Signatures)
    if (isStatusReturn(Sig))
      StatusFns.insert(Sig.Name);

  for (const auto &Fn : Parsed.Functions) {
    Cfg G = buildCfg(*Fn);
    runUncheckedStatus(Path, Src, Parsed, StatusFns, G, Out);
    runUseAfterMove(Path, Src, Parsed, G, Out);
    if (InCore)
      runCounterEscape(Path, Src, Parsed, *Fn, G, Out);
    runLockDiscipline(Path, Src, Parsed, *Fn, G, Out);
  }
}

/// Registry entries for the per-function flow rules, composed into
/// allRules() so --explain and allow()-marker validation see them.
const std::vector<RuleInfo> &rap::lint::flowRuleInfos() {
  static const std::vector<RuleInfo> Rules = {
      {"unchecked-status",
       "a call returning rap_status/bool-error must have its result "
       "checked on some path",
       "Flow rule (CFG + def-use). Flags a bare call statement to a "
       "status-returning function, and a status stored in a local that "
       "no CFG path ever reads before it dies or is overwritten. A "
       "dropped failure from serialization or trace IO silently voids "
       "the eps*n contract for every consumer downstream. Status "
       "functions: anything returning rap_status, plus bool functions "
       "with fallible names (write*/read*/init*/finish*/try*/...). "
       "Fix: branch on the result, or document the discard with "
       "(void)call()."},
      {"use-after-move",
       "a moved-from local must not be read before reassignment",
       "Flow rule (may-analysis over the CFG). After std::move(x) the "
       "value of x is valid-but-unspecified; a later read on ANY path "
       "is a logic bug even when it happens to work today. Reassignment "
       "(x = ...), re-declaration, or x.clear()/reset()/assign() "
       "re-establish a known state and clear the fact. Fix: reorder the "
       "uses, or re-initialize before reading."},
      {"counter-escape",
       "a value loaded from a saturating counter must not flow into raw "
       "+ / * arithmetic (core/ only)",
       "Flow rule (taint analysis over the CFG). counter-arithmetic "
       "catches direct += on counter fields; this rule tracks counter "
       "values that escape into locals (W = N.Count) and flags raw "
       "+ / * / += / *= on them, which reintroduces the wrap the "
       "saturating helpers exist to prevent. Differences and ratios are "
       "deliberately exempt (deltas are bounded), as are locals cast "
       "into double/float. Fix: saturatingAdd/saturatingMul from "
       "support/BitUtils.h."},
      {"lock-discipline",
       "RAP_GUARDED_BY variables are only touched with their mutex held; "
       "RAP_REQUIRES states a caller-held precondition",
       "Flow rule (must-analysis over the CFG). Annotate shared state "
       "with RAP_GUARDED_BY(Mu) (support/Annotations.h); the rule "
       "verifies every access happens with Mu held on EVERY incoming "
       "path, where holding is a lock_guard/unique_lock/scoped_lock "
       "scope, a manual Mu.lock(), or the function being annotated "
       "RAP_REQUIRES(Mu). This is the gate for the ROADMAP's sharded "
       "profiler: annotate first, and the linter keeps the discipline "
       "honest before a data race ever runs. Under Clang the macros "
       "also enable -Wthread-safety."},
  };
  return Rules;
}
