//===- lint/ValueRange.cpp - Interval abstract interpretation ------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
//
// Layout of this file:
//
//   1. Lattice operations (join/meet/widen/leq/text) and saturating
//      i64 arithmetic clamped to the +/-Inf sentinels.
//   2. A small integer-type table (parseTypeTokens/typeRange) shared
//      by the declarator parser, cast handling and refinement.
//   3. The expression evaluator: a precedence-climbing parser over
//      lexed token ranges producing abstract Values, mutating an
//      abstract environment on assignments, and reporting rule events
//      through an optional sink (null while the fixpoint iterates,
//      live during the post-fixpoint replay pass).
//   4. Branch-condition refinement applied to CFG edges and to the
//      arms of conditional expressions.
//   5. The per-function worklist fixpoint with delayed widening, the
//      replay pass, and the public entry points (runValueRangeRules,
//      collectParamIntervals, intervalsAtExit).
//
// Soundness stance: every imprecision degrades to Untracked, and the
// four rules only fire on tracked intervals, so a construct the
// evaluator cannot model costs a rule a match — never a fabricated
// finding. The one deliberate exception is documented at convert():
// an out-of-range conversion *result* is re-tracked at the full
// destination range, because wraparound provably lands there.
//
//===----------------------------------------------------------------------===//

#include "lint/ValueRange.h"

#include "lint/Cfg.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <set>
#include <sstream>

namespace rap {
namespace lint {

//===----------------------------------------------------------------------===//
// 1. Lattice operations and saturating arithmetic
//===----------------------------------------------------------------------===//

Interval join(const Interval &A, const Interval &B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  if (A.isUntracked() || B.isUntracked())
    return Interval::untracked();
  return Interval::of(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
}

Interval meet(const Interval &A, const Interval &B) {
  if (A.isUntracked())
    return B;
  if (B.isUntracked())
    return A;
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  long long Lo = std::max(A.Lo, B.Lo);
  long long Hi = std::min(A.Hi, B.Hi);
  if (Lo > Hi)
    return Interval::bottom();
  return Interval::of(Lo, Hi);
}

Interval widen(const Interval &Prev, const Interval &Next) {
  if (Prev.isBottom())
    return Next;
  if (Next.isBottom())
    return Prev;
  if (Prev.isUntracked() || Next.isUntracked())
    return Interval::untracked();
  return Interval::of(Next.Lo < Prev.Lo ? -Interval::Inf : Prev.Lo,
                      Next.Hi > Prev.Hi ? Interval::Inf : Prev.Hi);
}

bool intervalLeq(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isUntracked())
    return true;
  if (A.isUntracked() || B.isBottom())
    return false;
  return B.Lo <= A.Lo && A.Hi <= B.Hi;
}

std::string intervalText(const Interval &I) {
  if (I.isBottom())
    return "bottom";
  if (I.isUntracked())
    return "untracked";
  std::ostringstream OS;
  OS << '[';
  if (I.Lo <= -Interval::Inf)
    OS << "-inf";
  else
    OS << I.Lo;
  OS << ", ";
  if (I.Hi >= Interval::Inf)
    OS << "+inf";
  else
    OS << I.Hi;
  OS << ']';
  return OS.str();
}

namespace {

constexpr long long Inf = Interval::Inf;

/// Clamps into the sentinel band so no later i64 operation can
/// overflow (|value| <= 2^62 always).
long long satClamp(long long V) {
  return V > Inf ? Inf : (V < -Inf ? -Inf : V);
}

long long satAdd(long long A, long long B) {
  if (A > 0 && B > Inf - A)
    return Inf;
  if (A < 0 && B < -Inf - A)
    return -Inf;
  return satClamp(A + B);
}

long long satNeg(long long A) { return satClamp(-A); }

long long satMul(long long A, long long B) {
  if (A == 0 || B == 0)
    return 0;
  long long AbsA = A < 0 ? -A : A, AbsB = B < 0 ? -B : B;
  bool Neg = (A < 0) != (B < 0);
  if (AbsA > Inf / AbsB)
    return Neg ? -Inf : Inf;
  return satClamp(A * B);
}

/// Division used for bound candidates; both operands finite, D != 0.
long long satDiv(long long A, long long D) { return A / D; }

/// Left shift of a non-negative base by a non-negative amount <= 62.
long long satShl(long long A, long long S) {
  if (A == 0)
    return 0;
  if (S >= 62 || A > (Inf >> S))
    return Inf;
  return A << S;
}

//===----------------------------------------------------------------------===//
// 2. Integer type table
//===----------------------------------------------------------------------===//

/// What the declarator/cast parsers recover about a type spelling.
/// Width 0 means "integer of unknown width". The model is LP64.
struct IntType {
  int Width = 0;
  bool Signed = true;
  bool IsInt = false;
  bool IsRef = false;
  bool IsFloat = false;
  bool IsAuto = false;
};

bool isTypeQualifier(const std::string &T) {
  return T == "const" || T == "volatile" || T == "constexpr" ||
         T == "static" || T == "inline" || T == "mutable" ||
         T == "register" || T == "thread_local" || T == "typename" ||
         T == "extern";
}

/// Fixed-width and aliased integer spellings. Returns width, sets
/// Signedness; width 0 means "not a known base type".
bool namedIntType(const std::string &T, int &Width, bool &Signed) {
  struct Entry {
    const char *Name;
    int W;
    bool S;
  };
  static const Entry Table[] = {
      {"bool", 1, false},       {"char", 8, true},
      {"wchar_t", 32, true},    {"char8_t", 8, false},
      {"char16_t", 16, false},  {"char32_t", 32, false},
      {"int8_t", 8, true},      {"uint8_t", 8, false},
      {"int16_t", 16, true},    {"uint16_t", 16, false},
      {"int32_t", 32, true},    {"uint32_t", 32, false},
      {"int64_t", 64, true},    {"uint64_t", 64, false},
      {"size_t", 64, false},    {"ssize_t", 64, true},
      {"ptrdiff_t", 64, true},  {"intptr_t", 64, true},
      {"uintptr_t", 64, false}, {"streamsize", 64, true},
      {"streamoff", 64, true},
  };
  for (const Entry &E : Table)
    if (T == E.Name) {
      Width = E.W;
      Signed = E.S;
      return true;
    }
  return false;
}

/// Parses a token range as a type spelling. Consumes the whole range;
/// an unrecognized identifier (a class name) yields IsInt = false.
IntType parseTypeTokens(const LexedSource &Src, size_t B, size_t E) {
  IntType T;
  bool SawUnsigned = false, SawSigned = false;
  int Longs = 0;
  bool SawShort = false, SawIntKw = false;
  bool SawNamed = false;
  int NamedW = 0;
  bool NamedS = true;
  for (size_t I = B; I < E; ++I) {
    const Token &Tok = Src.Tokens[I];
    if (Tok.TokenKind == Token::Kind::Punct) {
      if (Tok.Text == "::")
        continue;
      if (Tok.Text == "&" || Tok.Text == "&&") {
        T.IsRef = true;
        continue;
      }
      // Pointer, template args, array — not a plain integer.
      return IntType{};
    }
    if (Tok.TokenKind != Token::Kind::Identifier)
      return IntType{};
    const std::string &S = Tok.Text;
    if (isTypeQualifier(S) || S == "std")
      continue;
    if (S == "unsigned") {
      SawUnsigned = true;
      continue;
    }
    if (S == "signed") {
      SawSigned = true;
      continue;
    }
    if (S == "short") {
      SawShort = true;
      continue;
    }
    if (S == "long") {
      ++Longs;
      continue;
    }
    if (S == "int") {
      SawIntKw = true;
      continue;
    }
    if (S == "auto") {
      T.IsAuto = true;
      continue;
    }
    if (S == "float" || S == "double") {
      T.IsFloat = true;
      continue;
    }
    int W;
    bool Sg;
    if (namedIntType(S, W, Sg)) {
      if (SawNamed)
        return IntType{}; // Two base types — misparse, bail.
      SawNamed = true;
      NamedW = W;
      NamedS = Sg;
      continue;
    }
    return IntType{}; // Class type or something we do not model.
  }
  if (T.IsFloat || T.IsAuto)
    return T;
  if (SawNamed) {
    T.IsInt = true;
    T.Width = Longs ? 64 : NamedW; // "long double" filtered above.
    T.Signed = SawUnsigned ? false : (SawSigned ? true : NamedS);
    return T;
  }
  if (SawShort || SawIntKw || Longs || SawUnsigned || SawSigned) {
    T.IsInt = true;
    T.Width = SawShort ? 16 : (Longs ? 64 : 32);
    T.Signed = !SawUnsigned;
    return T;
  }
  return IntType{};
}

/// The value range a declared type admits, as a tracked interval.
/// 64-bit types map to sentinel bounds (the lattice cannot represent
/// their exact extremes, and does not need to).
Interval typeRange(const IntType &T) {
  if (!T.IsInt || T.Width == 0)
    return Interval::untracked();
  if (T.Width >= 63)
    return T.Signed ? Interval::of(-Inf, Inf) : Interval::of(0, Inf);
  long long Span = 1LL << T.Width;
  if (T.Signed)
    return Interval::of(-(Span / 2), Span / 2 - 1);
  return Interval::of(0, Span - 1);
}

//===----------------------------------------------------------------------===//
// 3. Abstract environment and expression evaluator
//===----------------------------------------------------------------------===//

/// Abstract state at one program point. Keys are local variable /
/// parameter names plus normalized member-chain spellings (e.g.
/// "N.WidthBits") introduced by refinement or direct assignment.
/// A missing key is Untracked, except at joins: a key present on one
/// side only is kept verbatim when it names a declared local (the
/// other path is outside the variable's scope), and dropped (to
/// Untracked) when it is a chain key (the other path may have gone
/// through code that mutated the underlying object).
struct Env {
  bool Reachable = false;
  std::map<std::string, Interval> V;
};

bool isChainKey(const std::string &K) {
  return K.find('.') != std::string::npos ||
         K.find('[') != std::string::npos ||
         K.find(':') != std::string::npos;
}

Env joinEnv(const Env &A, const Env &B, const std::set<std::string> &Locals) {
  if (!A.Reachable)
    return B;
  if (!B.Reachable)
    return A;
  Env R;
  R.Reachable = true;
  for (const auto &KV : A.V) {
    auto It = B.V.find(KV.first);
    if (It != B.V.end()) {
      Interval J = join(KV.second, It->second);
      if (!J.isUntracked())
        R.V.emplace(KV.first, J);
    } else if (!isChainKey(KV.first) && Locals.count(KV.first)) {
      R.V.insert(KV);
    }
  }
  for (const auto &KV : B.V)
    if (!A.V.count(KV.first) && !isChainKey(KV.first) &&
        Locals.count(KV.first))
      R.V.insert(KV);
  return R;
}

bool envEqual(const Env &A, const Env &B) {
  return A.Reachable == B.Reachable && A.V == B.V;
}

/// Where replayed rule events land. Null while the fixpoint iterates.
struct Sink {
  const std::string *Path = nullptr;
  std::vector<Finding> *Out = nullptr;
  std::set<std::string> Seen; ///< Dedup across replayed blocks.

  void emit(const char *Rule, unsigned Line, const std::string &Msg) {
    std::string Key = std::string(Rule) + '#' + std::to_string(Line) + '#' +
                      Msg;
    if (!Seen.insert(Key).second)
      return;
    Finding F;
    F.RuleId = Rule;
    F.Path = *Path;
    F.Line = Line;
    F.Message = Msg;
    Out->push_back(F);
  }
};

/// One abstract value flowing through the evaluator. LV names the
/// environment key the value was loaded from (empty when the
/// expression is not assignable); Width/Sign carry the declared type
/// when known (Width 0 / Sign -1 otherwise) so shifts and narrowing
/// checks know the operand's width without re-resolving it.
struct Value {
  Interval I = Interval::untracked();
  int Width = 0;
  int Sign = -1; ///< 1 signed, 0 unsigned, -1 unknown.
  std::string LV;
};

Value untrackedValue() { return Value{}; }

/// Everything the evaluator needs besides the cursor: source, the
/// mutable environment, per-name declared types, the names that are
/// genuinely local (for join semantics), names whose address escaped
/// (never tracked), and the optional finding sink.
struct EvalCtx {
  const LexedSource *Src = nullptr;
  Env *E = nullptr;
  const std::map<std::string, IntType> *DeclTypes = nullptr;
  const std::set<std::string> *Locals = nullptr;
  const std::set<std::string> *AliasKilled = nullptr;
  Sink *S = nullptr;
};

/// Callees that neither retain nor mutate their by-value arguments,
/// so a call does not invalidate the argument variables' intervals.
bool isPureCallee(const std::string &Tail) {
  return Tail == "min" || Tail == "max" || Tail == "abs" ||
         Tail == "llabs" || Tail == "clamp" || Tail == "size" ||
         Tail == "empty" || Tail == "count" || Tail == "length" ||
         Tail == "data" || Tail == "c_str" || Tail == "begin" ||
         Tail == "end";
}

/// Conversion into a destination type: witnesses survive when they
/// fit; a provably-escaping witness reports narrowing-truncation and
/// the result re-tracks at the full destination range (wraparound
/// provably lands inside it). Untracked stays untracked — a type is
/// a constraint on the *stored* value, not a witness for it.
Interval convertValue(EvalCtx &C, const Value &V, const IntType &T,
                      bool ExplicitCast, unsigned Ln);

class ExprParser {
public:
  ExprParser(EvalCtx &C, size_t Begin, size_t End)
      : C(C), Toks(C.Src->Tokens), P(Begin), E(End) {}

  /// Entry point: full expression including top-level commas.
  Value parseComma() {
    Value V = parseAssign();
    while (at(",")) {
      ++P;
      V = parseAssign();
    }
    return V;
  }

  Value parseAssign();

  size_t pos() const { return P; }

private:
  EvalCtx &C;
  const std::vector<Token> &Toks;
  size_t P, E;

  bool done() const { return P >= E; }
  const Token &tok() const { return Toks[P]; }
  bool at(const char *T) const {
    return P < E && Toks[P].TokenKind == Token::Kind::Punct &&
           Toks[P].Text == T;
  }
  bool atIdent(const char *T) const {
    return P < E && Toks[P].TokenKind == Token::Kind::Identifier &&
           Toks[P].Text == T;
  }
  unsigned line() const {
    return P < E ? Toks[P].Line : (E > 0 ? Toks[E - 1].Line : 0);
  }

  /// Skips a balanced (), [], {} or <> group starting at P (which must
  /// sit on the opener). Leaves P just past the closer.
  void skipBalanced(const char *Open, const char *Close) {
    int Depth = 0;
    while (P < E) {
      if (at(Open))
        ++Depth;
      else if (at(Close)) {
        if (--Depth == 0) {
          ++P;
          return;
        }
      }
      ++P;
    }
  }

  IntType declTypeOf(const std::string &Name) const {
    auto It = C.DeclTypes->find(Name);
    return It == C.DeclTypes->end() ? IntType{} : It->second;
  }

  Value loadKey(const std::string &Key) {
    Value V;
    V.LV = Key;
    if (!isChainKey(Key)) {
      if (C.AliasKilled->count(Key))
        return V; // Untracked forever, still assignable.
      IntType T = declTypeOf(Key);
      if (T.IsInt) {
        V.Width = T.Width;
        V.Sign = T.Signed ? 1 : 0;
      }
    }
    auto It = C.E->V.find(Key);
    if (It != C.E->V.end())
      V.I = It->second;
    return V;
  }

  /// Erases chain keys that mention \p Name as a whole identifier —
  /// storing to `I` invalidates the meaning of "Nodes[I].Width".
  void killChainsMentioning(const std::string &Name) {
    for (auto It = C.E->V.begin(); It != C.E->V.end();) {
      const std::string &K = It->first;
      bool Mention = false;
      if (isChainKey(K)) {
        size_t Pos = 0;
        while ((Pos = K.find(Name, Pos)) != std::string::npos) {
          bool L = Pos == 0 || (!isalnum((unsigned char)K[Pos - 1]) &&
                                K[Pos - 1] != '_');
          size_t After = Pos + Name.size();
          bool R = After >= K.size() || (!isalnum((unsigned char)K[After]) &&
                                         K[After] != '_');
          if (L && R) {
            Mention = true;
            break;
          }
          ++Pos;
        }
      }
      if (Mention)
        It = C.E->V.erase(It);
      else
        ++It;
    }
  }

  void store(const std::string &Key, const Interval &I) {
    if (Key.empty())
      return;
    if (!isChainKey(Key)) {
      killChainsMentioning(Key);
      if (C.AliasKilled->count(Key)) {
        C.E->V.erase(Key);
        return;
      }
    } else if (Key.find('[') != std::string::npos) {
      // A store through a subscript may alias any other subscripted
      // chain; drop them all, including this one.
      for (auto It = C.E->V.begin(); It != C.E->V.end();)
        if (It->first.find('[') != std::string::npos)
          It = C.E->V.erase(It);
        else
          ++It;
      return;
    }
    if (I.isUntracked())
      C.E->V.erase(Key);
    else
      C.E->V[Key] = I;
  }

  Interval convert(const Value &V, const IntType &T, bool ExplicitCast) {
    return convertValue(C, V, T, ExplicitCast, line());
  }

  Value makeResult(const Interval &I, int Width, int Sign) {
    Value V;
    V.I = I;
    V.Width = Width;
    V.Sign = Sign;
    return V;
  }

  /// Common arithmetic type of a binary operation, usual-promotions
  /// flavored: at least int, widest wins, unsigned wins on ties.
  void commonType(const Value &A, const Value &B, int &W, int &Sg) {
    if (A.Width == 0 || B.Width == 0) {
      W = 0;
      Sg = -1;
      return;
    }
    W = std::max(32, std::max(A.Width, B.Width));
    if (A.Sign < 0 || B.Sign < 0)
      Sg = -1;
    else if (A.Width == B.Width)
      Sg = (A.Sign && B.Sign) ? 1 : 0;
    else
      Sg = A.Width > B.Width ? A.Sign : B.Sign;
  }

  /// Clamps an arithmetic result to the common type: a result the
  /// type can hold passes through; one that provably overflows
  /// degrades to the full type range (still tracked) when the type is
  /// known, and to Untracked when it is not.
  Interval fitResult(const Interval &R, int W, int Sg) {
    if (!R.isRange())
      return R;
    if (W == 0 || Sg < 0) {
      if (R.Lo <= -Inf || R.Hi >= Inf)
        return (R.Lo > -Inf && R.Lo >= 0) ? Interval::of(R.Lo, Inf)
                                          : Interval::untracked();
      return R;
    }
    IntType T;
    T.IsInt = true;
    T.Width = W;
    T.Signed = Sg == 1;
    Interval Range = typeRange(T);
    return intervalLeq(R, Range) ? R : Range;
  }

  Value applyBinary(const std::string &Op, const Value &A, const Value &B,
                    unsigned Line);

  Value parseTernary();
  Value parseLor();
  Value parseLand();
  Value parseBitOr();
  Value parseBitXor();
  Value parseBitAnd();
  Value parseEq();
  Value parseRel();
  Value parseShift();
  Value parseAdd();
  Value parseMul();
  Value parseUnary();
  Value parsePostfix();
  Value parsePrimary();

  friend Env refineEnv(EvalCtx &C, const Env &In, size_t B, size_t End,
                       bool Assume);
};

/// Smallest all-ones mask covering \p H (e.g. 5 -> 7, 8 -> 15).
long long onesCover(long long H) {
  long long M = 1;
  while (M < H && M < Inf)
    M = M * 2 + 1;
  return M;
}

long long divBound(long long A, long long D) {
  if (A <= -Inf || A >= Inf)
    return ((A > 0) == (D > 0)) ? Inf : -Inf;
  if (D <= -Inf || D >= Inf)
    return 0;
  return satDiv(A, D);
}

/// Whether the given bound of \p V's interval merely restates the
/// extreme of V's own declared type. Such a bound is a constraint the
/// type imposes, not a derived witness that the value reaches it, so
/// the sinks do not fire on it: an unsigned clamped to [0, UINT_MAX]
/// by an assignment conversion proves nothing about the shift below.
bool typeExtremeBound(const Value &V, bool HiSide) {
  if (V.Width <= 0 || V.Sign < 0 || !V.I.isRange())
    return false;
  IntType ST;
  ST.IsInt = true;
  ST.Width = V.Width;
  ST.Signed = V.Sign == 1;
  Interval TR = typeRange(ST);
  return HiSide ? V.I.Hi == TR.Hi : V.I.Lo == TR.Lo;
}

Value ExprParser::applyBinary(const std::string &Op, const Value &A,
                              const Value &B, unsigned Ln) {
  int W, Sg;
  commonType(A, B, W, Sg);
  bool BothR = A.I.isRange() && B.I.isRange();

  // Bottom absorbs (and suppresses the sinks below): an operand with
  // no value yet — a bottom-seeded parameter during the ascending
  // interprocedural iteration — makes the whole expression valueless
  // rather than unknown, so `Size + 4` in a forwarding wrapper still
  // contributes nothing to the callee's summary on round one.
  if (A.I.isBottom() || B.I.isBottom()) {
    Value R;
    R.I = Interval::bottom();
    R.Width = W;
    R.Sign = Sg;
    return R;
  }

  if (Op == "+" ) {
    if (!BothR)
      return untrackedValue();
    return makeResult(
        fitResult(Interval::of(satAdd(A.I.Lo, B.I.Lo), satAdd(A.I.Hi, B.I.Hi)),
                  W, Sg),
        W, Sg);
  }
  if (Op == "-") {
    if (!BothR)
      return untrackedValue();
    return makeResult(fitResult(Interval::of(satAdd(A.I.Lo, satNeg(B.I.Hi)),
                                             satAdd(A.I.Hi, satNeg(B.I.Lo))),
                                W, Sg),
                      W, Sg);
  }
  if (Op == "*") {
    if (!BothR)
      return untrackedValue();
    long long C1 = satMul(A.I.Lo, B.I.Lo), C2 = satMul(A.I.Lo, B.I.Hi);
    long long C3 = satMul(A.I.Hi, B.I.Lo), C4 = satMul(A.I.Hi, B.I.Hi);
    long long Lo = std::min(std::min(C1, C2), std::min(C3, C4));
    long long Hi = std::max(std::max(C1, C2), std::max(C3, C4));
    return makeResult(fitResult(Interval::of(Lo, Hi), W, Sg), W, Sg);
  }
  if (Op == "/" || Op == "%") {
    bool IntDividend = A.I.isRange() || A.Width > 0;
    bool TypeOnly = typeExtremeBound(B, false) && typeExtremeBound(B, true);
    if (C.S && IntDividend && B.I.isRange() && B.I.contains(0) && !TypeOnly) {
      if (B.I.Lo == 0 && B.I.Hi == 0)
        C.S->emit("div-by-zero", Ln, "divisor is provably zero");
      else
        C.S->emit("div-by-zero", Ln,
                  "divisor interval " + intervalText(B.I) +
                      " contains zero on some path");
    }
    if (!BothR || B.I.contains(0))
      return untrackedValue();
    if (Op == "%") {
      long long AbsLo = B.I.Lo < 0 ? satNeg(B.I.Lo) : B.I.Lo;
      long long AbsHi = B.I.Hi < 0 ? satNeg(B.I.Hi) : B.I.Hi;
      long long M = std::max(AbsLo, AbsHi);
      if (M >= Inf)
        return untrackedValue();
      if (A.I.Lo >= 0)
        return makeResult(Interval::of(0, std::min(M - 1, A.I.Hi)), W, Sg);
      return makeResult(Interval::of(satNeg(M - 1), M - 1), W, Sg);
    }
    std::vector<long long> Cand;
    if (B.I.Hi >= 1) { // Positive divisor part [max(1,Lo), Hi].
      long long P1 = std::max(1LL, B.I.Lo), P2 = B.I.Hi;
      Cand.push_back(divBound(A.I.Lo, P1));
      Cand.push_back(divBound(A.I.Lo, P2));
      Cand.push_back(divBound(A.I.Hi, P1));
      Cand.push_back(divBound(A.I.Hi, P2));
    }
    if (B.I.Lo <= -1) { // Negative divisor part [Lo, min(-1,Hi)].
      long long N1 = B.I.Lo, N2 = std::min(-1LL, B.I.Hi);
      Cand.push_back(divBound(A.I.Lo, N1));
      Cand.push_back(divBound(A.I.Lo, N2));
      Cand.push_back(divBound(A.I.Hi, N1));
      Cand.push_back(divBound(A.I.Hi, N2));
    }
    if (Cand.empty())
      return untrackedValue();
    long long Lo = *std::min_element(Cand.begin(), Cand.end());
    long long Hi = *std::max_element(Cand.begin(), Cand.end());
    return makeResult(Interval::of(Lo, Hi), W, Sg);
  }
  if (Op == "<<" || Op == ">>") {
    // Only treat as an arithmetic shift when the left side is
    // provably integer-like (tracked, or of known integer type) —
    // `os << X` is an iostream insertion, not a shift.
    bool IntLhs = A.I.isRange() || A.Width > 0;
    if (C.S && IntLhs && B.I.isRange()) {
      long long Wd = A.Width ? std::max(32, A.Width) : 64;
      if (B.I.Lo < 0 && B.I.Lo > -Inf && !typeExtremeBound(B, false))
        C.S->emit("shift-width", Ln,
                  "shift amount " + intervalText(B.I) + " may be negative");
      else if (B.I.Hi >= Wd && !typeExtremeBound(B, true))
        C.S->emit("shift-width", Ln,
                  "shift amount " + intervalText(B.I) +
                      " is not provably below the operand width " +
                      std::to_string(Wd));
    }
    if (!BothR || A.I.Lo < 0 || B.I.Lo < 0 || B.I.Hi > 62)
      return untrackedValue();
    if (Op == "<<")
      return makeResult(fitResult(Interval::of(satShl(A.I.Lo, B.I.Lo),
                                               satShl(A.I.Hi, B.I.Hi)),
                                  A.Width ? std::max(32, A.Width) : 0,
                                  A.Width ? A.Sign : -1),
                        A.Width, A.Sign);
    long long Lo = A.I.Lo >> std::min(B.I.Hi, 62LL);
    long long Hi = A.I.Hi >= Inf ? Inf : (A.I.Hi >> B.I.Lo);
    return makeResult(Interval::of(Lo, Hi), A.Width, A.Sign);
  }
  if (Op == "&") {
    long long Cap = -1;
    if (A.I.isRange() && A.I.Lo >= 0 && A.I.Hi < Inf)
      Cap = A.I.Hi;
    if (B.I.isRange() && B.I.Lo >= 0 && B.I.Hi < Inf)
      Cap = Cap < 0 ? B.I.Hi : std::min(Cap, B.I.Hi);
    if (Cap < 0)
      return untrackedValue();
    return makeResult(Interval::of(0, Cap), W, Sg);
  }
  if (Op == "|" || Op == "^") {
    if (!BothR || A.I.Lo < 0 || B.I.Lo < 0 || A.I.Hi >= Inf ||
        B.I.Hi >= Inf)
      return untrackedValue();
    long long Hi = onesCover(std::max(A.I.Hi, B.I.Hi));
    long long Lo = Op == "|" ? std::max(A.I.Lo, B.I.Lo) : 0;
    return makeResult(Interval::of(Lo, Hi), W, Sg);
  }
  if (Op == "==" || Op == "!=" || Op == "<" || Op == "<=" || Op == ">" ||
      Op == ">=") {
    int Truth = -1; // -1 unknown, 0 false, 1 true.
    if (BothR) {
      bool Lt = A.I.Hi < B.I.Lo, Gt = A.I.Lo > B.I.Hi;
      bool EqOnly = A.I.Lo == A.I.Hi && B.I.Lo == B.I.Hi &&
                    A.I.Lo == B.I.Lo && A.I.Lo > -Inf && A.I.Hi < Inf;
      if (Op == "==")
        Truth = EqOnly ? 1 : ((Lt || Gt) ? 0 : -1);
      else if (Op == "!=")
        Truth = EqOnly ? 0 : ((Lt || Gt) ? 1 : -1);
      else if (Op == "<")
        Truth = Lt ? 1 : (A.I.Lo >= B.I.Hi ? 0 : -1);
      else if (Op == "<=")
        Truth = A.I.Hi <= B.I.Lo ? 1 : (Gt ? 0 : -1);
      else if (Op == ">")
        Truth = Gt ? 1 : (A.I.Hi <= B.I.Lo ? 0 : -1);
      else
        Truth = A.I.Lo >= B.I.Hi ? 1 : (Lt ? 0 : -1);
    }
    Interval R = Truth < 0 ? Interval::of(0, 1)
                           : Interval::constant(Truth);
    return makeResult(R, 1, 0);
  }
  return untrackedValue(); // "<=>" and anything unmodeled.
}

Value ExprParser::parseAssign() {
  Value L = parseTernary();
  if (done() || tok().TokenKind != Token::Kind::Punct)
    return L;
  const std::string &T = tok().Text;
  bool Plain = T == "=";
  bool Compound = T == "+=" || T == "-=" || T == "*=" || T == "/=" ||
                  T == "%=" || T == "<<=" || T == ">>=" || T == "&=" ||
                  T == "|=" || T == "^=";
  if (!Plain && !Compound)
    return L;
  unsigned Ln = tok().Line;
  ++P;
  Value R = parseAssign();
  Value Res = Plain ? R : applyBinary(T.substr(0, T.size() - 1), L, R, Ln);
  Interval St = Res.I;
  if (!L.LV.empty() && !isChainKey(L.LV)) {
    IntType DT = declTypeOf(L.LV);
    if (DT.IsInt)
      St = convert(Res, DT, false);
  }
  store(L.LV, St);
  Value Out;
  Out.I = St;
  Out.Width = L.Width;
  Out.Sign = L.Sign;
  Out.LV = L.LV;
  return Out;
}

Env refineEnv(EvalCtx &C, const Env &In, size_t B, size_t End, bool Assume);

Value ExprParser::parseTernary() {
  size_t CondB = P;
  Value Cond = parseLor();
  if (!at("?"))
    return Cond;
  size_t CondE = P;
  ++P;
  Env Base = *C.E;
  Env TrueEnv = refineEnv(C, Base, CondB, CondE, true);
  Env FalseEnv = refineEnv(C, Base, CondB, CondE, false);
  bool KnownTrue =
      (Cond.I.isRange() && !Cond.I.contains(0)) || !FalseEnv.Reachable;
  bool KnownFalse =
      (Cond.I.isRange() && Cond.I.Lo == 0 && Cond.I.Hi == 0) ||
      !TrueEnv.Reachable;
  Sink *SavedS = C.S;
  if (KnownFalse)
    C.S = nullptr; // Dead arm: evaluate for position only, no findings.
  *C.E = TrueEnv;
  Value VT = parseAssign();
  Env AfterTrue = *C.E;
  C.S = SavedS;
  if (!at(":")) {
    // Misparse (e.g. a comma expression arm). Recover: skip to the
    // matching ':' and give up on precision.
    int Depth = 0;
    while (P < E) {
      if (at("(") || at("[") || at("{"))
        ++Depth;
      else if (at(")") || at("]") || at("}"))
        --Depth;
      else if (at("?"))
        ++Depth;
      else if (at(":") && Depth == 0)
        break;
      ++P;
    }
    if (!at(":")) {
      *C.E = joinEnv(AfterTrue, Base, *C.Locals);
      return untrackedValue();
    }
  }
  ++P;
  if (KnownTrue)
    C.S = nullptr;
  *C.E = FalseEnv;
  Value VF = parseAssign();
  Env AfterFalse = *C.E;
  C.S = SavedS;
  if (KnownTrue && !KnownFalse) {
    *C.E = AfterTrue;
    return VT;
  }
  if (KnownFalse && !KnownTrue) {
    *C.E = AfterFalse;
    return VF;
  }
  *C.E = joinEnv(AfterTrue, AfterFalse, *C.Locals);
  Value R;
  R.I = join(VT.I, VF.I);
  if (VT.Width == VF.Width && VT.Sign == VF.Sign) {
    R.Width = VT.Width;
    R.Sign = VT.Sign;
  }
  return R;
}

Value ExprParser::parseLor() {
  Value L = parseLand();
  while (at("||")) {
    ++P;
    Value R = parseLand();
    bool LT = L.I.isRange() && !L.I.contains(0);
    bool RT = R.I.isRange() && !R.I.contains(0);
    bool LF = L.I.isRange() && L.I.Lo == 0 && L.I.Hi == 0;
    bool RF = R.I.isRange() && R.I.Lo == 0 && R.I.Hi == 0;
    Interval I = (LT || RT) ? Interval::constant(1)
                 : (LF && RF) ? Interval::constant(0)
                              : Interval::of(0, 1);
    L = makeResult(I, 1, 0);
  }
  return L;
}

Value ExprParser::parseLand() {
  Value L = parseBitOr();
  while (at("&&")) {
    ++P;
    Value R = parseBitOr();
    bool LT = L.I.isRange() && !L.I.contains(0);
    bool RT = R.I.isRange() && !R.I.contains(0);
    bool LF = L.I.isRange() && L.I.Lo == 0 && L.I.Hi == 0;
    bool RF = R.I.isRange() && R.I.Lo == 0 && R.I.Hi == 0;
    Interval I = (LF || RF) ? Interval::constant(0)
                 : (LT && RT) ? Interval::constant(1)
                              : Interval::of(0, 1);
    L = makeResult(I, 1, 0);
  }
  return L;
}

Value ExprParser::parseBitOr() {
  Value L = parseBitXor();
  while (at("|")) {
    unsigned Ln = line();
    ++P;
    L = applyBinary("|", L, parseBitXor(), Ln);
  }
  return L;
}

Value ExprParser::parseBitXor() {
  Value L = parseBitAnd();
  while (at("^")) {
    unsigned Ln = line();
    ++P;
    L = applyBinary("^", L, parseBitAnd(), Ln);
  }
  return L;
}

Value ExprParser::parseBitAnd() {
  Value L = parseEq();
  while (at("&")) {
    unsigned Ln = line();
    ++P;
    L = applyBinary("&", L, parseEq(), Ln);
  }
  return L;
}

Value ExprParser::parseEq() {
  Value L = parseRel();
  while (at("==") || at("!=")) {
    std::string Op = tok().Text;
    unsigned Ln = line();
    ++P;
    L = applyBinary(Op, L, parseRel(), Ln);
  }
  return L;
}

Value ExprParser::parseRel() {
  Value L = parseShift();
  while (at("<") || at("<=") || at(">") || at(">=") || at("<=>")) {
    std::string Op = tok().Text;
    unsigned Ln = line();
    ++P;
    L = applyBinary(Op, L, parseShift(), Ln);
  }
  return L;
}

Value ExprParser::parseShift() {
  Value L = parseAdd();
  while (at("<<") || at(">>")) {
    std::string Op = tok().Text;
    unsigned Ln = line();
    ++P;
    L = applyBinary(Op, L, parseAdd(), Ln);
  }
  return L;
}

Value ExprParser::parseAdd() {
  Value L = parseMul();
  while (at("+") || at("-")) {
    std::string Op = tok().Text;
    unsigned Ln = line();
    ++P;
    L = applyBinary(Op, L, parseMul(), Ln);
  }
  return L;
}

Value ExprParser::parseMul() {
  Value L = parseUnary();
  while (at("*") || at("/") || at("%")) {
    std::string Op = tok().Text;
    unsigned Ln = line();
    ++P;
    L = applyBinary(Op, L, parseUnary(), Ln);
  }
  return L;
}

Value ExprParser::parseUnary() {
  if (done())
    return untrackedValue();
  if (at("-")) {
    ++P;
    Value V = parseUnary();
    if (!V.I.isRange())
      return untrackedValue();
    return makeResult(Interval::of(satNeg(V.I.Hi), satNeg(V.I.Lo)), V.Width,
                      V.Sign);
  }
  if (at("+")) {
    ++P;
    return parseUnary();
  }
  if (at("!")) {
    ++P;
    Value V = parseUnary();
    if (V.I.isRange() && !V.I.contains(0))
      return makeResult(Interval::constant(0), 1, 0);
    if (V.I.isRange() && V.I.Lo == 0 && V.I.Hi == 0)
      return makeResult(Interval::constant(1), 1, 0);
    return makeResult(Interval::of(0, 1), 1, 0);
  }
  if (at("~") || at("*") || at("&")) {
    ++P;
    parseUnary();
    return untrackedValue();
  }
  if (at("++") || at("--")) {
    bool Up = tok().Text == "++";
    ++P;
    Value V = parseUnary();
    if (V.LV.empty())
      return untrackedValue();
    Interval NI = Interval::untracked();
    if (V.I.isRange())
      NI = Interval::of(satAdd(V.I.Lo, Up ? 1 : -1),
                        satAdd(V.I.Hi, Up ? 1 : -1));
    if (!V.LV.empty() && !isChainKey(V.LV)) {
      IntType DT = declTypeOf(V.LV);
      if (DT.IsInt && NI.isRange() && !intervalLeq(NI, typeRange(DT)))
        NI = typeRange(DT);
    }
    store(V.LV, NI);
    Value Out = V;
    Out.I = NI;
    return Out;
  }
  return parsePostfix();
}

/// Index just past the token matching the opener at \p From, or \p E.
size_t matchCloseIdx(const std::vector<Token> &Toks, size_t From, size_t E,
                     const char *Open, const char *Close) {
  int Depth = 0;
  for (size_t I = From; I < E; ++I) {
    if (Toks[I].TokenKind != Token::Kind::Punct)
      continue;
    if (Toks[I].Text == Open)
      ++Depth;
    else if (Toks[I].Text == Close && --Depth == 0)
      return I;
  }
  return E;
}

std::string textOf(const std::vector<Token> &Toks, size_t B, size_t E) {
  std::string R;
  for (size_t I = B; I < E; ++I)
    R += Toks[I].Text;
  return R;
}

Value ExprParser::parsePostfix() {
  size_t Start = P;
  Value V = parsePrimary();
  while (P < E) {
    if (at(".") || at("->")) {
      ++P;
      if (P < E && tok().TokenKind == Token::Kind::Identifier) {
        std::string Name = tok().Text;
        ++P;
        if (!V.LV.empty()) {
          V = loadKey(V.LV + "." + Name);
        } else {
          V = untrackedValue();
        }
      } else {
        return untrackedValue();
      }
      continue;
    }
    if (at("::")) {
      ++P;
      if (P < E && tok().TokenKind == Token::Kind::Identifier) {
        std::string Name = tok().Text;
        ++P;
        V = V.LV.empty() ? untrackedValue() : loadKey(V.LV + "::" + Name);
      } else {
        return untrackedValue();
      }
      continue;
    }
    if (at("[")) {
      size_t Close = matchCloseIdx(Toks, P, E, "[", "]");
      if (Close >= E)
        return untrackedValue();
      {
        ExprParser Inner(C, P + 1, Close);
        if (P + 1 < Close)
          Inner.parseComma();
      }
      std::string Sub = textOf(Toks, P + 1, Close);
      P = Close + 1;
      V = V.LV.empty() ? untrackedValue()
                       : loadKey(V.LV + "[" + Sub + "]");
      continue;
    }
    if (at("(") || at("{")) {
      bool Brace = at("{");
      // A chain that spells an integer type is a functional cast:
      // uint32_t(X), std::int16_t{X}.
      IntType CastT;
      if (!V.LV.empty())
        CastT = parseTypeTokens(*C.Src, Start, P);
      size_t Close = Brace ? matchCloseIdx(Toks, P, E, "{", "}")
                           : matchCloseIdx(Toks, P, E, "(", ")");
      if (Close >= E) {
        P = E;
        return untrackedValue();
      }
      unsigned CallLine = tok().Line;
      size_t ArgB = P + 1;
      std::vector<Value> Args;
      std::vector<std::pair<size_t, size_t>> ArgRanges;
      if (ArgB < Close) {
        ExprParser Sub(C, ArgB, Close);
        while (true) {
          size_t AB = Sub.P;
          Args.push_back(Sub.parseAssign());
          ArgRanges.emplace_back(AB, Sub.P);
          if (Sub.at(",")) {
            ++Sub.P;
            continue;
          }
          break;
        }
      }
      P = Close + 1;
      if (CastT.IsInt && Args.size() == 1) {
        Interval CI = convert(Args[0], CastT, true);
        V = makeResult(CI, CastT.Width, CastT.Signed ? 1 : 0);
        continue;
      }
      if (Brace && !CastT.IsInt) {
        // Braced list on a non-type chain — aggregate init, opaque.
        V = untrackedValue();
        continue;
      }
      std::string Tail = V.LV;
      size_t SepDot = Tail.rfind('.');
      size_t SepCol = Tail.rfind(':');
      size_t Sep = SepDot == std::string::npos
                       ? SepCol
                       : (SepCol == std::string::npos
                              ? SepDot
                              : std::max(SepDot, SepCol));
      if (Sep != std::string::npos)
        Tail = Tail.substr(Sep + 1);
      if (C.S && C.E->Reachable && Tail == "read" && Args.size() == 2) {
        const Interval &Len = Args[1].I;
        if (!(Len.isRange() && Len.Lo >= 0 && Len.Hi < Inf))
          C.S->emit("unbounded-read", CallLine,
                    "read length is not provably bounded (" +
                        intervalText(Len) + ")");
      }
      if (!isPureCallee(Tail)) {
        // The callee may mutate by-reference arguments and any object
        // reachable from elsewhere: drop tracked chains, and drop any
        // argument passed as a bare variable name.
        for (auto It = C.E->V.begin(); It != C.E->V.end();)
          if (isChainKey(It->first))
            It = C.E->V.erase(It);
          else
            ++It;
        for (const auto &RG : ArgRanges)
          if (RG.second - RG.first == 1 &&
              Toks[RG.first].TokenKind == Token::Kind::Identifier)
            C.E->V.erase(Toks[RG.first].Text);
      }
      V = untrackedValue();
      continue;
    }
    if (at("++") || at("--")) {
      bool Up = tok().Text == "++";
      ++P;
      if (V.LV.empty()) {
        V = untrackedValue();
        continue;
      }
      Interval NI = Interval::untracked();
      if (V.I.isRange())
        NI = Interval::of(satAdd(V.I.Lo, Up ? 1 : -1),
                          satAdd(V.I.Hi, Up ? 1 : -1));
      if (!isChainKey(V.LV)) {
        IntType DT = declTypeOf(V.LV);
        if (DT.IsInt && NI.isRange() && !intervalLeq(NI, typeRange(DT)))
          NI = typeRange(DT);
      }
      store(V.LV, NI);
      Value Old = V; // Post-inc yields the pre-update value.
      Old.LV.clear();
      V = Old;
      continue;
    }
    break;
  }
  return V;
}

Value ExprParser::parsePrimary() {
  if (done())
    return untrackedValue();
  const Token &T = tok();
  if (T.TokenKind == Token::Kind::Number) {
    std::string S;
    for (char Ch : T.Text)
      if (Ch != '\'')
        S += Ch;
    ++P;
    if (S.find('.') != std::string::npos)
      return untrackedValue();
    int BaseN = 10;
    size_t Off = 0;
    if (S.size() > 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X')) {
      BaseN = 16;
      Off = 2;
    } else if (S.size() > 2 && S[0] == '0' && (S[1] == 'b' || S[1] == 'B')) {
      BaseN = 2;
      Off = 2;
    } else if (S.size() > 1 && S[0] == '0' && isdigit((unsigned char)S[1])) {
      BaseN = 8;
      Off = 1;
    }
    if (BaseN == 10 && (S.find('e') != std::string::npos ||
                        S.find('E') != std::string::npos))
      return untrackedValue();
    unsigned long long Acc = 0;
    bool Any = false;
    for (size_t I = Off; I < S.size(); ++I) {
      char Ch = S[I];
      int D;
      if (Ch >= '0' && Ch <= '9')
        D = Ch - '0';
      else if (BaseN == 16 && Ch >= 'a' && Ch <= 'f')
        D = Ch - 'a' + 10;
      else if (BaseN == 16 && Ch >= 'A' && Ch <= 'F')
        D = Ch - 'A' + 10;
      else
        break; // Suffix (u, l, z, ull...).
      if (D >= BaseN)
        return untrackedValue();
      Any = true;
      if (Acc > (unsigned long long)Inf / (unsigned)BaseN)
        return untrackedValue(); // Beyond the sentinel band.
      Acc = Acc * (unsigned)BaseN + (unsigned)D;
      if (Acc > (unsigned long long)Inf)
        return untrackedValue();
    }
    if (!Any)
      return untrackedValue();
    return makeResult(Interval::constant((long long)Acc), 0, -1);
  }
  if (T.TokenKind == Token::Kind::String ||
      T.TokenKind == Token::Kind::CharLit ||
      T.TokenKind == Token::Kind::Directive) {
    ++P;
    return untrackedValue();
  }
  if (T.TokenKind == Token::Kind::Punct) {
    if (at("(")) {
      size_t Close = matchCloseIdx(Toks, P, E, "(", ")");
      if (Close >= E) {
        P = E;
        return untrackedValue();
      }
      IntType CastT = parseTypeTokens(*C.Src, P + 1, Close);
      if (CastT.IsInt && Close + 1 < E) {
        const Token &Nx = Toks[Close + 1];
        bool StartsExpr =
            Nx.TokenKind == Token::Kind::Identifier ||
            Nx.TokenKind == Token::Kind::Number ||
            (Nx.TokenKind == Token::Kind::Punct &&
             (Nx.Text == "(" || Nx.Text == "-" || Nx.Text == "+" ||
              Nx.Text == "~" || Nx.Text == "!" || Nx.Text == "*" ||
              Nx.Text == "&"));
        if (StartsExpr) {
          P = Close + 1;
          Value V = parseUnary();
          Interval CI = convert(V, CastT, true);
          return makeResult(CI, CastT.Width, CastT.Signed ? 1 : 0);
        }
      }
      ++P;
      Value V = parseComma();
      if (at(")"))
        ++P;
      else
        P = Close + 1;
      return V;
    }
    if (at("[")) {
      // Lambda introducer (or an attribute): skip the whole closure.
      skipBalanced("[", "]");
      if (at("("))
        skipBalanced("(", ")");
      while (atIdent("mutable") || atIdent("constexpr") ||
             atIdent("noexcept"))
        ++P;
      if (at("->")) {
        ++P;
        while (P < E && (tok().TokenKind == Token::Kind::Identifier ||
                         at("::") || at("<") || at(">") || at("*") ||
                         at("&")))
          ++P;
      }
      if (at("{"))
        skipBalanced("{", "}");
      return untrackedValue();
    }
    if (at("{")) {
      skipBalanced("{", "}");
      return untrackedValue();
    }
    ++P; // Unexpected punctuation: step over it, stay robust.
    return untrackedValue();
  }
  // Identifier.
  const std::string &S = T.Text;
  if (S == "true") {
    ++P;
    return makeResult(Interval::constant(1), 1, 0);
  }
  if (S == "false") {
    ++P;
    return makeResult(Interval::constant(0), 1, 0);
  }
  if (S == "nullptr" || S == "this") {
    ++P;
    return untrackedValue();
  }
  if (S == "sizeof" || S == "alignof") {
    ++P;
    if (at("("))
      skipBalanced("(", ")");
    else
      parseUnary();
    // sizeof is compile-time constant but type-model dependent; the
    // idiom sizeof(a)/sizeof(a[0]) must stay silent, so: untracked.
    return untrackedValue();
  }
  if (S == "static_cast" || S == "const_cast" || S == "reinterpret_cast" ||
      S == "dynamic_cast") {
    ++P;
    IntType CastT;
    if (at("<")) {
      size_t Close = P;
      int Depth = 0;
      for (; Close < E; ++Close) {
        if (Toks[Close].TokenKind != Token::Kind::Punct)
          continue;
        if (Toks[Close].Text == "<")
          ++Depth;
        else if (Toks[Close].Text == ">" && --Depth == 0)
          break;
      }
      if (Close < E) {
        CastT = parseTypeTokens(*C.Src, P + 1, Close);
        P = Close + 1;
      } else {
        P = E;
        return untrackedValue();
      }
    }
    Value V = untrackedValue();
    if (at("(")) {
      size_t Close = matchCloseIdx(Toks, P, E, "(", ")");
      if (Close >= E) {
        P = E;
        return untrackedValue();
      }
      if (P + 1 < Close) {
        ExprParser Inner(C, P + 1, Close);
        V = Inner.parseComma();
      }
      P = Close + 1;
    }
    if (!CastT.IsInt)
      return untrackedValue();
    Interval CI = convert(V, CastT, true);
    return makeResult(CI, CastT.Width, CastT.Signed ? 1 : 0);
  }
  if (S == "throw" || S == "new" || S == "delete" || S == "co_await" ||
      S == "co_yield") {
    ++P;
    if (!done())
      parseAssign();
    return untrackedValue();
  }
  ++P;
  return loadKey(S);
}

//===----------------------------------------------------------------------===//
// 4. Branch-condition refinement
//===----------------------------------------------------------------------===//

/// Returns the normalized chain key if [B, End) is exactly one
/// lvalue chain (ident, then any mix of .member, ->member, ::member,
/// [subscript]); "" otherwise.
std::string chainKeyOf(const LexedSource &Src, size_t B, size_t End) {
  const std::vector<Token> &Toks = Src.Tokens;
  if (B >= End || Toks[B].TokenKind != Token::Kind::Identifier)
    return "";
  const std::string &Head = Toks[B].Text;
  if (Head == "true" || Head == "false" || Head == "nullptr" ||
      Head == "sizeof" || Head == "this")
    return "";
  std::string Key = Head;
  size_t I = B + 1;
  while (I < End) {
    if (Toks[I].TokenKind != Token::Kind::Punct)
      return "";
    const std::string &Pn = Toks[I].Text;
    if (Pn == "." || Pn == "->" || Pn == "::") {
      if (I + 1 >= End || Toks[I + 1].TokenKind != Token::Kind::Identifier)
        return "";
      Key += (Pn == "::" ? "::" : ".") + Toks[I + 1].Text;
      I += 2;
      continue;
    }
    if (Pn == "[") {
      size_t Close = matchCloseIdx(Toks, I, End, "[", "]");
      if (Close >= End)
        return "";
      Key += "[" + textOf(Toks, I + 1, Close) + "]";
      I = Close + 1;
      continue;
    }
    return "";
  }
  return Key;
}

std::string negateOp(const std::string &Op) {
  if (Op == "<")
    return ">=";
  if (Op == "<=")
    return ">";
  if (Op == ">")
    return "<=";
  if (Op == ">=")
    return "<";
  if (Op == "==")
    return "!=";
  return "==";
}

std::string mirrorOp(const std::string &Op) {
  if (Op == "<")
    return ">";
  if (Op == "<=")
    return ">=";
  if (Op == ">")
    return "<";
  if (Op == ">=")
    return "<=";
  return Op; // == and != are symmetric.
}

void refineKey(EvalCtx &C, Env &R, const std::string &Key,
               const std::string &Op, const Interval &K) {
  if (!K.isRange())
    return;
  if (!isChainKey(Key) && C.AliasKilled->count(Key))
    return;
  Interval Base = Interval::of(-Inf, Inf);
  auto It = R.V.find(Key);
  bool Witnessed = It != R.V.end() && It->second.isRange();
  if (Witnessed) {
    Base = It->second;
  } else if (!isChainKey(Key)) {
    auto DT = C.DeclTypes->find(Key);
    if (DT != C.DeclTypes->end()) {
      Interval TR = typeRange(DT->second);
      if (TR.isRange())
        Base = TR;
    }
  }
  Interval New = Base;
  if (Op == "<" && K.Hi < Inf)
    New = meet(Base, Interval::of(-Inf, K.Hi - 1));
  else if (Op == "<=" && K.Hi < Inf)
    New = meet(Base, Interval::of(-Inf, K.Hi));
  else if (Op == ">" && K.Lo > -Inf)
    New = meet(Base, Interval::of(K.Lo + 1, Inf));
  else if (Op == ">=" && K.Lo > -Inf)
    New = meet(Base, Interval::of(K.Lo, Inf));
  else if (Op == "==")
    New = meet(Base, K);
  else if (Op == "!=" && K.Lo == K.Hi) {
    // Only an endpoint hit gains precision (the lattice has no holes).
    if (Base.Lo == K.Lo && Base.Hi == K.Lo)
      New = Interval::bottom();
    else if (Base.Lo == K.Lo)
      New = Interval::of(K.Lo + 1, Base.Hi);
    else if (Base.Hi == K.Lo)
      New = Interval::of(Base.Lo, K.Lo - 1);
  }
  if (New.isBottom()) {
    R.Reachable = false;
    return;
  }
  // A predicate that did not actually narrow an unwitnessed base adds
  // no information: `Width != 64` on an untracked unsigned must not
  // materialize [0, UINT_MAX] as if it were a proven range.
  if (New.isRange() && !(New.Lo <= -Inf && New.Hi >= Inf) &&
      (Witnessed || New != Base))
    R.V[Key] = New;
}

Interval evalRangeValue(EvalCtx &C, const Env &In, size_t B, size_t End) {
  if (B >= End)
    return Interval::untracked();
  Env Tmp = In;
  EvalCtx C2 = C;
  C2.E = &Tmp;
  C2.S = nullptr;
  ExprParser Pr(C2, B, End);
  return Pr.parseComma().I;
}

/// Refines \p In under the assumption that the condition tokens
/// [B, End) evaluate to Assume. Contradictions mark the result
/// unreachable, which is how dead branch arms get pruned.
Env refineEnv(EvalCtx &C, const Env &In, size_t B, size_t End, bool Assume) {
  Env R = In;
  if (!R.Reachable || B >= End)
    return R;
  const std::vector<Token> &Toks = C.Src->Tokens;
  // Strip a full set of outer parentheses.
  while (B < End && Toks[B].TokenKind == Token::Kind::Punct &&
         Toks[B].Text == "(" &&
         matchCloseIdx(Toks, B, End, "(", ")") == End - 1) {
    ++B;
    --End;
  }
  if (B >= End)
    return R;
  if (Toks[B].TokenKind == Token::Kind::Punct && Toks[B].Text == "!")
    return refineEnv(C, In, B + 1, End, !Assume);
  // Locate the lowest-precedence top-level connective.
  size_t OrIdx = End, AndIdx = End, CmpIdx = End;
  std::string CmpOp;
  int Depth = 0;
  for (size_t I = B; I < End; ++I) {
    const Token &T = Toks[I];
    if (T.TokenKind != Token::Kind::Punct)
      continue;
    if (T.Text == "(" || T.Text == "[" || T.Text == "{" || T.Text == "?") {
      ++Depth;
      continue;
    }
    if (T.Text == ")" || T.Text == "]" || T.Text == "}" ||
        (T.Text == ":" && Depth > 0)) {
      --Depth;
      continue;
    }
    if (Depth != 0)
      continue;
    if (T.Text == "||" && OrIdx == End)
      OrIdx = I;
    else if (T.Text == "&&" && AndIdx == End)
      AndIdx = I;
    else if (CmpIdx == End &&
             (T.Text == "==" || T.Text == "!=" || T.Text == "<" ||
              T.Text == "<=" || T.Text == ">" || T.Text == ">=")) {
      CmpIdx = I;
      CmpOp = T.Text;
    }
  }
  if (OrIdx < End) {
    if (Assume)
      return R; // x || y true: no single fact holds.
    Env Lhs = refineEnv(C, R, B, OrIdx, false);
    return refineEnv(C, Lhs, OrIdx + 1, End, false);
  }
  if (AndIdx < End) {
    if (!Assume)
      return R;
    Env Lhs = refineEnv(C, R, B, AndIdx, true);
    return refineEnv(C, Lhs, AndIdx + 1, End, true);
  }
  if (CmpIdx < End) {
    std::string Op = Assume ? CmpOp : negateOp(CmpOp);
    std::string LK = chainKeyOf(*C.Src, B, CmpIdx);
    std::string RK = chainKeyOf(*C.Src, CmpIdx + 1, End);
    if (!LK.empty()) {
      Interval RV = evalRangeValue(C, In, CmpIdx + 1, End);
      refineKey(C, R, LK, Op, RV);
    }
    if (!RK.empty()) {
      Interval LVV = evalRangeValue(C, In, B, CmpIdx);
      refineKey(C, R, RK, mirrorOp(Op), LVV);
    }
    return R;
  }
  // Bare truthiness test on a single chain.
  std::string CK = chainKeyOf(*C.Src, B, End);
  if (!CK.empty()) {
    if (Assume)
      refineKey(C, R, CK, "!=", Interval::constant(0));
    else
      refineKey(C, R, CK, "==", Interval::constant(0));
  }
  return R;
}

Interval convertValue(EvalCtx &C, const Value &V, const IntType &T,
                      bool ExplicitCast, unsigned Ln) {
  if (!T.IsInt || T.Width == 0)
    return T.IsAuto ? V.I : Interval::untracked();
  // Bottom flows through unchanged: during the interprocedural
  // ascending iteration a not-yet-summarized parameter is bottom, and
  // a cast of it (`(long)Size` in a forwarding wrapper) must stay
  // "contributes nothing", not decay to untracked and poison the join.
  if (V.I.isBottom())
    return V.I;
  if (!V.I.isRange())
    return Interval::untracked();
  Interval Dest = typeRange(T);
  if (intervalLeq(V.I, Dest))
    return V.I;
  // Only flag 16/32-bit destinations: 8-bit truncation is the
  // ubiquitous byte-extraction idiom, and 64-bit cannot lose bits
  // this lattice can see.
  if (C.S && C.E->Reachable && (T.Width == 16 || T.Width == 32)) {
    // A bound that merely restates the source type's own extreme is
    // not a witness of an out-of-range value: `int D` refined only
    // above by `D < 16` still carries Lo == INT_MIN, and flagging
    // `(unsigned)D` on that would indict every int-to-unsigned cast.
    Interval SrcT = Interval::of(-Inf, Inf);
    if (V.Width > 0 && V.Sign >= 0) {
      IntType ST;
      ST.IsInt = true;
      ST.Width = V.Width;
      ST.Signed = V.Sign == 1;
      SrcT = typeRange(ST);
    }
    bool FiniteEscape =
        (V.I.Lo > -Inf && V.I.Lo < Dest.Lo && V.I.Lo != SrcT.Lo) ||
        (V.I.Hi < Inf && V.I.Hi > Dest.Hi && V.I.Hi != SrcT.Hi);
    if (FiniteEscape)
      C.S->emit("narrowing-truncation", Ln,
                std::string("value ") + intervalText(V.I) +
                    " does not fit the " + std::to_string(T.Width) +
                    "-bit " + (T.Signed ? "signed" : "unsigned") +
                    " destination " + (ExplicitCast ? "cast " : "type ") +
                    intervalText(Dest));
  }
  return Dest;
}

//===----------------------------------------------------------------------===//
// 5. Declarations, function prepass, fixpoint, entry points
//===----------------------------------------------------------------------===//

struct Declarator {
  size_t NameIdx = 0;
  size_t InitB = 0, InitE = 0;
  char Kind = 'n'; ///< n one, e "= init", p "(args)", b "{args}", a array.
};

struct DeclInfo {
  bool Valid = false;
  bool RangeFor = false;
  size_t LoopVarIdx = 0;               ///< RangeFor only.
  size_t RangeExprB = 0, RangeExprE = 0; ///< RangeFor only.
  size_t TypeB = 0, TypeE = 0;
  std::vector<Declarator> Ds;
};

bool isPunctAt(const std::vector<Token> &Toks, size_t I, size_t E,
               const char *T) {
  return I < E && Toks[I].TokenKind == Token::Kind::Punct &&
         Toks[I].Text == T;
}

/// Structure of one declaration statement's token range: type prefix,
/// then declarators. Range-based for loop headers (a top-level ':'
/// with no preceding top-level '?') are classified separately.
DeclInfo parseDeclRange(const std::vector<Token> &Toks, size_t B,
                        size_t End) {
  DeclInfo D;
  while (End > B && isPunctAt(Toks, End - 1, End, ";"))
    --End;
  if (B >= End)
    return D;
  int Depth = 0, Quest = 0;
  for (size_t I = B; I < End; ++I) {
    if (Toks[I].TokenKind != Token::Kind::Punct)
      continue;
    const std::string &T = Toks[I].Text;
    if (T == "(" || T == "[" || T == "{")
      ++Depth;
    else if (T == ")" || T == "]" || T == "}")
      --Depth;
    else if (Depth == 0 && T == "?")
      ++Quest;
    else if (Depth == 0 && T == ":") {
      if (Quest > 0) {
        --Quest;
        continue;
      }
      D.Valid = true;
      D.RangeFor = true;
      D.RangeExprB = I + 1;
      D.RangeExprE = End;
      for (size_t J = I; J > B; --J)
        if (Toks[J - 1].TokenKind == Token::Kind::Identifier) {
          D.LoopVarIdx = J - 1;
          break;
        }
      return D;
    }
  }
  // First declarator: the first top-level identifier followed by
  // = , ( { [ or the end of the range.
  Depth = 0;
  size_t Name = End;
  for (size_t I = B; I < End; ++I) {
    const Token &T = Toks[I];
    if (T.TokenKind == Token::Kind::Punct) {
      if (T.Text == "(" || T.Text == "[" || T.Text == "{")
        ++Depth;
      else if (T.Text == ")" || T.Text == "]" || T.Text == "}")
        --Depth;
      continue;
    }
    if (Depth != 0 || T.TokenKind != Token::Kind::Identifier)
      continue;
    if (I + 1 >= End) {
      Name = I;
      break;
    }
    const Token &N = Toks[I + 1];
    if (N.TokenKind == Token::Kind::Punct &&
        (N.Text == "=" || N.Text == "," || N.Text == "(" ||
         N.Text == "{" || N.Text == "[" || N.Text == ";")) {
      Name = I;
      break;
    }
  }
  if (Name >= End)
    return D;
  D.Valid = true;
  D.TypeB = B;
  D.TypeE = Name;
  size_t I = Name;
  while (I < End) {
    Declarator Dc;
    Dc.NameIdx = I;
    ++I;
    if (isPunctAt(Toks, I, End, "[")) {
      size_t Close = matchCloseIdx(Toks, I, End, "[", "]");
      Dc.Kind = 'a';
      I = Close < End ? Close + 1 : End;
      if (isPunctAt(Toks, I, End, "=")) {
        ++I;
        while (I < End && !isPunctAt(Toks, I, End, ",")) {
          if (isPunctAt(Toks, I, End, "(") || isPunctAt(Toks, I, End, "[") ||
              isPunctAt(Toks, I, End, "{"))
            I = matchCloseIdx(Toks, I, End,
                              Toks[I].Text == "(" ? "("
                              : Toks[I].Text == "[" ? "[" : "{",
                              Toks[I].Text == "(" ? ")"
                              : Toks[I].Text == "[" ? "]" : "}");
          if (I < End)
            ++I;
        }
      }
    } else if (isPunctAt(Toks, I, End, "=")) {
      ++I;
      Dc.Kind = 'e';
      Dc.InitB = I;
      int D2 = 0;
      while (I < End) {
        const Token &T = Toks[I];
        if (T.TokenKind == Token::Kind::Punct) {
          if (T.Text == "(" || T.Text == "[" || T.Text == "{")
            ++D2;
          else if (T.Text == ")" || T.Text == "]" || T.Text == "}")
            --D2;
          else if (T.Text == "," && D2 == 0)
            break;
        }
        ++I;
      }
      Dc.InitE = I;
    } else if (isPunctAt(Toks, I, End, "(") || isPunctAt(Toks, I, End, "{")) {
      bool Brace = Toks[I].Text == "{";
      size_t Close = Brace ? matchCloseIdx(Toks, I, End, "{", "}")
                           : matchCloseIdx(Toks, I, End, "(", ")");
      Dc.Kind = Brace ? 'b' : 'p';
      Dc.InitB = I + 1;
      Dc.InitE = Close < End ? Close : End;
      I = Close < End ? Close + 1 : End;
    }
    D.Ds.push_back(Dc);
    if (isPunctAt(Toks, I, End, ",")) {
      ++I;
      while (I < End && Toks[I].TokenKind == Token::Kind::Punct &&
             (Toks[I].Text == "*" || Toks[I].Text == "&" ||
              Toks[I].Text == "&&"))
        ++I;
      if (I >= End || Toks[I].TokenKind != Token::Kind::Identifier)
        break;
      continue;
    }
    break;
  }
  return D;
}

/// Splits a call-argument or init token range at top-level commas.
std::vector<std::pair<size_t, size_t>>
splitArgs(const std::vector<Token> &Toks, size_t B, size_t End) {
  std::vector<std::pair<size_t, size_t>> R;
  if (B >= End)
    return R;
  int Depth = 0;
  size_t Start = B;
  for (size_t I = B; I < End; ++I) {
    const Token &T = Toks[I];
    if (T.TokenKind != Token::Kind::Punct)
      continue;
    if (T.Text == "(" || T.Text == "[" || T.Text == "{")
      ++Depth;
    else if (T.Text == ")" || T.Text == "]" || T.Text == "}")
      --Depth;
    else if (T.Text == "," && Depth == 0) {
      R.emplace_back(Start, I);
      Start = I + 1;
    }
  }
  R.emplace_back(Start, End);
  return R;
}

void transferDecl(EvalCtx &C, size_t B, size_t End) {
  const std::vector<Token> &Toks = C.Src->Tokens;
  DeclInfo D = parseDeclRange(Toks, B, End);
  if (!D.Valid) {
    // A misclassified declaration: evaluate as a plain expression so
    // assignments and rule events are still seen.
    ExprParser Pr(C, B, End);
    Pr.parseComma();
    return;
  }
  if (D.RangeFor) {
    if (D.RangeExprB < D.RangeExprE) {
      ExprParser Pr(C, D.RangeExprB, D.RangeExprE);
      Pr.parseComma();
    }
    C.E->V.erase(Toks[D.LoopVarIdx].Text);
    return;
  }
  IntType T = parseTypeTokens(*C.Src, D.TypeB, D.TypeE);
  for (const Declarator &Dc : D.Ds) {
    const std::string &Name = Toks[Dc.NameIdx].Text;
    Interval St = Interval::untracked();
    if (Dc.Kind == 'e') {
      Value V = untrackedValue();
      if (Dc.InitB < Dc.InitE) {
        ExprParser Pr(C, Dc.InitB, Dc.InitE);
        V = Pr.parseAssign();
      }
      if (!T.IsRef)
        St = convertValue(C, V, T, false, Toks[Dc.NameIdx].Line);
    } else if (Dc.Kind == 'p' || Dc.Kind == 'b') {
      std::vector<std::pair<size_t, size_t>> Args =
          Dc.InitB < Dc.InitE
              ? splitArgs(Toks, Dc.InitB, Dc.InitE)
              : std::vector<std::pair<size_t, size_t>>();
      std::vector<Value> Vals;
      for (const auto &A : Args) {
        if (A.first >= A.second)
          continue;
        ExprParser Pr(C, A.first, A.second);
        Vals.push_back(Pr.parseAssign());
      }
      if (!T.IsRef && T.IsInt) {
        if (Vals.size() == 1)
          St = convertValue(C, Vals[0], T, false, Toks[Dc.NameIdx].Line);
        else if (Vals.empty() && Dc.Kind == 'b')
          St = Interval::constant(0); // T{} value-initializes.
      }
    }
    // A reference target is tracked by the alias-kill prepass; the
    // reference name itself is never tracked.
    if (T.IsRef)
      St = Interval::untracked();
    if (C.E->V.count(Name) || St.isRange()) {
      if (St.isRange())
        C.E->V[Name] = St;
      else
        C.E->V.erase(Name);
    }
  }
}

void transferAction(EvalCtx &C, const Action &A) {
  switch (A.ActionKind) {
  case Action::Kind::Decl:
    if (A.Begin < A.End)
      transferDecl(C, A.Begin, A.End);
    break;
  case Action::Kind::Expr:
  case Action::Kind::Cond:
  case Action::Kind::Return:
    if (A.Begin < A.End) {
      ExprParser Pr(C, A.Begin, A.End);
      Pr.parseComma();
    }
    break;
  case Action::Kind::ScopeEnd:
    break;
  }
}

/// One parameter as recovered from a parameter-list token range.
struct ParamDecl {
  std::string Name; ///< Empty for unnamed parameters.
  IntType Type;
  size_t DefB = 0, DefE = 0; ///< Default-argument tokens, if any.
};

std::vector<ParamDecl> parseParams(const LexedSource &Src, size_t B,
                                   size_t End) {
  const std::vector<Token> &Toks = Src.Tokens;
  std::vector<ParamDecl> R;
  if (B >= End)
    return R;
  // Split at top-level commas, counting <> as nesting too (template
  // arguments appear in parameter types, never comparisons).
  std::vector<std::pair<size_t, size_t>> Parts;
  int Depth = 0;
  size_t Start = B;
  for (size_t I = B; I < End; ++I) {
    const Token &T = Toks[I];
    if (T.TokenKind != Token::Kind::Punct)
      continue;
    if (T.Text == "(" || T.Text == "[" || T.Text == "{" || T.Text == "<")
      ++Depth;
    else if (T.Text == ")" || T.Text == "]" || T.Text == "}" ||
             T.Text == ">")
      --Depth;
    else if (T.Text == ">>")
      Depth -= 2;
    else if (T.Text == "," && Depth == 0) {
      Parts.emplace_back(Start, I);
      Start = I + 1;
    }
  }
  Parts.emplace_back(Start, End);
  for (const auto &Pt : Parts) {
    ParamDecl P;
    size_t PB = Pt.first, PE = Pt.second;
    size_t Eq = PE;
    Depth = 0;
    for (size_t I = PB; I < PE; ++I) {
      const Token &T = Toks[I];
      if (T.TokenKind != Token::Kind::Punct)
        continue;
      if (T.Text == "(" || T.Text == "[" || T.Text == "{")
        ++Depth;
      else if (T.Text == ")" || T.Text == "]" || T.Text == "}")
        --Depth;
      else if (T.Text == "=" && Depth == 0) {
        Eq = I;
        break;
      }
    }
    if (Eq < PE) {
      P.DefB = Eq + 1;
      P.DefE = PE;
    }
    size_t NameIdx = PE;
    for (size_t I = Eq; I > PB; --I)
      if (Toks[I - 1].TokenKind == Token::Kind::Identifier) {
        NameIdx = I - 1;
        break;
      }
    if (NameIdx < PE) {
      const std::string &Cand = Toks[NameIdx].Text;
      int W;
      bool Sg;
      bool TypeWord = isTypeQualifier(Cand) || Cand == "int" ||
                      Cand == "long" || Cand == "short" ||
                      Cand == "unsigned" || Cand == "signed" ||
                      Cand == "auto" || Cand == "void" || Cand == "float" ||
                      Cand == "double" || namedIntType(Cand, W, Sg);
      if (!TypeWord) {
        P.Name = Cand;
        P.Type = parseTypeTokens(Src, PB, NameIdx);
      }
    }
    if (P.Name.empty() && PB < PE)
      P.Type = parseTypeTokens(Src, PB, PE);
    R.push_back(P);
  }
  return R;
}

/// Per-function facts the fixpoint needs: the declared locals (for
/// join scoping), their types, parameters in order, and the names
/// whose value can change through an alias the evaluator cannot see
/// (address taken, bound to a reference, touched inside a lambda).
struct FnInfo {
  std::set<std::string> Locals;
  std::map<std::string, IntType> DeclTypes;
  std::set<std::string> AliasKilled;
  std::vector<ParamDecl> Params;
};

bool isCallKeyword(const std::string &S) {
  return S == "return" || S == "case" || S == "throw" || S == "if" ||
         S == "while" || S == "for" || S == "switch" || S == "do" ||
         S == "else" || S == "goto" || S == "co_return";
}

FnInfo collectFnInfo(const LexedSource &Src, const Function &Fn,
                     const Cfg &G,
                     const std::vector<std::pair<size_t, size_t>> *Lambdas) {
  FnInfo Info;
  const std::vector<Token> &Toks = Src.Tokens;
  Info.Params = parseParams(Src, Fn.ParamBegin, Fn.ParamEnd);
  for (const ParamDecl &P : Info.Params) {
    if (P.Name.empty())
      continue;
    Info.Locals.insert(P.Name);
    Info.DeclTypes[P.Name] = P.Type;
    if (P.Type.IsRef)
      Info.AliasKilled.insert(P.Name); // Callers alias the referent.
  }
  size_t SpanB = Toks.size(), SpanE = 0;
  for (const BasicBlock &BB : G.Blocks)
    for (const Action &A : BB.Actions) {
      SpanB = std::min(SpanB, A.Begin);
      SpanE = std::max(SpanE, A.End);
      if (A.ActionKind != Action::Kind::Decl || A.Begin >= A.End)
        continue;
      DeclInfo D = parseDeclRange(Toks, A.Begin, A.End);
      if (!D.Valid)
        continue;
      if (D.RangeFor) {
        Info.Locals.insert(Toks[D.LoopVarIdx].Text);
        continue;
      }
      IntType T = parseTypeTokens(Src, D.TypeB, D.TypeE);
      for (const Declarator &Dc : D.Ds) {
        const std::string &Name = Toks[Dc.NameIdx].Text;
        Info.Locals.insert(Name);
        Info.DeclTypes[Name] = T;
        if (T.IsRef && Dc.Kind == 'e') {
          std::string Key = chainKeyOf(Src, Dc.InitB, Dc.InitE);
          if (!Key.empty()) {
            size_t Sep = Key.find_first_of(".[:");
            Info.AliasKilled.insert(Sep == std::string::npos
                                        ? Key
                                        : Key.substr(0, Sep));
          }
        }
      }
    }
  // Address-of: `&x` where the & cannot be a binary operator.
  for (const BasicBlock &BB : G.Blocks)
    for (const Action &A : BB.Actions)
      for (size_t I = A.Begin; I + 1 < A.End && I + 1 < Toks.size(); ++I) {
        if (Toks[I].TokenKind != Token::Kind::Punct ||
            Toks[I].Text != "&" ||
            Toks[I + 1].TokenKind != Token::Kind::Identifier)
          continue;
        bool Binary = false;
        if (I > A.Begin) {
          const Token &Pv = Toks[I - 1];
          if (Pv.TokenKind == Token::Kind::Number ||
              (Pv.TokenKind == Token::Kind::Identifier &&
               !isCallKeyword(Pv.Text)) ||
              (Pv.TokenKind == Token::Kind::Punct &&
               (Pv.Text == ")" || Pv.Text == "]")))
            Binary = true;
        }
        if (!Binary)
          Info.AliasKilled.insert(Toks[I + 1].Text);
      }
  // Any local named inside a nested lambda body may be captured by
  // reference and mutated there; stop tracking it entirely.
  if (Lambdas)
    for (const auto &LB : *Lambdas) {
      if (LB.first < SpanB || LB.second > SpanE)
        continue;
      for (size_t I = LB.first; I < LB.second && I < Toks.size(); ++I)
        if (Toks[I].TokenKind == Token::Kind::Identifier &&
            Info.Locals.count(Toks[I].Text))
          Info.AliasKilled.insert(Toks[I].Text);
    }
  return Info;
}

constexpr unsigned WidenDelay = 20; ///< Env changes before widening.
constexpr unsigned HardCap = 160;   ///< Absolute per-block backstop.

/// Runs the interval fixpoint over one function; emits findings
/// through \p S (replay pass) when non-null, and returns the exit
/// environment when \p ExitOut is non-null.
void analyzeFunction(const LexedSource &Src, const Function &Fn,
                     const std::vector<std::pair<size_t, size_t>> *Lambdas,
                     const LintContext &Ctx, Sink *S, Env *ExitOut) {
  if (!Fn.Body)
    return;
  Cfg G = buildCfg(Fn);
  FnInfo Info = collectFnInfo(Src, Fn, G, Lambdas);

  Env Entry;
  Entry.Reachable = true;
  auto FIt = Ctx.ParamIntervals.find(Fn.Name);
  if (FIt != Ctx.ParamIntervals.end())
    for (const auto &IdxIv : FIt->second) {
      if (IdxIv.first >= Info.Params.size())
        continue;
      const ParamDecl &P = Info.Params[IdxIv.first];
      if (P.Name.empty() || Info.AliasKilled.count(P.Name))
        continue;
      Interval I = meet(Interval::of(IdxIv.second.Lo, IdxIv.second.Hi),
                        typeRange(P.Type));
      if (I.isRange())
        Entry.V[P.Name] = I;
    }

  size_t N = G.Blocks.size();
  std::vector<Env> In(N);
  std::vector<unsigned> Visits(N, 0);
  std::vector<char> Queued(N, 0);
  In[Cfg::Entry] = Entry;

  // Reverse-postorder worklist: every forward predecessor of a join
  // contributes before the join is processed, so the widening-delay
  // counter only ticks on genuine loop cycling. A plain LIFO worklist
  // can spin a loop to the widening threshold before an unprocessed
  // if-arm ever reaches the head, widening loop-invariant keys
  // against a stale pre-join value.
  std::vector<unsigned> RpoIdx(N, 0);
  {
    std::vector<size_t> Post;
    std::vector<char> Seen(N, 0);
    std::vector<std::pair<size_t, size_t>> Stack{{Cfg::Entry, 0}};
    Seen[Cfg::Entry] = 1;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < G.Blocks[B].Succs.size()) {
        size_t Sc = G.Blocks[B].Succs[NextSucc++];
        if (!Seen[Sc]) {
          Seen[Sc] = 1;
          Stack.emplace_back(Sc, 0);
        }
      } else {
        Post.push_back(B);
        Stack.pop_back();
      }
    }
    for (size_t I = 0; I < Post.size(); ++I)
      RpoIdx[Post[I]] = (unsigned)(Post.size() - 1 - I);
  }

  std::set<std::pair<unsigned, size_t>> WL{{RpoIdx[Cfg::Entry], Cfg::Entry}};
  Queued[Cfg::Entry] = 1;
  while (!WL.empty()) {
    size_t B = WL.begin()->second;
    WL.erase(WL.begin());
    Queued[B] = 0;
    if (!In[B].Reachable)
      continue;
    Env Out = In[B];
    EvalCtx EC;
    EC.Src = &Src;
    EC.E = &Out;
    EC.DeclTypes = &Info.DeclTypes;
    EC.Locals = &Info.Locals;
    EC.AliasKilled = &Info.AliasKilled;
    EC.S = nullptr;
    for (const Action &A : G.Blocks[B].Actions)
      transferAction(EC, A);
    const BasicBlock &BB = G.Blocks[B];
    bool Refine = !BB.Actions.empty() &&
                  BB.Actions.back().ActionKind == Action::Kind::Cond &&
                  BB.Succs.size() == 2 && BB.Actions.back().S &&
                  BB.Actions.back().S->Kind != StmtKind::Switch;
    Interval CondV = Interval::untracked();
    if (Refine) {
      const Action &CA = BB.Actions.back();
      CondV = evalRangeValue(EC, Out, CA.Begin, CA.End);
    }
    for (size_t SI = 0; SI < BB.Succs.size(); ++SI) {
      Env Edge = Out;
      if (Refine) {
        const Action &CA = BB.Actions.back();
        // Succs[0] is the true/body edge, Succs[1] the false/after
        // edge (verified against the CFG builder's emission order).
        bool Assume = SI == 0;
        if (CondV.isRange() && !CondV.contains(0) && !Assume)
          Edge.Reachable = false;
        else if (CondV.isRange() && CondV.Lo == 0 && CondV.Hi == 0 &&
                 Assume)
          Edge.Reachable = false;
        else
          Edge = refineEnv(EC, Out, CA.Begin, CA.End, Assume);
      }
      if (!Edge.Reachable)
        continue;
      size_t Tg = BB.Succs[SI];
      Env NewIn = joinEnv(In[Tg], Edge, Info.Locals);
      if (Visits[Tg] > WidenDelay && In[Tg].Reachable) {
        Env Wd;
        Wd.Reachable = true;
        for (const auto &KV : NewIn.V) {
          auto Old = In[Tg].V.find(KV.first);
          Interval W = widen(Old != In[Tg].V.end() ? Old->second
                                                   : Interval::bottom(),
                             KV.second);
          if (W.isRange())
            Wd.V[KV.first] = W;
        }
        NewIn = Wd;
      }
      if (Visits[Tg] > HardCap)
        NewIn.V.clear();
      if (!envEqual(NewIn, In[Tg])) {
        In[Tg] = NewIn;
        ++Visits[Tg];
        if (!Queued[Tg]) {
          Queued[Tg] = 1;
          WL.insert({RpoIdx[Tg], Tg});
        }
      }
    }
  }

  if (S)
    for (size_t B = 0; B < N; ++B) {
      if (!In[B].Reachable)
        continue;
      Env Cur = In[B];
      EvalCtx EC;
      EC.Src = &Src;
      EC.E = &Cur;
      EC.DeclTypes = &Info.DeclTypes;
      EC.Locals = &Info.Locals;
      EC.AliasKilled = &Info.AliasKilled;
      EC.S = S;
      for (const Action &A : G.Blocks[B].Actions)
        transferAction(EC, A);
    }
  if (ExitOut)
    *ExitOut = In[Cfg::Exit];
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

const std::vector<RuleInfo> &valueRangeRuleInfos() {
  static const std::vector<RuleInfo> Rules = {
      {"shift-width",
       "shift amounts must be provably below the operand width",
       "Shifting by an amount >= the promoted operand width (or by a "
       "negative amount) is undefined behavior, and the RAP hot path is "
       "full of range-bits shifts ((1 << RangeBits), prefix masks) "
       "where a miscomputed width silently corrupts every range "
       "boundary afterwards. The rule fires only when the interval "
       "engine TRACKS the amount (from literals, declared types, "
       "branch refinement or interprocedural argument ranges) and "
       "cannot prove it below the width; an unbounded amount of "
       "unknown provenance stays silent. Fix by clamping or guarding "
       "the amount (`if (Bits < 64)`) so the refined interval proves "
       "the bound, or suppress with // rap-lint: allow(shift-width) "
       "and a comment citing the external invariant."},
      {"narrowing-truncation",
       "provably-lossy integer conversions to 16/32-bit types",
       "A conversion whose tracked source interval has a finite bound "
       "outside the destination type's range provably wraps for some "
       "reachable value — exactly how a 64-bit event count silently "
       "truncates into a 32-bit counter field. Unlike -Wconversion "
       "this is value-based: a guarded conversion (`if (N < 65536)`) "
       "refines the interval and is clean. 8-bit destinations are "
       "exempt (byte extraction is idiomatic) and 64-bit ones cannot "
       "lose tracked bits. Fix by widening the destination, masking "
       "explicitly, or guarding the range; suppress with "
       "// rap-lint: allow(narrowing-truncation) when wraparound is "
       "intended."},
      {"unbounded-read",
       "serialization read lengths must be provably bounded",
       "A two-argument read(buffer, length) whose length operand is "
       "not a tracked non-negative finite interval can be driven past "
       "the buffer by corrupt or adversarial snapshot input — the "
       "classic deserialization overflow. The interprocedural prescan "
       "propagates literal-fed argument ranges, so a helper that "
       "always receives read(ptr, 4..8) from the v1-v4 snapshot "
       "readers is clean without annotations. Fix by clamping the "
       "length against the remaining-input bound before reading, or "
       "suppress with // rap-lint: allow(unbounded-read) citing the "
       "validated framing that bounds it."},
      {"div-by-zero",
       "divisors whose interval contains zero on some path",
       "An integer division or remainder whose tracked divisor "
       "interval contains 0 divides by zero on at least one reachable "
       "path — undefined behavior that UBSan only catches if the "
       "fuzzer finds the path first. Eps/log budget math in the "
       "admission controller divides by derived quantities that are "
       "zero until the tree warms up, so the guard must dominate the "
       "division. Fix by guarding (`if (Q) X / Q`) or restructuring so "
       "the divisor's refined interval excludes zero; suppress with "
       "// rap-lint: allow(div-by-zero) only with an argument why the "
       "value cannot be zero at runtime."},
  };
  return Rules;
}

void runValueRangeRules(const std::string &Path, const LexedSource &Src,
                        const ParsedFile &Parsed, const LintContext &Ctx,
                        std::vector<Finding> &Out) {
  Sink S;
  S.Path = &Path;
  S.Out = &Out;
  for (const auto &Fn : Parsed.Functions)
    analyzeFunction(Src, *Fn, &Parsed.LambdaBodies, Ctx, &S, nullptr);
}

std::map<std::string, Interval>
intervalsAtExit(const LexedSource &Src, const Function &Fn,
                const LintContext &Ctx) {
  Env Exit;
  analyzeFunction(Src, Fn, nullptr, Ctx, nullptr, &Exit);
  return Exit.V;
}

void collectParamIntervals(const std::vector<AuditFile> &Files,
                           LintContext &Ctx) {
  struct FileData {
    LexedSource Src;
    ParsedFile Parsed;
    /// (function, straight-line action token ranges) pairs.
    std::vector<std::pair<const Function *,
                          std::vector<std::pair<size_t, size_t>>>>
        FnActions;
  };
  std::vector<FileData> FD;
  FD.reserve(Files.size());
  for (const AuditFile &F : Files) {
    FileData D;
    D.Src = lex(F.Content);
    D.Parsed = parseFile(D.Src);
    for (const auto &FnP : D.Parsed.Functions) {
      if (!FnP->Body)
        continue;
      Cfg G = buildCfg(*FnP);
      D.FnActions.emplace_back(FnP.get(),
                               std::vector<std::pair<size_t, size_t>>());
      std::vector<std::pair<size_t, size_t>> &Ranges = D.FnActions.back().second;
      for (const BasicBlock &BB : G.Blocks)
        for (const Action &A : BB.Actions)
          if (A.Begin < A.End)
            Ranges.emplace_back(A.Begin, A.End);
    }
    FD.push_back(std::move(D));
  }

  // Function definitions by unqualified name. A name defined twice
  // (overloads, same-named methods of different classes) would make
  // index-wise joining meaningless, so it is excluded outright.
  struct DefnInfo {
    std::vector<ParamDecl> Params;
    const LexedSource *Src = nullptr;
  };
  std::map<std::string, DefnInfo> Defns;
  std::set<std::string> Unsafe;
  for (const auto &D : FD)
    for (const auto &FnA : D.FnActions) {
      const Function *Fn = FnA.first;
      if (Fn->IsLambda)
        continue;
      if (Defns.count(Fn->Name)) {
        Unsafe.insert(Fn->Name);
        continue;
      }
      DefnInfo DI;
      DI.Params = parseParams(D.Src, Fn->ParamBegin, Fn->ParamEnd);
      DI.Src = &D.Src;
      Defns.emplace(Fn->Name, std::move(DI));
    }

  // A defined function's name appearing anywhere NOT followed by '('
  // means its address may be taken (callback, member pointer, type
  // mention) — the observed call graph is incomplete for it.
  for (const auto &D : FD) {
    const std::vector<Token> &Toks = D.Src.Tokens;
    for (size_t I = 0; I < Toks.size(); ++I) {
      if (Toks[I].TokenKind != Token::Kind::Identifier ||
          !Defns.count(Toks[I].Text))
        continue;
      if (!isPunctAt(Toks, I + 1, Toks.size(), "("))
        Unsafe.insert(Toks[I].Text);
    }
  }

  // One matching rule for call sites, used both for the called-at-all
  // prescan and the per-round argument joins: identifier followed by
  // '(' whose previous token is not a plain (non-keyword) identifier
  // and not * or & — those spell declarations and address-taking.
  auto isCallSite = [](const std::vector<Token> &Toks, size_t I,
                       size_t RgB) {
    if (I > RgB) {
      const Token &Pv = Toks[I - 1];
      if (Pv.TokenKind == Token::Kind::Identifier && !isCallKeyword(Pv.Text))
        return false;
      if (Pv.TokenKind == Token::Kind::Punct &&
          (Pv.Text == "*" || Pv.Text == "&" || Pv.Text == "~"))
        return false;
    }
    return true;
  };

  // Functions observed called at least once. A defined function with
  // NO observed site is an entry point (main, registered test) whose
  // parameters must stay unconstrained — and with one observed site
  // its summary starts ascending from bottom instead.
  std::set<std::string> Called;
  for (const auto &D : FD) {
    const std::vector<Token> &Toks = D.Src.Tokens;
    for (const auto &FnA : D.FnActions)
      for (const auto &Rg : FnA.second)
        for (size_t I = Rg.first; I + 1 < Rg.second; ++I)
          if (Toks[I].TokenKind == Token::Kind::Identifier &&
              isPunctAt(Toks, I + 1, Rg.second, "(") &&
              Defns.count(Toks[I].Text) && isCallSite(Toks, I, Rg.first))
            Called.insert(Toks[I].Text);
  }

  // Ascending Kleene iteration: argument intervals are joined over
  // every observed site, evaluating each argument under the CALLER's
  // current parameter summary (bottom-started, so a forwarded length
  // contributes nothing until its own summary materializes). Only a
  // reached fixpoint is sound, so if the round cap trips (it does not
  // on real trees — literal-fed chains are shallow) everything is
  // discarded rather than exported half-converged.
  std::map<std::string, std::map<unsigned, Interval>> Sum;
  bool Converged = false;
  for (int Round = 0; Round < 24 && !Converged; ++Round) {
    std::map<std::string, std::map<unsigned, Interval>> Next;
    for (const auto &D : FD) {
      const std::vector<Token> &Toks = D.Src.Tokens;
      for (const auto &FnA : D.FnActions) {
        const Function *Caller = FnA.first;
        std::vector<ParamDecl> CallerParams =
            parseParams(D.Src, Caller->ParamBegin, Caller->ParamEnd);
        Env E;
        E.Reachable = true;
        std::map<std::string, IntType> DTypes;
        std::set<std::string> Locals;
        std::set<std::string> NoAlias;
        bool Eligible = !Caller->IsLambda && Defns.count(Caller->Name) &&
                        !Unsafe.count(Caller->Name) &&
                        Called.count(Caller->Name);
        for (size_t Pi = 0; Pi < CallerParams.size(); ++Pi) {
          const ParamDecl &P = CallerParams[Pi];
          if (P.Name.empty())
            continue;
          Locals.insert(P.Name);
          DTypes[P.Name] = P.Type;
          if (!Eligible || P.Type.IsRef)
            continue;
          Interval I = Interval::bottom();
          auto SIt = Sum.find(Caller->Name);
          if (SIt != Sum.end()) {
            auto PIt = SIt->second.find((unsigned)Pi);
            if (PIt != SIt->second.end())
              I = PIt->second;
          }
          E.V[P.Name] = I;
        }
        EvalCtx EC;
        EC.Src = &D.Src;
        EC.E = &E;
        EC.DeclTypes = &DTypes;
        EC.Locals = &Locals;
        EC.AliasKilled = &NoAlias;
        EC.S = nullptr;
        for (const auto &Rg : FnA.second)
          for (size_t I = Rg.first; I + 1 < Rg.second; ++I) {
            if (Toks[I].TokenKind != Token::Kind::Identifier ||
                !isPunctAt(Toks, I + 1, Rg.second, "("))
              continue;
            auto DIt = Defns.find(Toks[I].Text);
            if (DIt == Defns.end() || Unsafe.count(Toks[I].Text) ||
                !isCallSite(Toks, I, Rg.first))
              continue;
            size_t Close = matchCloseIdx(Toks, I + 1, Rg.second, "(", ")");
            if (Close >= Rg.second)
              continue;
            std::vector<std::pair<size_t, size_t>> Args;
            if (I + 2 < Close)
              Args = splitArgs(Toks, I + 2, Close);
            const DefnInfo &DI = DIt->second;
            auto &Slot = Next[Toks[I].Text];
            for (size_t Ai = 0; Ai < DI.Params.size(); ++Ai) {
              Interval AV = Interval::untracked();
              if (Ai < Args.size() && Args[Ai].first < Args[Ai].second) {
                Env Tmp = E;
                EvalCtx EC2 = EC;
                EC2.E = &Tmp;
                ExprParser Pr(EC2, Args[Ai].first, Args[Ai].second);
                AV = Pr.parseAssign().I;
              } else if (DI.Params[Ai].DefB < DI.Params[Ai].DefE) {
                Env Tmp;
                Tmp.Reachable = true;
                std::map<std::string, IntType> DT2;
                std::set<std::string> L2, A2;
                EvalCtx EC3;
                EC3.Src = DI.Src;
                EC3.E = &Tmp;
                EC3.DeclTypes = &DT2;
                EC3.Locals = &L2;
                EC3.AliasKilled = &A2;
                EC3.S = nullptr;
                ExprParser Pr(EC3, DI.Params[Ai].DefB, DI.Params[Ai].DefE);
                AV = Pr.parseAssign().I;
              }
              auto SlotIt = Slot.find((unsigned)Ai);
              if (SlotIt == Slot.end())
                Slot.emplace((unsigned)Ai, AV);
              else
                SlotIt->second = join(SlotIt->second, AV);
            }
          }
      }
    }
    // Plain joins for the first rounds (exact literal-fed chains
    // converge there), then per-slot widening: a summary still
    // climbing after that many rounds is growing through arithmetic
    // (f(n + 1)-style recursion) and jumps to its sentinel bound, so
    // the iteration always terminates inside the round cap instead of
    // discarding the whole tree's summaries.
    if (Round >= 7)
      for (auto &FnKV : Next)
        for (auto &IdxKV : FnKV.second) {
          Interval Prev = Interval::bottom();
          auto SIt = Sum.find(FnKV.first);
          if (SIt != Sum.end()) {
            auto PIt = SIt->second.find(IdxKV.first);
            if (PIt != SIt->second.end())
              Prev = PIt->second;
          }
          IdxKV.second = widen(Prev, IdxKV.second);
        }
    Converged = Next == Sum;
    Sum.swap(Next);
  }
  if (!Converged)
    return;

  for (const auto &FnKV : Sum) {
    if (Unsafe.count(FnKV.first))
      continue;
    auto DIt = Defns.find(FnKV.first);
    if (DIt == Defns.end())
      continue;
    for (const auto &IdxKV : FnKV.second) {
      if (!IdxKV.second.isRange() || IdxKV.first >= DIt->second.Params.size())
        continue;
      const ParamDecl &P = DIt->second.Params[IdxKV.first];
      if (P.Type.IsRef)
        continue;
      Interval I = meet(IdxKV.second, typeRange(P.Type));
      if (!I.isRange() || (I.Lo <= -Inf && I.Hi >= Inf))
        continue;
      Ctx.ParamIntervals[FnKV.first][IdxKV.first] =
          ParamInterval{I.Lo, I.Hi};
    }
  }
}

} // namespace lint
} // namespace rap
