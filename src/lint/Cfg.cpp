//===- lint/Cfg.cpp - Per-function control-flow graphs -------------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/Cfg.h"

#include <map>
#include <sstream>

using namespace rap;
using namespace rap::lint;

namespace {

class CfgBuilder {
public:
  Cfg build(const Function &Fn) {
    G.FunctionName = Fn.Name;
    newBlock("entry"); // Block 0.
    newBlock("exit");  // Block 1.
    Cur = Cfg::Entry;
    Terminated = false;
    if (Fn.Body)
      emitStmt(*Fn.Body);
    if (!Terminated)
      addEdge(Cur, Cfg::Exit);
    resolveGotos();
    prune();
    return std::move(G);
  }

private:
  Cfg G;
  size_t Cur = 0;
  bool Terminated = false;

  struct LoopCtx {
    size_t BreakTo;
    size_t ContinueTo;
  };
  struct SwitchCtx {
    size_t Head;
    bool SawDefault = false;
  };
  std::vector<LoopCtx> Loops;
  std::vector<SwitchCtx> Switches;
  std::map<std::string, size_t> Labels;
  std::vector<std::pair<size_t, std::string>> PendingGotos;

  size_t newBlock(const std::string &Note) {
    BasicBlock B;
    B.Id = G.Blocks.size();
    B.Note = Note;
    G.Blocks.push_back(std::move(B));
    return G.Blocks.size() - 1;
  }

  void addEdge(size_t From, size_t To) {
    auto &S = G.Blocks[From].Succs;
    for (size_t Existing : S)
      if (Existing == To)
        return;
    S.push_back(To);
  }

  /// Makes Cur a live block that can accept actions; after a
  /// terminator, dead statements land in a fresh predecessor-less
  /// block so dumps show them honestly.
  void ensureLive(const char *Note = "dead") {
    if (!Terminated)
      return;
    Cur = newBlock(Note);
    Terminated = false;
  }

  /// Starts a new block reached from the current one (when live).
  size_t startBlock(const std::string &Note) {
    size_t B = newBlock(Note);
    if (!Terminated)
      addEdge(Cur, B);
    Cur = B;
    Terminated = false;
    return B;
  }

  void emitAction(Action::Kind Kind, const Stmt &S, size_t Begin,
                  size_t End) {
    ensureLive();
    Action A;
    A.ActionKind = Kind;
    A.S = &S;
    A.Begin = Begin;
    A.End = End;
    A.Line = S.Line;
    G.Blocks[Cur].Actions.push_back(A);
  }

  size_t labelBlock(const std::string &Name) {
    auto It = Labels.find(Name);
    if (It != Labels.end())
      return It->second;
    size_t B = newBlock(Name + ":");
    Labels.emplace(Name, B);
    return B;
  }

  void resolveGotos() {
    for (const auto &[From, Name] : PendingGotos) {
      auto It = Labels.find(Name);
      // An unresolved target means the label was misparsed; fall back
      // to the exit so dataflow stays conservative rather than wrong.
      addEdge(From, It != Labels.end() ? It->second : Cfg::Exit);
    }
  }

  /// Drops empty predecessor-less blocks (artifacts of terminators at
  /// scope ends) and renumbers, keeping golden dumps tidy.
  void prune() {
    std::vector<size_t> PredCount(G.Blocks.size(), 0);
    for (const auto &B : G.Blocks)
      for (size_t S : B.Succs)
        ++PredCount[S];
    std::vector<size_t> Remap(G.Blocks.size(), SIZE_MAX);
    std::vector<BasicBlock> Kept;
    for (size_t I = 0; I < G.Blocks.size(); ++I) {
      bool Keep = I == Cfg::Entry || I == Cfg::Exit || PredCount[I] > 0 ||
                  !G.Blocks[I].Actions.empty() ||
                  !G.Blocks[I].Succs.empty();
      if (!Keep)
        continue;
      Remap[I] = Kept.size();
      Kept.push_back(std::move(G.Blocks[I]));
    }
    for (auto &B : Kept) {
      B.Id = &B - Kept.data();
      std::vector<size_t> Succs;
      for (size_t S : B.Succs)
        if (Remap[S] != SIZE_MAX)
          Succs.push_back(Remap[S]);
      B.Succs = std::move(Succs);
    }
    G.Blocks = std::move(Kept);
  }

  void emitStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Compound: {
      for (const auto &Child : S.Children)
        emitStmt(*Child);
      if (!Terminated)
        emitAction(Action::Kind::ScopeEnd, S, 0, 0);
      return;
    }
    case StmtKind::Expr:
      if (S.ExprEnd > S.ExprBegin)
        emitAction(Action::Kind::Expr, S, S.ExprBegin, S.ExprEnd);
      return;
    case StmtKind::Decl:
      emitAction(Action::Kind::Decl, S, S.ExprBegin, S.ExprEnd);
      return;
    case StmtKind::Return:
      emitAction(Action::Kind::Return, S, S.ExprBegin, S.ExprEnd);
      addEdge(Cur, Cfg::Exit);
      Terminated = true;
      return;
    case StmtKind::Break:
      ensureLive();
      if (!Loops.empty())
        addEdge(Cur, Loops.back().BreakTo);
      Terminated = true;
      return;
    case StmtKind::Continue:
      ensureLive();
      if (!Loops.empty())
        addEdge(Cur, Loops.back().ContinueTo);
      Terminated = true;
      return;
    case StmtKind::Goto:
      ensureLive();
      PendingGotos.emplace_back(Cur, S.Name);
      // Materialize the label block now so backward gotos connect.
      labelBlock(S.Name);
      Terminated = true;
      return;
    case StmtKind::Label: {
      size_t B = labelBlock(S.Name);
      if (!Terminated)
        addEdge(Cur, B);
      Cur = B;
      Terminated = false;
      return;
    }
    case StmtKind::CaseLabel: {
      size_t B = newBlock(S.Name);
      if (!Terminated)
        addEdge(Cur, B); // Fallthrough from the previous case.
      if (!Switches.empty()) {
        addEdge(Switches.back().Head, B);
        if (S.Name == "default")
          Switches.back().SawDefault = true;
      }
      Cur = B;
      Terminated = false;
      return;
    }
    case StmtKind::If: {
      emitAction(Action::Kind::Cond, S, S.ExprBegin, S.ExprEnd);
      size_t Head = Cur;
      size_t Join = newBlock("join");
      size_t Then = newBlock("then");
      addEdge(Head, Then);
      Cur = Then;
      Terminated = false;
      if (!S.Children.empty())
        emitStmt(*S.Children[0]);
      if (!Terminated)
        addEdge(Cur, Join);
      if (S.Children.size() > 1) {
        size_t Else = newBlock("else");
        addEdge(Head, Else);
        Cur = Else;
        Terminated = false;
        emitStmt(*S.Children[1]);
        if (!Terminated)
          addEdge(Cur, Join);
      } else {
        addEdge(Head, Join);
      }
      Cur = Join;
      Terminated = false;
      return;
    }
    case StmtKind::While: {
      size_t Head = startBlock("loop");
      emitAction(Action::Kind::Cond, S, S.ExprBegin, S.ExprEnd);
      size_t After = newBlock("after");
      size_t Body = newBlock("body");
      addEdge(Head, Body);
      addEdge(Head, After);
      Loops.push_back({After, Head});
      Cur = Body;
      Terminated = false;
      if (!S.Children.empty())
        emitStmt(*S.Children[0]);
      if (!Terminated)
        addEdge(Cur, Head);
      Loops.pop_back();
      Cur = After;
      Terminated = false;
      return;
    }
    case StmtKind::DoWhile: {
      size_t Body = startBlock("body");
      size_t CondB = newBlock("loop");
      size_t After = newBlock("after");
      Loops.push_back({After, CondB});
      if (!S.Children.empty())
        emitStmt(*S.Children[0]);
      if (!Terminated)
        addEdge(Cur, CondB);
      Loops.pop_back();
      Cur = CondB;
      Terminated = false;
      emitAction(Action::Kind::Cond, S, S.ExprBegin, S.ExprEnd);
      addEdge(CondB, Body);
      addEdge(CondB, After);
      Cur = After;
      Terminated = false;
      return;
    }
    case StmtKind::For: {
      // A classic init runs once, before the loop; a range-for's
      // declaration re-binds per iteration, so it belongs in the body.
      if (S.InitEnd > S.InitBegin && !S.RangeFor)
        emitAction(Action::Kind::Decl, S, S.InitBegin, S.InitEnd);
      size_t Head = startBlock("loop");
      bool HasCond = S.ExprEnd > S.ExprBegin;
      if (HasCond)
        emitAction(Action::Kind::Cond, S, S.ExprBegin, S.ExprEnd);
      size_t After = newBlock("after");
      size_t Body = newBlock("body");
      size_t Inc = newBlock("inc");
      addEdge(Head, Body);
      if (HasCond)
        addEdge(Head, After);
      Loops.push_back({After, Inc});
      Cur = Body;
      Terminated = false;
      if (S.InitEnd > S.InitBegin && S.RangeFor)
        emitAction(Action::Kind::Decl, S, S.InitBegin, S.InitEnd);
      if (!S.Children.empty())
        emitStmt(*S.Children[0]);
      if (!Terminated)
        addEdge(Cur, Inc);
      Loops.pop_back();
      Cur = Inc;
      Terminated = false;
      if (S.IncEnd > S.IncBegin)
        emitAction(Action::Kind::Expr, S, S.IncBegin, S.IncEnd);
      addEdge(Inc, Head);
      Cur = After;
      Terminated = false;
      return;
    }
    case StmtKind::Switch: {
      emitAction(Action::Kind::Cond, S, S.ExprBegin, S.ExprEnd);
      size_t Head = Cur;
      size_t After = newBlock("after");
      Loops.push_back({After, SIZE_MAX}); // break targets the switch.
      Switches.push_back({Head, false});
      // Control reaches the body only through case labels.
      Terminated = true;
      if (!S.Children.empty())
        emitStmt(*S.Children[0]);
      if (!Terminated)
        addEdge(Cur, After);
      if (!Switches.back().SawDefault)
        addEdge(Head, After);
      Switches.pop_back();
      Loops.pop_back();
      Cur = After;
      Terminated = false;
      return;
    }
    case StmtKind::Try: {
      size_t TryB = startBlock("try");
      size_t Join = newBlock("join");
      std::vector<size_t> Handlers;
      for (size_t I = 1; I < S.Children.size(); ++I)
        Handlers.push_back(newBlock("catch"));
      // Any action in the try body may throw into any handler.
      for (size_t H : Handlers)
        addEdge(TryB, H);
      if (!S.Children.empty())
        emitStmt(*S.Children[0]);
      if (!Terminated)
        addEdge(Cur, Join);
      for (size_t I = 1; I < S.Children.size(); ++I) {
        const Stmt &Handler = *S.Children[I];
        Cur = Handlers[I - 1];
        Terminated = false;
        if (Handler.ExprEnd > Handler.ExprBegin)
          emitAction(Action::Kind::Decl, Handler, Handler.ExprBegin,
                     Handler.ExprEnd);
        if (!Handler.Children.empty())
          emitStmt(*Handler.Children[0]);
        if (!Terminated)
          addEdge(Cur, Join);
      }
      Cur = Join;
      Terminated = false;
      return;
    }
    case StmtKind::Catch:
      return; // Handled by Try.
    }
  }
};

const char *actionName(Action::Kind K) {
  switch (K) {
  case Action::Kind::Expr:
    return "expr";
  case Action::Kind::Decl:
    return "decl";
  case Action::Kind::Cond:
    return "cond";
  case Action::Kind::Return:
    return "return";
  case Action::Kind::ScopeEnd:
    return "end";
  }
  return "?";
}

} // namespace

std::vector<std::vector<size_t>> Cfg::predecessors() const {
  std::vector<std::vector<size_t>> Preds(Blocks.size());
  for (const auto &B : Blocks)
    for (size_t S : B.Succs)
      Preds[S].push_back(B.Id);
  return Preds;
}

std::string Cfg::dump() const {
  std::ostringstream OS;
  OS << "fn " << FunctionName << "\n";
  for (const auto &B : Blocks) {
    OS << "  B" << B.Id;
    if (!B.Note.empty())
      OS << " " << B.Note;
    OS << ":";
    for (const auto &A : B.Actions)
      OS << " " << actionName(A.ActionKind) << "@" << A.Line;
    if (!B.Succs.empty()) {
      OS << " ->";
      for (size_t S : B.Succs)
        OS << " B" << S;
    }
    OS << "\n";
  }
  return OS.str();
}

Cfg rap::lint::buildCfg(const Function &Fn) { return CfgBuilder().build(Fn); }
