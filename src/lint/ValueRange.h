//===- lint/ValueRange.h - Interval abstract interpretation ---*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rap_lint v4 value-range engine: an integer interval lattice
/// abstract-interpreted over the per-function CFGs (lint/Cfg.h), with
///
///   - widening at loop heads (delayed, so small counted loops
///     converge to their exact bounds) and the standard one-shot
///     narrowing that branch refinement provides,
///   - transfer functions for arithmetic, shifts, casts, masks and
///     remainders over declared integer types,
///   - branch-condition refinement on both arms (`if (Bits < 64)`
///     narrows the then-arm to [0,63] and the else-arm to [64,...]),
///     including `?:` at expression level and member-chain conditions,
///   - interprocedural constant/range propagation for parameters every
///     observed call site feeds with evaluable arguments (the PR 6
///     name-keyed call-graph convention; see collectParamIntervals).
///
/// The domain distinguishes *tracked* intervals — bounds with a
/// concrete witness chain from literals, declared types, refinements
/// and modeled transfers — from *untracked* values (fields, calls,
/// pointer loads). The four rules it powers (shift-width,
/// narrowing-truncation, unbounded-read, div-by-zero) only fire on
/// tracked intervals, so an unmodeled source is silence, never a
/// fabricated finding. docs/STATIC_ANALYSIS.md documents the lattice,
/// the widening policy and the known imprecision.
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_VALUERANGE_H
#define RAP_LINT_VALUERANGE_H

#include "lint/ApiAudit.h"
#include "lint/Lexer.h"
#include "lint/Lint.h"
#include "lint/Parser.h"

#include <map>
#include <string>
#include <vector>

namespace rap {
namespace lint {

/// One element of the value lattice: Bottom (no value reaches here),
/// a tracked interval [Lo, Hi], or Untracked (a value from a source
/// the engine does not model — top, but flagged so rules stay
/// witness-based). Bounds saturate at +/-Inf; a bound at the sentinel
/// means "unbounded in that direction", never an exact huge value.
struct Interval {
  enum class Kind { Bottom, Range, Untracked };

  /// Saturation sentinel: 2^62, far above any bound the engine needs
  /// to be exact about and far below overflow of the i64 arithmetic
  /// the transfers are computed in.
  static constexpr long long Inf = 1LL << 62;

  Kind K = Kind::Untracked;
  long long Lo = -Inf, Hi = Inf; ///< Inclusive; meaningful for Range.

  static Interval bottom() { return {Kind::Bottom, 0, 0}; }
  static Interval untracked() { return {Kind::Untracked, -Inf, Inf}; }
  static Interval of(long long Lo, long long Hi) {
    return {Kind::Range, Lo, Hi};
  }
  static Interval constant(long long V) { return of(V, V); }

  bool isBottom() const { return K == Kind::Bottom; }
  bool isRange() const { return K == Kind::Range; }
  bool isUntracked() const { return K == Kind::Untracked; }
  bool contains(long long V) const {
    return isUntracked() || (isRange() && Lo <= V && V <= Hi);
  }

  bool operator==(const Interval &O) const {
    if (K != O.K)
      return false;
    return K != Kind::Range || (Lo == O.Lo && Hi == O.Hi);
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }
};

/// Least upper bound: Bottom is the identity, Untracked absorbs, and
/// two ranges take the convex hull.
Interval join(const Interval &A, const Interval &B);

/// Greatest lower bound: Untracked is the identity, Bottom absorbs,
/// and two ranges intersect (empty intersection is Bottom).
Interval meet(const Interval &A, const Interval &B);

/// Classic interval widening: a bound of \p Next that moved past the
/// corresponding bound of \p Prev jumps straight to its sentinel.
/// Any ascending chain through widen stabilizes after at most two
/// applications per bound, which is what bounds the fixpoint.
Interval widen(const Interval &Prev, const Interval &Next);

/// Partial order of the lattice: A is at or below B.
bool intervalLeq(const Interval &A, const Interval &B);

/// "[12, 63]", "[0, +inf]", "untracked", "bottom" — used in finding
/// messages (the interval IS the witness) and test diagnostics.
std::string intervalText(const Interval &I);

/// Registry entries for the four v4 rules, composed into allRules().
const std::vector<RuleInfo> &valueRangeRuleInfos();

/// The interprocedural half: joins, over every observed call site of
/// each function defined in \p Files, the interval each argument
/// position evaluates to (literals, sizeof-free constant folds, and
/// the *enclosing* function's already-proven parameter ranges, so a
/// bounded length forwarded one level — CrcIn::read passing its own
/// Size to istream::read — stays bounded). Runs to a fixpoint, then
/// records tracked parameter ranges into \p Ctx.ParamIntervals.
///
/// Same soundness caveat as the v3 concurrency pass: the call graph
/// is the OBSERVED one, keyed by unqualified name. A function whose
/// name ever appears without a following '(' (address taken, passed
/// as a callback) gets no summary at all.
void collectParamIntervals(const std::vector<AuditFile> &Files,
                           LintContext &Ctx);

/// Runs the four value-range rules over one parsed file. Findings are
/// appended unsuppressed; the engine applies allow() markers.
void runValueRangeRules(const std::string &Path, const LexedSource &Src,
                        const ParsedFile &Parsed, const LintContext &Ctx,
                        std::vector<Finding> &Out);

/// Test hook: runs the interval fixpoint over one function and
/// returns the abstract environment at the function exit (join over
/// every return/fall-through path). Keys are variable names, plus
/// normalized member-chain spellings for branch assumptions that
/// survive to the exit.
std::map<std::string, Interval>
intervalsAtExit(const LexedSource &Src, const Function &Fn,
                const LintContext &Ctx);

} // namespace lint
} // namespace rap

#endif // RAP_LINT_VALUERANGE_H
