//===- lint/FlowRules.h - Flow-aware rap_lint rules -----------*- C++ -*-===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four CFG/dataflow rules of rap_lint v2 (see
/// docs/STATIC_ANALYSIS.md):
///
///   unchecked-status  a call whose bool/rap_status result is dropped,
///                     or stored in a local no path ever reads
///   use-after-move    a moved-from local read before reassignment
///                     (may-analysis over the CFG)
///   counter-escape    a value loaded from a saturating counter field
///                     reaching raw + / * arithmetic instead of the
///                     BitUtils.h helpers (core/ only; taint analysis)
///   lock-discipline   RAP_GUARDED_BY variables accessed without their
///                     mutex must-held (lock_guard/unique_lock/
///                     scoped_lock scopes + RAP_REQUIRES entry facts)
///
/// All four run per function over lint::Cfg and respect the standard
/// `rap-lint: allow(...)` suppressions (applied by the engine).
///
//===----------------------------------------------------------------------===//

#ifndef RAP_LINT_FLOWRULES_H
#define RAP_LINT_FLOWRULES_H

#include "lint/Cfg.h"
#include "lint/Dataflow.h"
#include "lint/Lexer.h"
#include "lint/Lint.h"
#include "lint/Parser.h"

#include <set>
#include <string>
#include <vector>

namespace rap {
namespace lint {

/// Whether \p Name reads like a fallible operation, so a bool return
/// is a status code rather than a predicate (isEmpty, hasNode, ...).
bool looksLikeStatusName(const std::string &Name);

/// RAII lock-holder class names the lock rules recognize.
const std::set<std::string> &lockClasses();

/// Extracts the mutex locked by the RAII declaration in the token
/// range [Begin, End) of \p T, or "" when there is none (deferred
/// locks also yield "").
std::string lockDeclMutex(const std::vector<Token> &T, size_t Begin,
                          size_t End);

/// Applies one action's lock effects to the held set: RAII lock
/// declarations acquire, the end of the declaring compound releases,
/// and manual m.lock()/m.unlock() calls toggle. Shared by the local
/// lock-discipline rule and the interprocedural concurrency pass.
void transferLocks(const std::vector<Token> &T, const Action &A,
                   FactSet &Held);

/// Resolves the callee of the call starting at token \p I: walks a
/// qualifier/member chain and returns the identifier directly before
/// a `(`, or empty. \p Next receives the index of that `(`.
std::string calleeAt(const std::vector<Token> &T, size_t I, size_t End,
                     size_t &Next);

/// Names bound inside \p Fn: its parameters plus every locally
/// declared variable. A bare use of such a name is that binding, not
/// a namespace-scope variable or class field of the same name.
FactSet collectShadowedNames(const std::vector<Token> &T, const Function &Fn,
                             const Cfg &G);

/// Whether \p Sig returns a status the caller must not drop: any
/// rap_status, or a non-pointer bool on a status-named function.
bool isStatusReturn(const Signature &Sig);

/// Runs the four flow rules over one parsed file. \p InCore gates
/// counter-escape. Findings are appended unsuppressed; the engine
/// applies allow() markers afterwards.
void runFlowRules(const std::string &Path, const LexedSource &Src,
                  const ParsedFile &Parsed, const LintContext &Ctx,
                  bool InCore, std::vector<Finding> &Out);

/// Registry entries for the flow rules, composed into allRules().
const std::vector<RuleInfo> &flowRuleInfos();

} // namespace lint
} // namespace rap

#endif // RAP_LINT_FLOWRULES_H
