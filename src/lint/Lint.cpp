//===- lint/Lint.cpp - RAP-specific static-analysis rules ----------------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "lint/ApiAudit.h"
#include "lint/Concurrency.h"
#include "lint/FlowRules.h"
#include "lint/Lexer.h"
#include "lint/Parser.h"
#include "lint/ValueRange.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

using namespace rap;
using namespace rap::lint;

namespace {

//===----------------------------------------------------------------------===//
// File classification
//===----------------------------------------------------------------------===//

/// What a repo-relative path is, for rule applicability.
struct FileClass {
  bool InCore = false;     ///< src/core/
  bool InDetSubsys = false; ///< src/core/, src/hw/, src/verify/
  bool IsHotPath = false;  ///< RapTree.*, PipelinedEngine.*, Tcam.*
  bool IsHeader = false;   ///< *.h
  bool IsPublicHeader = false; ///< *.h under src/
  bool IsRngHeader = false; ///< support/Rng.h, the one sanctioned source
};

bool hasPrefix(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

bool hasSuffix(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// Path stem: "src/core/RapTree.cpp" -> "RapTree".
std::string stemOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  return Dot == std::string::npos ? Base : Base.substr(0, Dot);
}

FileClass classify(const std::string &Path) {
  FileClass FC;
  FC.InCore = hasPrefix(Path, "src/core/");
  FC.InDetSubsys = FC.InCore || hasPrefix(Path, "src/hw/") ||
                   hasPrefix(Path, "src/verify/");
  std::string Stem = stemOf(Path);
  FC.IsHotPath =
      Stem == "RapTree" || Stem == "PipelinedEngine" || Stem == "Tcam";
  FC.IsHeader = hasSuffix(Path, ".h");
  FC.IsPublicHeader = FC.IsHeader && hasPrefix(Path, "src/");
  FC.IsRngHeader = hasSuffix(Path, "support/Rng.h");
  return FC;
}

//===----------------------------------------------------------------------===//
// Shared token helpers
//===----------------------------------------------------------------------===//

bool isIdent(const Token &T, const char *Name) {
  return T.TokenKind == Token::Kind::Identifier && T.Text == Name;
}

bool isPunct(const Token &T, const char *Spelling) {
  return T.TokenKind == Token::Kind::Punct && T.Text == Spelling;
}

//===----------------------------------------------------------------------===//
// counter-arithmetic (R1)
//===----------------------------------------------------------------------===//

/// Event-weight counter fields: everything in core/ that accumulates
/// stream weight, where a wrap would silently break the monotone
/// lower-bound guarantee. Structural statistics (NumNodes, NumSplits,
/// ...) are bounded by memory and exempt.
const std::set<std::string> &counterFields() {
  static const std::set<std::string> Fields = {
      "Count",     "TotalCount", "Weight",            "SubtreeWeight",
      "ExclusiveWeight", "NumEvents",  "NumOffered", "NodeCountIntegral"};
  return Fields;
}

void runCounterArithmetic(const std::string &Path, const LexedSource &Src,
                          std::vector<Finding> &Out) {
  const std::vector<Token> &Toks = Src.Tokens;
  auto Flag = [&](const Token &At, const std::string &Field,
                  const std::string &Op) {
    Out.push_back(
        {"counter-arithmetic", Path, At.Line,
         "raw '" + Op + "' on counter field '" + Field +
             "'; use the saturating helpers in support/BitUtils.h so the "
             "count clamps at 2^64-1 instead of wrapping"});
  };
  for (size_t I = 0; I != Toks.size(); ++I) {
    const Token &T = Toks[I];
    if (T.TokenKind != Token::Kind::Punct)
      continue;
    bool Compound = T.Text == "+=" || T.Text == "-=";
    bool IncDec = T.Text == "++" || T.Text == "--";
    if (!Compound && !IncDec)
      continue;
    // Postfix / compound: the field is the identifier right before the
    // operator (the tail of any member-access chain).
    if (I > 0 && Toks[I - 1].TokenKind == Token::Kind::Identifier &&
        counterFields().count(Toks[I - 1].Text)) {
      Flag(T, Toks[I - 1].Text, T.Text);
      continue;
    }
    // Prefix ++/--: walk the following chain of identifiers joined by
    // :: . -> and test its final component.
    if (IncDec) {
      size_t J = I + 1;
      std::string Last;
      while (J < Toks.size()) {
        if (Toks[J].TokenKind == Token::Kind::Identifier) {
          Last = Toks[J].Text;
          ++J;
          continue;
        }
        if (isPunct(Toks[J], "::") || isPunct(Toks[J], ".") ||
            isPunct(Toks[J], "->")) {
          ++J;
          continue;
        }
        break;
      }
      if (!Last.empty() && counterFields().count(Last))
        Flag(T, Last, T.Text);
    }
  }
}

//===----------------------------------------------------------------------===//
// capi-exception-tight (R2)
//===----------------------------------------------------------------------===//

/// Finds the index of the matching closer for the opener at \p Open
/// (whose text is \p OpenText / \p CloseText), or Toks.size().
size_t matchDelim(const std::vector<Token> &Toks, size_t Open,
                  const char *OpenText, const char *CloseText) {
  unsigned Depth = 0;
  for (size_t I = Open; I < Toks.size(); ++I) {
    if (isPunct(Toks[I], OpenText))
      ++Depth;
    else if (isPunct(Toks[I], CloseText) && --Depth == 0)
      return I;
  }
  return Toks.size();
}

/// Checks the extern "C" function whose tokens start at \p Begin
/// (just past the linkage specifier). Appends a finding if it is a
/// definition that is neither noexcept nor whole-body try/catch(...).
/// Returns the index just past the construct.
size_t checkExternCFunction(const std::string &Path,
                            const std::vector<Token> &Toks, size_t Begin,
                            std::vector<Finding> &Out) {
  // Find the parameter list: the first '(' before any ';' or '{'.
  size_t Paren = Begin;
  while (Paren < Toks.size() && !isPunct(Toks[Paren], "(") &&
         !isPunct(Toks[Paren], ";") && !isPunct(Toks[Paren], "{"))
    ++Paren;
  if (Paren >= Toks.size() || !isPunct(Toks[Paren], "("))
    return Paren + 1; // Not a function; a variable or odd construct.

  std::string Name;
  unsigned NameLine = Toks[Paren].Line;
  if (Paren > Begin && Toks[Paren - 1].TokenKind == Token::Kind::Identifier) {
    Name = Toks[Paren - 1].Text;
    NameLine = Toks[Paren - 1].Line;
  }

  size_t CloseParen = matchDelim(Toks, Paren, "(", ")");
  // Scan the trailing specifiers for noexcept until the body or ';'.
  bool Noexcept = false;
  size_t I = CloseParen + 1;
  while (I < Toks.size() && !isPunct(Toks[I], "{") && !isPunct(Toks[I], ";")) {
    if (isIdent(Toks[I], "noexcept"))
      Noexcept = true;
    ++I;
  }
  if (I >= Toks.size() || isPunct(Toks[I], ";"))
    return I + 1; // Declaration only; nothing can escape from it.

  size_t BodyOpen = I;
  size_t BodyClose = matchDelim(Toks, BodyOpen, "{", "}");
  if (Noexcept)
    return BodyClose + 1;

  // Whole-body try/catch(...): first statement is `try`, and a
  // catch-all handler exists in the function.
  bool BodyIsTry =
      BodyOpen + 1 < Toks.size() && isIdent(Toks[BodyOpen + 1], "try");
  bool HasCatchAll = false;
  for (size_t J = BodyOpen; J < BodyClose && J + 2 < Toks.size(); ++J)
    if (isIdent(Toks[J], "catch") && isPunct(Toks[J + 1], "(") &&
        isPunct(Toks[J + 2], "..."))
      HasCatchAll = true;
  if (!(BodyIsTry && HasCatchAll))
    Out.push_back(
        {"capi-exception-tight", Path, NameLine,
         "extern \"C\" function '" + (Name.empty() ? "<unnamed>" : Name) +
             "' is not exception-tight: mark it noexcept or wrap the whole "
             "body in try/catch(...) returning an error code; an exception "
             "crossing the C boundary is undefined behavior"});
  return BodyClose + 1;
}

void runCApiExceptionTight(const std::string &Path, const LexedSource &Src,
                           std::vector<Finding> &Out) {
  const std::vector<Token> &Toks = Src.Tokens;
  for (size_t I = 0; I + 1 < Toks.size(); ++I) {
    if (!isIdent(Toks[I], "extern") ||
        Toks[I + 1].TokenKind != Token::Kind::String ||
        Toks[I + 1].Text != "C")
      continue;
    if (I + 2 < Toks.size() && isPunct(Toks[I + 2], "{")) {
      // extern "C" { ... }: check every function inside the block.
      size_t End = matchDelim(Toks, I + 2, "{", "}");
      size_t J = I + 3;
      while (J < End)
        J = checkExternCFunction(Path, Toks, J, Out);
      I = End;
    } else {
      checkExternCFunction(Path, Toks, I + 2, Out);
    }
  }
}

//===----------------------------------------------------------------------===//
// nondeterminism (R3)
//===----------------------------------------------------------------------===//

void runNondeterminism(const std::string &Path, const LexedSource &Src,
                       std::vector<Finding> &Out) {
  static const std::set<std::string> BannedIdents = {
      "rand",          "srand",
      "rand_r",        "random",
      "drand48",       "random_device",
      "mt19937",       "mt19937_64",
      "minstd_rand",   "default_random_engine",
      "system_clock",  "steady_clock",
      "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get"};
  static const std::set<std::string> BannedCalls = {"time", "clock"};
  static const std::set<std::string> BannedIncludes = {
      "#include <random>", "#include <chrono>", "#include <ctime>",
      "#include <time.h>"};

  const std::vector<Token> &Toks = Src.Tokens;
  for (size_t I = 0; I != Toks.size(); ++I) {
    const Token &T = Toks[I];
    if (T.TokenKind == Token::Kind::Directive) {
      if (BannedIncludes.count(T.Text))
        Out.push_back({"nondeterminism", Path, T.Line,
                       "'" + T.Text +
                           "' in a deterministic subsystem; all randomness "
                           "and time must come from support/Rng.h seeds so "
                           "runs replay bit-identically"});
      continue;
    }
    if (T.TokenKind != Token::Kind::Identifier)
      continue;
    bool Banned = BannedIdents.count(T.Text) != 0;
    if (!Banned && BannedCalls.count(T.Text) && I + 1 < Toks.size() &&
        isPunct(Toks[I + 1], "("))
      Banned = true;
    if (Banned)
      Out.push_back({"nondeterminism", Path, T.Line,
                     "nondeterminism source '" + T.Text +
                         "'; use rap::Rng (support/Rng.h) with an explicit "
                         "seed so the differential oracle can replay the "
                         "exact stream"});
  }
}

//===----------------------------------------------------------------------===//
// hot-path-io (R4)
//===----------------------------------------------------------------------===//

void runHotPathIo(const std::string &Path, const LexedSource &Src,
                  std::vector<Finding> &Out) {
  // snprintf/vsnprintf format into caller buffers and stay exempt; the
  // banned set is stream/terminal IO that stalls the per-event path.
  static const std::set<std::string> BannedIdents = {
      "cout", "cerr",  "clog",    "printf", "fprintf",
      "puts", "fputs", "putchar", "fputc",  "scanf"};

  for (const Token &T : Src.Tokens) {
    if (T.TokenKind == Token::Kind::Directive) {
      if (T.Text == "#include <iostream>" || T.Text == "#include <stdio.h>")
        Out.push_back({"hot-path-io", Path, T.Line,
                       "'" + T.Text +
                           "' in a per-event hot-path file; format into "
                           "caller-provided buffers/streams outside the "
                           "update path instead"});
      continue;
    }
    if (T.TokenKind == Token::Kind::Identifier && BannedIdents.count(T.Text))
      Out.push_back({"hot-path-io", Path, T.Line,
                     "stdio in per-event hot path ('" + T.Text +
                         "'); the paper's engine sustains one event per "
                         "cycle — IO belongs in callers or dump paths"});
  }
}

//===----------------------------------------------------------------------===//
// include-guard (R5)
//===----------------------------------------------------------------------===//

/// "src/core/RapTree.h" -> "RAP_CORE_RAPTREE_H".
std::string expectedGuard(const std::string &Path) {
  std::string Rel = Path;
  if (hasPrefix(Rel, "src/"))
    Rel = Rel.substr(4);
  std::string Guard = "RAP_";
  for (char C : Rel) {
    if (C == '/')
      Guard += '_';
    else if (C == '.')
      break;
    else
      Guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(C)));
  }
  return Guard + "_H";
}

void runIncludeGuard(const std::string &Path, const LexedSource &Src,
                     std::vector<Finding> &Out) {
  std::string Want = expectedGuard(Path);
  const std::vector<Token> &Toks = Src.Tokens;
  auto Fail = [&](unsigned Line, const std::string &Detail) {
    Out.push_back({"include-guard", Path, Line,
                   Detail + " (expected guard '" + Want +
                       "'; see docs/STATIC_ANALYSIS.md)"});
  };
  if (Toks.empty()) {
    Fail(1, "empty header");
    return;
  }
  for (const Token &T : Toks)
    if (T.TokenKind == Token::Kind::Directive && T.Text == "#pragma once") {
      Fail(T.Line, "#pragma once instead of the canonical include guard");
      return;
    }
  const Token &First = Toks.front();
  if (First.TokenKind != Token::Kind::Directive ||
      First.Text != "#ifndef " + Want) {
    Fail(First.Line, "header does not open with its include guard");
    return;
  }
  if (Toks.size() < 2 || Toks[1].TokenKind != Token::Kind::Directive ||
      Toks[1].Text != "#define " + Want) {
    Fail(First.Line, "#ifndef is not followed by the matching #define");
    return;
  }
  const Token &Last = Toks.back();
  if (Last.TokenKind != Token::Kind::Directive ||
      !hasPrefix(Last.Text, "#endif"))
    Fail(Last.Line, "header does not close with #endif");
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

bool isKnownRule(const std::string &Id) {
  for (const RuleInfo &R : allRules())
    if (Id == R.Id)
      return true;
  return false;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

/// The five token-level rules implemented in this file.
const std::vector<RuleInfo> &tokenRuleInfos() {
  static const std::vector<RuleInfo> Rules = {
      {"counter-arithmetic",
       "core/ event-weight counters must use the saturating helpers in "
       "support/BitUtils.h, never raw +=/++/--",
       "The paper's eps*n accuracy bound is an inequality over exact event "
       "counts. A uint64_t wrap silently turns a huge count into a small "
       "one, and every range estimate derived from it goes wrong with no "
       "error signal. The saturating helpers clamp at 2^64-1, which keeps "
       "the estimate a valid lower bound. Fix: X = saturatingAdd(X, W). "
       "Structural statistics bounded by memory (NumNodes, ...) are "
       "exempt by name; token-level rule, src/core/ only."},
      {"capi-exception-tight",
       "extern \"C\" functions must be noexcept or whole-body "
       "try/catch(...) returning an error code",
       "A C++ exception unwinding through a C caller is undefined "
       "behavior. Every extern \"C\" entry point must either be noexcept "
       "(terminate is defined behavior) or catch everything and translate "
       "to an error code. Fix: wrap the whole body in try/catch(...) and "
       "return RAP_ERR, or add noexcept."},
      {"nondeterminism",
       "core/, hw/ and verify/ must draw randomness and time only from "
       "support/Rng.h with explicit seeds",
       "The differential oracle replays recorded streams and expects "
       "bit-identical results. Any rand()/clock()/random_device call "
       "makes a run irreproducible and a fuzz failure undebuggable. Fix: "
       "take a rap::Rng (or a seed) as a parameter."},
      {"hot-path-io",
       "per-event hot-path files (RapTree, PipelinedEngine, Tcam) must "
       "not use stdio/iostream",
       "The paper's engine sustains one event per cycle; a printf on the "
       "update path is a 10^4x stall and skews every benchmark in "
       "baselines/. Fix: format into caller-provided buffers, or move "
       "the IO to a dump/debug path outside the per-event files."},
      {"include-guard",
       "public headers under src/ carry the canonical RAP_<DIR>_<STEM>_H "
       "include guard",
       "Generated self-containment TUs and the api-audit include checks "
       "key on the canonical guard spelling; #pragma once is not "
       "portable to all shipped toolchains. Fix: open the header with "
       "#ifndef RAP_<DIR>_<STEM>_H / #define, close with #endif."},
  };
  return Rules;
}

const std::vector<RuleInfo> &rap::lint::allRules() {
  // Composed from the per-module registries (FlowRules.cpp,
  // ApiAudit.cpp, Concurrency.cpp, ValueRange.cpp) so a module cannot
  // emit a rule id that --list-rules, --explain and the allow()-marker
  // validation do not know about.
  static const std::vector<RuleInfo> Rules = [] {
    std::vector<RuleInfo> R = tokenRuleInfos();
    for (const std::vector<RuleInfo> *Part :
         {&flowRuleInfos(), &apiAuditRuleInfos(), &concurrencyRuleInfos(),
          &valueRangeRuleInfos()})
      R.insert(R.end(), Part->begin(), Part->end());
    return R;
  }();
  return Rules;
}

std::vector<Finding> rap::lint::lintSource(const std::string &Path,
                                           const std::string &Content) {
  return lintSource(Path, Content, LintContext());
}

std::vector<Finding> rap::lint::lintSource(const std::string &Path,
                                           const std::string &Content,
                                           const LintContext &Ctx) {
  LexedSource Src = lex(Content);
  FileClass FC = classify(Path);

  std::vector<Finding> Raw;
  if (FC.InCore)
    runCounterArithmetic(Path, Src, Raw);
  runCApiExceptionTight(Path, Src, Raw); // Triggered by extern "C" anywhere.
  if (FC.InDetSubsys && !FC.IsRngHeader)
    runNondeterminism(Path, Src, Raw);
  if (FC.IsHotPath)
    runHotPathIo(Path, Src, Raw);
  if (FC.IsPublicHeader)
    runIncludeGuard(Path, Src, Raw);

  // Flow-aware rules share one parse of the file.
  ParsedFile Parsed = parseFile(Src);
  runFlowRules(Path, Src, Parsed, Ctx, FC.InCore, Raw);
  runValueRangeRules(Path, Src, Parsed, Ctx, Raw);

  std::vector<Finding> Out;
  for (Finding &F : Raw) {
    auto At = Src.AllowedRules.find(F.Line);
    if (At != Src.AllowedRules.end() && At->second.count(F.RuleId))
      continue;
    Out.push_back(std::move(F));
  }

  // Reject unknown rule names in allow() markers: a typo would
  // otherwise silently suppress nothing forever.
  for (const auto &[Line, Id] : Src.AllowMarkers)
    if (!isKnownRule(Id))
      Out.push_back({"unknown-rule", Path, Line,
                     "rap-lint: allow() names unknown rule '" + Id +
                         "'; known rules are listed by rap_lint "
                         "--list-rules"});

  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    if (A.Line != B.Line)
      return A.Line < B.Line;
    return A.RuleId < B.RuleId;
  });
  return Out;
}

BaselineSplit rap::lint::applyBaseline(std::vector<Finding> Findings,
                                       const std::string &BaselineText) {
  // The baseline is saved renderText output; the key deliberately
  // drops the line number so grandfathered findings survive edits
  // elsewhere in the file. Multiset semantics: N baselined copies
  // grandfather at most N identical findings.
  std::map<std::string, unsigned> Budget;
  std::istringstream IS(BaselineText);
  std::string Line;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    // path:line: [rule] message
    size_t Bracket = Line.find(" [");
    size_t CloseBracket =
        Bracket == std::string::npos ? Bracket : Line.find("] ", Bracket);
    size_t FirstColon = Line.find(':');
    if (Bracket == std::string::npos || CloseBracket == std::string::npos ||
        FirstColon == std::string::npos || FirstColon > Bracket)
      continue; // Malformed line; never grandfather by accident.
    std::string Path = Line.substr(0, FirstColon);
    std::string Rule = Line.substr(Bracket + 2, CloseBracket - Bracket - 2);
    std::string Message = Line.substr(CloseBracket + 2);
    ++Budget[Path + "\x1f" + Rule + "\x1f" + Message];
  }

  BaselineSplit Split;
  for (Finding &F : Findings) {
    auto It = Budget.find(F.Path + "\x1f" + F.RuleId + "\x1f" + F.Message);
    if (It != Budget.end() && It->second > 0) {
      --It->second;
      Split.Grandfathered.push_back(std::move(F));
    } else {
      Split.Fresh.push_back(std::move(F));
    }
  }

  // Leftover budget is a stale entry: the finding it grandfathers no
  // longer exists. Surface each remaining copy so the driver can fail
  // the run until the baseline is pruned.
  for (const auto &[Key, Remaining] : Budget) {
    if (Remaining == 0)
      continue;
    size_t S1 = Key.find('\x1f');
    size_t S2 = Key.find('\x1f', S1 + 1);
    std::string Rendered = Key.substr(0, S1) + ": [" +
                           Key.substr(S1 + 1, S2 - S1 - 1) + "] " +
                           Key.substr(S2 + 1);
    for (unsigned I = 0; I != Remaining; ++I)
      Split.Stale.push_back(Rendered);
  }
  return Split;
}

std::string rap::lint::renderText(const std::vector<Finding> &Findings) {
  std::ostringstream OS;
  for (const Finding &F : Findings)
    OS << F.Path << ':' << F.Line << ": [" << F.RuleId << "] " << F.Message
       << '\n';
  return OS.str();
}

std::string rap::lint::renderJson(const std::vector<Finding> &Findings) {
  std::ostringstream OS;
  OS << "[\n";
  for (size_t I = 0; I != Findings.size(); ++I) {
    const Finding &F = Findings[I];
    OS << "  {\"rule\": \"" << jsonEscape(F.RuleId) << "\", \"path\": \""
       << jsonEscape(F.Path) << "\", \"line\": " << F.Line
       << ", \"message\": \"" << jsonEscape(F.Message) << "\"}"
       << (I + 1 == Findings.size() ? "\n" : ",\n");
  }
  OS << "]\n";
  return OS.str();
}

std::string rap::lint::renderSarif(const std::vector<Finding> &Findings) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"rap_lint\",\n"
     << "      \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
     << "      \"rules\": [\n";
  const std::vector<RuleInfo> &Rules = allRules();
  for (size_t I = 0; I != Rules.size(); ++I)
    OS << "        {\"id\": \"" << jsonEscape(Rules[I].Id)
       << "\", \"shortDescription\": {\"text\": \""
       << jsonEscape(Rules[I].Summary) << "\"}}"
       << (I + 1 == Rules.size() ? "\n" : ",\n");
  OS << "      ]\n"
     << "    }},\n"
     << "    \"results\": [\n";
  for (size_t I = 0; I != Findings.size(); ++I) {
    const Finding &F = Findings[I];
    OS << "      {\"ruleId\": \"" << jsonEscape(F.RuleId)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << jsonEscape(F.Message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << jsonEscape(F.Path) << "\"}, \"region\": {\"startLine\": " << F.Line
       << "}}}]}" << (I + 1 == Findings.size() ? "\n" : ",\n");
  }
  OS << "    ]\n"
     << "  }]\n"
     << "}\n";
  return OS.str();
}
