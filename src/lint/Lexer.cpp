//===- lint/Lexer.cpp - Token stream for the RAP source linter -----------===//
//
// Part of the RAP reproduction of "Profiling over Adaptive Ranges"
// (Mysore et al., CGO 2006). MIT license.
//
//===----------------------------------------------------------------------===//

#include "lint/Lexer.h"

#include <cctype>

using namespace rap;
using namespace rap::lint;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

bool isIdentBody(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

/// Cursor over the source text with line tracking. Backslash line
/// continuations (translation phase 2) are folded out transparently:
/// peek() and advance() never surface a `\`-newline pair, so splices
/// work everywhere the standard says they do — mid-identifier,
/// mid-number, inside // comments — while line() still advances past
/// the physical newline, keeping finding line numbers exact. Raw
/// string literals revert splicing (phase 3), so lexRawString()
/// switches it off via setSplicing().
class Cursor {
public:
  explicit Cursor(const std::string &Source) : Text(Source) {}

  bool atEnd() const { return skipSplices(Pos) >= Text.size(); }
  char peek(size_t Ahead = 0) const {
    size_t P = skipSplices(Pos);
    while (Ahead-- > 0 && P < Text.size())
      P = skipSplices(P + 1);
    return P < Text.size() ? Text[P] : '\0';
  }
  char advance() {
    size_t P = skipSplices(Pos);
    for (size_t I = Pos; I < P && I < Text.size(); ++I)
      if (Text[I] == '\n')
        ++Line;
    if (P >= Text.size()) {
      Pos = Text.size();
      return '\0';
    }
    char C = Text[P];
    if (C == '\n')
      ++Line;
    Pos = P + 1;
    return C;
  }
  unsigned line() const { return Line; }
  void setSplicing(bool On) { Splicing = On; }

private:
  /// Physical index of the next logical character at or after \p P.
  size_t skipSplices(size_t P) const {
    while (Splicing && P < Text.size() && Text[P] == '\\') {
      if (P + 1 < Text.size() && Text[P + 1] == '\n') {
        P += 2;
        continue;
      }
      if (P + 2 < Text.size() && Text[P + 1] == '\r' &&
          Text[P + 2] == '\n') {
        P += 3;
        continue;
      }
      break;
    }
    return P;
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
  bool Splicing = true;
};

/// The three-character punctuators we care to keep intact, then the
/// two-character ones. Order within each group is irrelevant because
/// the groups are tried longest first.
const char *const ThreeCharPuncts[] = {"<<=", ">>=", "...", "->*", "<=>"};
const char *const TwoCharPuncts[] = {
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "::", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "##"};

class LexerImpl {
public:
  explicit LexerImpl(const std::string &Content) : C(Content) {}

  LexedSource run() {
    while (!C.atEnd())
      lexOne();
    return std::move(Result);
  }

private:
  void emit(Token::Kind Kind, std::string Text, unsigned Line) {
    Result.Tokens.push_back(Token{Kind, std::move(Text), Line});
    LastTokenLine = Line;
  }

  /// Records an `allow` marker found in a comment starting on
  /// \p CommentLine and ending on \p EndLine.
  void recordAllows(const std::string &CommentText, unsigned CommentLine,
                    unsigned EndLine) {
    size_t MarkerAt = CommentText.find("rap-lint:");
    if (MarkerAt == std::string::npos)
      return;
    size_t AllowAt = CommentText.find("allow", MarkerAt);
    if (AllowAt == std::string::npos)
      return;
    size_t Open = CommentText.find('(', AllowAt);
    size_t Close = CommentText.find(')', AllowAt);
    if (Open == std::string::npos || Close == std::string::npos ||
        Close < Open)
      return;

    std::set<std::string> Rules;
    std::string Name;
    for (size_t I = Open + 1; I <= Close; ++I) {
      char Ch = CommentText[I];
      if (I < Close && (isIdentBody(Ch) || Ch == '-')) {
        Name.push_back(Ch);
      } else if (I < Close && Ch != ',' && Ch != ' ' && Ch != '\t') {
        // Not an allow list (e.g. prose like "allow(<rule>)" in docs):
        // ignore the marker rather than guess at its intent.
        return;
      } else if (!Name.empty()) {
        Rules.insert(Name);
        Name.clear();
      }
    }
    if (Rules.empty())
      return;

    // A marker on a line of its own also covers the next line, so long
    // signatures and expressions can hoist the suppression above them.
    bool Standalone = LastTokenLine != CommentLine;
    Result.AllowedRules[CommentLine].insert(Rules.begin(), Rules.end());
    if (Standalone)
      Result.AllowedRules[EndLine + 1].insert(Rules.begin(), Rules.end());
    for (const std::string &Rule : Rules)
      Result.AllowMarkers.emplace_back(CommentLine, Rule);
  }

  /// Consumes a // comment (cursor past the slashes). A backslash
  /// continuation extends the comment onto the next physical line, so
  /// the end line can differ from the start line.
  void lexLineComment(unsigned StartLine) {
    std::string Text;
    while (!C.atEnd() && C.peek() != '\n')
      Text.push_back(C.advance());
    recordAllows(Text, StartLine, C.line());
  }

  /// Consumes a block comment (cursor past the opener).
  void lexBlockComment(unsigned StartLine) {
    std::string Text;
    while (!C.atEnd()) {
      if (C.peek() == '*' && C.peek(1) == '/') {
        C.advance();
        C.advance();
        break;
      }
      Text.push_back(C.advance());
    }
    recordAllows(Text, StartLine, C.line());
  }

  /// Consumes a quoted literal with backslash escapes, returning the
  /// uninterpreted contents (cursor past the opening quote).
  std::string lexQuoted(char Quote) {
    std::string Text;
    while (!C.atEnd()) {
      char Ch = C.peek();
      if (Ch == '\\') {
        Text.push_back(C.advance());
        if (!C.atEnd())
          Text.push_back(C.advance());
        continue;
      }
      if (Ch == Quote || Ch == '\n') {
        C.advance();
        break;
      }
      Text.push_back(C.advance());
    }
    return Text;
  }

  /// Consumes a raw string literal (cursor past R"). The delimiter runs
  /// to the opening parenthesis; the literal ends at )delim".
  void lexRawString(unsigned StartLine) {
    // Raw string bodies revert line splicing (phase 3): a backslash
    // before a newline is literal content, not a continuation.
    C.setSplicing(false);
    std::string Delim;
    while (!C.atEnd() && C.peek() != '(')
      Delim.push_back(C.advance());
    if (!C.atEnd())
      C.advance(); // '('
    std::string Closer = ")" + Delim + "\"";
    std::string Body;
    while (!C.atEnd()) {
      if (C.peek() == ')') {
        bool Matches = true;
        for (size_t I = 0; I != Closer.size(); ++I)
          if (C.peek(I) != Closer[I]) {
            Matches = false;
            break;
          }
        if (Matches) {
          for (size_t I = 0; I != Closer.size(); ++I)
            C.advance();
          break;
        }
      }
      Body.push_back(C.advance());
    }
    C.setSplicing(true);
    emit(Token::Kind::String, Body, StartLine);
  }

  /// Consumes a preprocessor logical line (cursor past '#'), folding
  /// continuations and embedded comments, and emits one Directive
  /// token with whitespace runs collapsed.
  void lexDirective(unsigned StartLine) {
    std::string Text = "#";
    auto AppendSpace = [&Text] {
      if (!Text.empty() && Text.back() != ' ' && Text.back() != '#')
        Text.push_back(' ');
    };
    // Backslash continuations are folded out by the Cursor, so the
    // logical directive line ends at the first unspliced newline.
    while (!C.atEnd()) {
      char Ch = C.peek();
      if (Ch == '\n')
        break;
      if (Ch == '/' && C.peek(1) == '/') {
        unsigned Line = C.line();
        C.advance();
        C.advance();
        lexLineComment(Line);
        break;
      }
      if (Ch == '/' && C.peek(1) == '*') {
        unsigned Line = C.line();
        C.advance();
        C.advance();
        lexBlockComment(Line);
        AppendSpace();
        continue;
      }
      if (Ch == ' ' || Ch == '\t') {
        C.advance();
        AppendSpace();
        continue;
      }
      Text.push_back(C.advance());
    }
    while (!Text.empty() && Text.back() == ' ')
      Text.pop_back();
    emit(Token::Kind::Directive, Text, StartLine);
  }

  void lexOne() {
    unsigned StartLine = C.line();
    char Ch = C.peek();

    if (Ch == ' ' || Ch == '\t' || Ch == '\r' || Ch == '\n') {
      C.advance();
      return;
    }
    if (Ch == '/' && C.peek(1) == '/') {
      C.advance();
      C.advance();
      lexLineComment(StartLine);
      return;
    }
    if (Ch == '/' && C.peek(1) == '*') {
      C.advance();
      C.advance();
      lexBlockComment(StartLine);
      return;
    }
    if (Ch == '#') {
      C.advance();
      lexDirective(StartLine);
      return;
    }
    if (Ch == '"') {
      C.advance();
      emit(Token::Kind::String, lexQuoted('"'), StartLine);
      return;
    }
    if (Ch == '\'') {
      C.advance();
      lexQuoted('\'');
      emit(Token::Kind::CharLit, "", StartLine);
      return;
    }
    if (isIdentStart(Ch)) {
      std::string Name;
      while (!C.atEnd() && isIdentBody(C.peek()))
        Name.push_back(C.advance());
      // String prefixes: R"..." raw strings and L/u/U/u8 quoted forms.
      if (C.peek() == '"') {
        bool Raw = !Name.empty() && Name.back() == 'R';
        std::string Prefix = Raw ? Name.substr(0, Name.size() - 1) : Name;
        if (Prefix.empty() || Prefix == "L" || Prefix == "u" ||
            Prefix == "U" || Prefix == "u8") {
          C.advance(); // '"'
          if (Raw)
            lexRawString(StartLine);
          else
            emit(Token::Kind::String, lexQuoted('"'), StartLine);
          return;
        }
      }
      // Character-literal prefixes: u8'x' / u'x' / U'x' / L'x' are one
      // literal, not an identifier followed by a char literal.
      if (C.peek() == '\'' &&
          (Name == "L" || Name == "u" || Name == "U" || Name == "u8")) {
        C.advance(); // '\''
        lexQuoted('\'');
        emit(Token::Kind::CharLit, "", StartLine);
        return;
      }
      emit(Token::Kind::Identifier, Name, StartLine);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(Ch)) ||
        (Ch == '.' && std::isdigit(static_cast<unsigned char>(C.peek(1))))) {
      // Approximate pp-number: good enough to skip digit separators and
      // exponents without misreading them as operators.
      std::string Text;
      Text.push_back(C.advance());
      while (!C.atEnd()) {
        char N = C.peek();
        // A single quote continues the pp-number only as a digit
        // separator, i.e. when followed by a digit or nondigit
        // ([lex.ppnumber]); otherwise it opens a character literal
        // and must be left for the next token.
        if (N == '\'' && !isIdentBody(C.peek(1)))
          break;
        if (isIdentBody(N) || N == '.' || N == '\'') {
          Text.push_back(C.advance());
          continue;
        }
        if ((N == '+' || N == '-') && !Text.empty() &&
            (Text.back() == 'e' || Text.back() == 'E' ||
             Text.back() == 'p' || Text.back() == 'P')) {
          Text.push_back(C.advance());
          continue;
        }
        break;
      }
      emit(Token::Kind::Number, Text, StartLine);
      return;
    }

    // Punctuators, longest match first.
    for (const char *P : ThreeCharPuncts)
      if (Ch == P[0] && C.peek(1) == P[1] && C.peek(2) == P[2]) {
        C.advance();
        C.advance();
        C.advance();
        emit(Token::Kind::Punct, P, StartLine);
        return;
      }
    for (const char *P : TwoCharPuncts)
      if (Ch == P[0] && C.peek(1) == P[1]) {
        C.advance();
        C.advance();
        emit(Token::Kind::Punct, P, StartLine);
        return;
      }
    emit(Token::Kind::Punct, std::string(1, C.advance()), StartLine);
  }

  Cursor C;
  LexedSource Result;
  unsigned LastTokenLine = 0;
};

} // namespace

LexedSource rap::lint::lex(const std::string &Content) {
  return LexerImpl(Content).run();
}
